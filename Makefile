# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install test test-fast test-slow lint lint-repro lint-graph bench \
	bench-quick bench-check bench-report bench-promote gradcheck \
	reproduce report api serve-smoke serve-net-smoke index-smoke \
	train-smoke clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# The two CI tiers: the fast tier runs on every interpreter of the matrix,
# the slow tier (kill-and-resume integration, worker pools) once on 3.11.
test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

test-slow:
	$(PYTHON) -m pytest tests/ -m slow

# Style gate (configuration lives in pyproject.toml).
lint:
	ruff check src/ tests/ tools/ benchmarks/
	ruff format --check src/ tests/ tools/ benchmarks/

# Repo-aware static analysis (repro.lint): per-module concurrency, RNG
# discipline, atomic-IO, and metric/token-drift rules plus the
# interprocedural lock-order/blocking/deadline/resource flow rules.
# Stdlib-only; composes with ruff rather than replacing it.  Warm runs
# replay the SHA-keyed summary cache (tools/.lint_cache.json); the
# wall-time gate matches the CI fast tier.
lint-repro:
	$(PYTHON) tools/run_lint.py --baseline tools/lint_baseline.json --max-seconds 10

# Dump the resolved call graph + lock-acquisition graph (what
# RL008/RL009 reason over) as JSON, for debugging a flow finding.
lint-graph:
	$(PYTHON) tools/run_lint.py --graph

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# The quick-mode suites the CI slow tier runs: each emits its
# BENCH_<name>.json through the shared repro.bench emitter, feeding the
# regression gate below.
bench-quick:
	$(PYTHON) -m pytest \
	  benchmarks/test_train_step_throughput.py \
	  benchmarks/test_serving_throughput.py \
	  benchmarks/test_serving_degradation.py \
	  benchmarks/test_netserve_load.py \
	  benchmarks/test_index_retrieval.py -q -rs

# CI regression gate: compare BENCH_*.json against the committed
# baselines; exits non-zero on any out-of-tolerance regression.
bench-check:
	$(PYTHON) -m repro bench check

# Markdown trend report (sparklines per metric) from the history store.
bench-report:
	$(PYTHON) -m repro bench report

# Intentionally move the baselines to the current results (journaled in
# benchmarks/baselines/promotions.jsonl).  Pass NOTE="why".
bench-promote:
	$(PYTHON) -m repro bench promote --note "$(NOTE)"

# Finite-difference verification of every layer/loss gradient
# (repro.diagnostics sweep; exits non-zero on any mismatch).
gradcheck:
	$(PYTHON) tools/run_gradcheck.py

# Regenerate every table/figure straight from the CLI (single seed).
reproduce:
	$(PYTHON) -m repro reproduce --table all --out benchmarks/results

# Rebuild EXPERIMENTS.md from the latest benchmark outputs.
report:
	$(PYTHON) -c "from repro.experiments import generate_report; \
	generate_report('benchmarks/results', 'EXPERIMENTS.md')"

# Regenerate the checked-in API reference.
api:
	$(PYTHON) tools/gen_api_docs.py docs/api.md

# Pipe a few JSON-lines requests through the serving loop and validate
# every response (uses the stub encoder; no checkpoint needed).
serve-smoke:
	printf '%s\n' \
	  '{"op": "ping"}' \
	  '{"op": "embed", "names": ["link failure", "paging storm"]}' \
	  '{"op": "embed", "names": ["link failure"]}' \
	  '{"op": "stats"}' \
	  | $(PYTHON) -m repro serve --stats --max-wait-ms 2 \
	  | $(PYTHON) tools/check_serve_smoke.py

# Boot the TCP frontend as a real subprocess, drive a short open-loop
# mix over the tenant quota with the load generator, and SIGTERM it:
# asserts zero protocol errors, structured rate-limit rejections, and a
# clean drain (see tools/run_netserve_smoke.py).  Bounded by timeout so
# a wedged server fails the step instead of stalling CI.
serve-net-smoke:
	timeout 120 $(PYTHON) tools/run_netserve_smoke.py

# Build a 10k-entity synthetic ANN index, query a few stored names, and
# dump its manifest stats — the retrieval tier end to end through the
# real CLI.  Bounded by timeout so a wedged build fails the step instead
# of stalling CI.
index-smoke:
	rm -rf .index-smoke
	timeout 120 $(PYTHON) -m repro index build --dir .index-smoke \
	  --synthetic 10000 --dim 32
	timeout 60 $(PYTHON) -m repro index query --dir .index-smoke \
	  --name entity-0 --name entity-42 --k 5
	timeout 60 $(PYTHON) -m repro index stats --dir .index-smoke
	rm -rf .index-smoke

# Exercise the fault-tolerant training runtime end to end: train two steps,
# pause (simulated interruption), resume from the snapshot, finish the
# schedule, and check the replayed journal saw every step exactly once.
train-smoke:
	rm -rf .train-smoke
	$(PYTHON) -m repro train --run-dir .train-smoke --size smoke \
	  --steps 4 --checkpoint-every 2 --stop-after 2
	$(PYTHON) -m repro train --run-dir .train-smoke --size smoke \
	  --steps 4 --checkpoint-every 2
	$(PYTHON) -c "from repro.serving import replay_journal; \
	snap = replay_journal('.train-smoke/journal.jsonl').snapshot(); \
	assert snap['counters']['train.steps'] == 4, snap; \
	assert snap['counters']['train.events.run_complete'] == 1, snap; \
	assert snap['counters']['train.events.resume'] == 1, snap; \
	print('train-smoke ok:', snap['counters'])"
	rm -rf .train-smoke

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks .train-smoke
	find . -name __pycache__ -type d -exec rm -rf {} +
