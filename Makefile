# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install test bench gradcheck reproduce report api serve-smoke clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Finite-difference verification of every layer/loss gradient
# (repro.diagnostics sweep; exits non-zero on any mismatch).
gradcheck:
	$(PYTHON) tools/run_gradcheck.py

# Regenerate every table/figure straight from the CLI (single seed).
reproduce:
	$(PYTHON) -m repro reproduce --table all --out benchmarks/results

# Rebuild EXPERIMENTS.md from the latest benchmark outputs.
report:
	$(PYTHON) -c "from repro.experiments import generate_report; \
	generate_report('benchmarks/results', 'EXPERIMENTS.md')"

# Regenerate the checked-in API reference.
api:
	$(PYTHON) tools/gen_api_docs.py docs/api.md

# Pipe a few JSON-lines requests through the serving loop and validate
# every response (uses the stub encoder; no checkpoint needed).
serve-smoke:
	printf '%s\n' \
	  '{"op": "ping"}' \
	  '{"op": "embed", "names": ["link failure", "paging storm"]}' \
	  '{"op": "embed", "names": ["link failure"]}' \
	  '{"op": "stats"}' \
	  | $(PYTHON) -m repro serve --stats --max-wait-ms 2 \
	  | $(PYTHON) tools/check_serve_smoke.py

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
