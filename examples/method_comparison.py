"""Method comparison with uncertainty: bootstrap CIs and significance tests.

The paper reports point estimates; at reproduction scale sampling error is
material, so this example runs the FCT task for two methods on the *same*
held-out hops and reports bootstrap confidence intervals plus a paired
permutation test on the reciprocal ranks.

    python examples/method_comparison.py    (~2 minutes on CPU)
"""

import numpy as np

from repro import ExperimentPipeline, PipelineConfig
from repro.evaluation import compare_rank_lists, rank_metric_cis
from repro.kge import GTransE, KgeTrainer, link_prediction_ranks
from repro.service import KTeleBertProvider, RandomProvider
from repro.tasks.fct import build_fct_dataset


def _ranks_for(provider, dataset, seed: int) -> list[int]:
    """Train GTransE from the provider's initialisation; rank test hops."""
    rng = np.random.default_rng(seed)
    init = provider.encode_names(dataset.entity_names)
    init = init / np.maximum(np.linalg.norm(init, axis=1, keepdims=True),
                             1e-9)
    model = GTransE(dataset.num_entities, dataset.num_relations,
                    dim=init.shape[1], rng=rng, margin=2.0,
                    entity_init=init)
    trainer = KgeTrainer(model, dataset.quadruples, dataset.num_entities,
                         rng=rng, learning_rate=0.05)
    trainer.fit(40, valid_triples=dataset.valid, known=dataset.all_known())
    return link_prediction_ranks(model, dataset.test,
                                 known_triples=dataset.all_known())


def main() -> None:
    config = PipelineConfig(seed=3, num_episodes=80, stage1_steps=150,
                            stage2_steps=120, generic_sentences=200)
    pipeline = ExperimentPipeline(config)
    dataset = build_fct_dataset(pipeline.world, pipeline.episodes,
                                seed=config.seed)
    print(f"FCT dataset: {dataset.describe()}")

    methods = {
        "Random": RandomProvider(dim=config.d_model, seed=0),
        "KTeleBERT-PMTL": KTeleBertProvider(pipeline.ktelebert_pmtl,
                                            pipeline.kg, mode="entity"),
    }
    ranks = {name: _ranks_for(provider, dataset, seed=11)
             for name, provider in methods.items()}

    print("\nmetrics with 95% bootstrap confidence intervals:")
    for name, method_ranks in ranks.items():
        cis = rank_metric_cis(method_ranks, hit_levels=(1, 3),
                              rng=np.random.default_rng(0))
        rendered = "  ".join(f"{metric}={ci}" for metric, ci in cis.items())
        print(f"  {name:<16} {rendered}")

    comparison = compare_rank_lists(ranks["KTeleBERT-PMTL"], ranks["Random"],
                                    rng=np.random.default_rng(1))
    print(f"\npaired permutation test on reciprocal ranks "
          f"(KTeleBERT − Random):")
    print(f"  mean difference = {comparison.mean_difference:+.4f}, "
          f"p = {comparison.p_value:.3f}, n = {comparison.num_items}")
    if comparison.significant():
        print("  -> significant at α = 0.05")
    else:
        print("  -> not significant at this scale (the paper's gap needs "
              "more held-out chains)")


if __name__ == "__main__":
    main()
