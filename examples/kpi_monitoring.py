"""KPI time-series monitoring: cyclical indicators and anomaly detection.

Demonstrates the "normal indicator" side of machine log data (Sec. II-A1):
cyclical KPI series generation, fault-window injection, rolling z-score
detection, and an ASCII view of the series.

    python examples/kpi_monitoring.py
"""

import numpy as np

from repro import TelecomWorld
from repro.analysis import ascii_histogram, ascii_scatter
from repro.world import KpiSeriesGenerator, detect_anomalies, rolling_zscore


def main() -> None:
    world = TelecomWorld.generate(seed=8)
    kpi = world.ontology.kpis[0]
    print(f"KPI: {kpi.name}")
    print(f"  normal range: [{kpi.normal_low:.1f}, {kpi.normal_high:.1f}] "
          f"{kpi.unit}; anomaly direction: {kpi.anomaly_direction}")

    generator = KpiSeriesGenerator(np.random.default_rng(0), noise_scale=0.02)
    fault_window = (100_000.0, 112_000.0)
    series = generator.generate(kpi, start_time=0.0, duration=2 * 86_400.0,
                                interval=600.0, fault_windows=[fault_window])
    print(f"\ngenerated {len(series)} samples over 2 days; "
          f"{int(series.anomaly_mask.sum())} inside the injected fault window")

    normalised = (series.values - series.values.min()) / \
        (series.values.max() - series.values.min())
    print(ascii_scatter(series.timestamps / 3600.0, series.values,
                        values=normalised, width=70, height=14,
                        title="\nKPI series (x = hours; fault injected around "
                              f"hour {fault_window[0] / 3600:.0f})"))

    scores = rolling_zscore(series.values, window=12)
    print(ascii_histogram(scores, bins=8,
                          title="\nrolling z-score distribution"))

    predictions = detect_anomalies(series, window=12, threshold=4.0)
    flagged_hours = series.timestamps[predictions] / 3600.0
    print(f"\ndetector flagged {int(predictions.sum())} samples at hours: "
          + ", ".join(f"{h:.1f}" for h in flagged_hours[:10]))
    onset = series.timestamps[series.anomaly_mask][0] / 3600.0
    print(f"ground-truth fault onset: hour {onset:.1f}")


if __name__ == "__main__":
    main()
