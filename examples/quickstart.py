"""Quickstart: generate a telecom world, pre-train TeleBERT, get embeddings.

Runs in under a minute on a laptop CPU::

    python examples/quickstart.py
"""

import numpy as np

from repro import TelecomWorld, build_tele_corpus, pretrain_telebert


def cosine(a: np.ndarray, b: np.ndarray) -> float:
    return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))


def main() -> None:
    # 1. A synthetic telecom universe: NE topology, alarm/KPI catalogs, and a
    #    ground-truth causal graph (the stand-in for the proprietary data).
    world = TelecomWorld.generate(seed=0)
    print(f"world: {len(world.ontology.alarms)} alarms, "
          f"{len(world.ontology.kpis)} KPIs, "
          f"{world.topology.num_nodes} network elements, "
          f"{world.causal_graph.num_edges} causal edges")

    # 2. The Tele-Corpus: product documents + entity surfaces + augmentation.
    corpus = build_tele_corpus(world, seed=0)
    print(f"corpus: {len(corpus)} sentences; sample:")
    print("   ", corpus.sentences[0][:100])

    # 3. Stage-1 pre-training (ELECTRA + SimCSE + whole-word masking).
    telebert = pretrain_telebert(corpus.sentences, steps=120, seed=0,
                                 wwm_phrases=[e.name for e in
                                              world.ontology.events])
    print(f"TeleBERT: {telebert.pretrainer.num_parameters()} parameters, "
          f"final loss {telebert.log.total[-1]:.3f} "
          f"(from {telebert.log.total[0]:.3f})")

    # 4. Service embeddings: events in the same fault theme should be closer
    #    than events from unrelated themes.
    themes = {}
    for alarm in world.ontology.alarms:
        themes.setdefault(alarm.theme, []).append(alarm.name)
    theme_names = sorted(themes)
    same_a, same_b = themes[theme_names[0]][:2]
    other = themes[theme_names[1]][0]
    vectors = telebert.encode_sentences([same_a, same_b, other])
    print(f"\nsim('{same_a[:40]}...', same theme)  = "
          f"{cosine(vectors[0], vectors[1]):.3f}")
    print(f"sim('{same_a[:40]}...', other theme) = "
          f"{cosine(vectors[0], vectors[2]):.3f}")


if __name__ == "__main__":
    main()
