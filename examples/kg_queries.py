"""Tele-KG construction and SPARQL-style querying.

Shows the expert workflow the paper describes (Sec. I): build the Tele-KG,
retrieve background knowledge with basic-graph-pattern queries, and serialise
triples into prompt sentences for implicit knowledge injection.

    python examples/kg_queries.py
"""

from repro import TelecomWorld, build_tele_kg
from repro.kg import Pattern, Variable, query, serialize_kg
from repro.kg.query import ask


def main() -> None:
    world = TelecomWorld.generate(seed=3)
    kg = build_tele_kg(world)
    print(f"Tele-KG: {kg.describe()}")

    # Q1: which events does each SMF-hosted alarm trigger?
    alarm, effect = Variable("alarm"), Variable("effect")
    rows = query(kg, [Pattern(alarm, "occursOn", "NET-SMF"),
                      Pattern(alarm, "trigger", effect)])
    print(f"\nalarms on the SMF trigger {len(rows)} downstream events; first 3:")
    for row in rows[:3]:
        print(f"  {kg.entity(row['alarm']).surface[:50]:<52} -> "
              f"{kg.entity(row['effect']).surface[:50]}")

    # Q2: two-hop — root alarms whose effects cascade further.
    a, b, c = Variable("a"), Variable("b"), Variable("c")
    cascades = query(kg, [Pattern(a, "trigger", b),
                          Pattern(b, "trigger", c)], limit=5)
    print(f"\nfirst {len(cascades)} two-hop cascades:")
    for row in cascades:
        print("  " + " -> ".join(
            kg.entity(row[v]).surface[:30] for v in ("a", "b", "c")))

    # Q3: ASK — is any critical alarm connected to a KPI?
    print("\nany trigger chain at all?",
          ask(kg, [Pattern(a, "trigger", b)]))

    # Serialisation for implicit knowledge injection (Sec. IV-A1).
    sentences = serialize_kg(kg)
    print(f"\nKG serialises to {len(sentences)} prompt sentences; first 2:")
    for sentence in sentences[:2]:
        print("  ", sentence[:100])


if __name__ == "__main__":
    main()
