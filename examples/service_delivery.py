"""Service-delivery data modes (Sec. V-A3) and embedding diagnostics.

Compares the three ways a downstream task can hand a target name to
KTeleBERT — "only name", "entity mapping w/o Attr.", "entity mapping
w/ Attr." — and inspects the embedding space with the analysis toolkit
(theme separation, anisotropy, nearest neighbours, ASCII projection).

    python examples/service_delivery.py     (~1-2 minutes on CPU)
"""

import numpy as np

from repro import ExperimentPipeline, PipelineConfig
from repro.analysis import (
    anisotropy,
    ascii_scatter,
    nearest_neighbors,
    theme_separation,
)
from repro.service import KTeleBertProvider


def main() -> None:
    config = PipelineConfig(seed=5, num_episodes=40, stage1_steps=120,
                            stage2_steps=80, generic_sentences=200)
    pipeline = ExperimentPipeline(config)
    model = pipeline.ktelebert_stl
    kg = pipeline.kg
    events = pipeline.world.ontology.events
    names = [e.name for e in events]
    themes = [e.theme for e in events]

    print("== three data modes for the same targets ==")
    for mode in ("name", "entity", "entity_attr"):
        provider = KTeleBertProvider(model, kg, mode=mode)
        vectors = provider.encode_names(names)
        print(f"  mode={mode:<12} theme separation="
              f"{theme_separation(vectors, themes):+.4f}  "
              f"anisotropy={anisotropy(vectors):.4f}")

    provider = KTeleBertProvider(model, kg, mode="entity")
    vectors = provider.encode_names(names)

    print("\n== nearest neighbours of one alarm ==")
    query = 0
    print(f"  query: {names[query]}  (theme: {themes[query]})")
    for name, similarity in nearest_neighbors(vectors, names, query, k=4):
        theme = themes[names.index(name)]
        print(f"    {similarity:.3f}  [{theme:<14}] {name[:55]}")

    print("\n== 2-D projection of the event embedding space ==")
    centred = vectors - vectors.mean(axis=0)
    _, _, vt = np.linalg.svd(centred, full_matrices=False)
    coords = centred @ vt[:2].T
    theme_names = sorted(set(themes))
    shade = np.array([theme_names.index(t) / (len(theme_names) - 1)
                      for t in themes])
    print(ascii_scatter(coords[:, 0], coords[:, 1], values=shade,
                        width=64, height=18,
                        title="events shaded by fault theme"))


if __name__ == "__main__":
    main()
