"""The full two-stage pipeline: TeleBERT → KTeleBERT → fault-analysis tasks.

Reproduces the paper's workflow (Fig. 1) end to end at demo scale: stage-1
pre-training on the Tele-Corpus, stage-2 re-training on causal sentences +
machine logs + Tele-KG triples with the PMTL strategy, then all three tasks
(RCA / EAP / FCT) consuming the service embeddings.

    python examples/fault_analysis_pipeline.py       (~2-3 minutes on CPU)
"""

from repro import ExperimentPipeline, PipelineConfig
from repro.service import KTeleBertProvider, RandomProvider
from repro.tasks.eap import EapExperiment, build_eap_dataset
from repro.tasks.fct import FctExperiment, build_fct_dataset
from repro.tasks.rca import RcaExperiment, build_rca_dataset


def main() -> None:
    # Demo scale: smaller than the bench defaults so this finishes quickly.
    config = PipelineConfig(seed=7, num_episodes=60, stage1_steps=120,
                            stage2_steps=60, generic_sentences=400,
                            task_epochs_rca=5, task_epochs_eap=5,
                            task_epochs_fct=30)
    pipeline = ExperimentPipeline(config)

    print("== stage 1: TeleBERT ==")
    telebert = pipeline.telebert
    print(f"  trained {config.stage1_steps} steps; "
          f"loss {telebert.log.total[0]:.2f} -> {telebert.log.total[-1]:.2f}")

    print("== stage 2: KTeleBERT (PMTL) ==")
    ktelebert = pipeline.ktelebert_pmtl
    print(f"  vocabulary grew to {len(ktelebert.tokenizer.vocab)} tokens "
          f"(prompt + mined tele specials)")

    providers = [
        RandomProvider(dim=config.d_model, seed=config.seed),
        KTeleBertProvider(ktelebert, pipeline.kg, mode="entity",
                          label="KTeleBERT-PMTL"),
    ]

    print("\n== task 1: root-cause analysis ==")
    rca_data = build_rca_dataset(pipeline.world, pipeline.episodes)
    rca = RcaExperiment(rca_data, seed=config.seed,
                        epochs=config.task_epochs_rca)
    for provider in providers:
        row = rca.run(provider).as_table_row()
        print(f"  {provider.label:<16} MR={row['MR']:.2f} "
              f"Hits@1={row['Hits@1']:.1f}%")

    print("\n== task 2: event association prediction ==")
    eap_data = build_eap_dataset(pipeline.world, pipeline.episodes,
                                 seed=config.seed)
    eap = EapExperiment(eap_data, seed=config.seed,
                        epochs=config.task_epochs_eap)
    for provider in providers:
        row = eap.run(provider).as_table_row()
        print(f"  {provider.label:<16} Acc={row['Accuracy']:.1f}% "
              f"F1={row['F1-score']:.1f}%")

    print("\n== task 3: fault chain tracing ==")
    fct_data = build_fct_dataset(pipeline.world, pipeline.episodes,
                                 seed=config.seed)
    fct = FctExperiment(fct_data, seed=config.seed,
                        epochs=config.task_epochs_fct)
    for provider in providers:
        row = fct.run(provider).as_table_row()
        print(f"  {provider.label:<16} MRR={row['MRR']:.1f}% "
              f"Hits@10={row['Hits@10']:.1f}%")


if __name__ == "__main__":
    main()
