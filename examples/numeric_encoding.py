"""Adaptive numeric encoding (ANEnc) demo — the Fig. 10 effect in isolation.

Trains a small ANEnc + NDec with the numerical contrastive loss and shows
that (a) values round-trip through the autoencoder and (b) embedding distance
tracks value distance, including for a tag name never seen in training
(the open-field property motivating ANEnc, Sec. IV-B).

    python examples/numeric_encoding.py
"""

import numpy as np

from repro.nn.optim import Adam
from repro.numeric import (
    AdaptiveNumericEncoder,
    NumericDecoder,
    NumericLossComputer,
    TagNormalizer,
)
from repro.tensor import Tensor, no_grad


def main() -> None:
    rng = np.random.default_rng(0)
    d_model = 16
    # Three numeric fields with wildly different ranges — per-tag min-max
    # normalisation makes them comparable (Sec. IV-B).
    raw = {
        "registration success rate": rng.uniform(80, 100, 200),
        "paging response delay": rng.uniform(5, 400, 200),
        "board temperature reading": rng.uniform(20, 95, 200),
    }
    tags = [t for t, vs in raw.items() for _ in vs]
    values = np.concatenate(list(raw.values()))
    normalizer = TagNormalizer().fit(tags, values)
    print(f"fitted normaliser over {normalizer.num_tags} tags")

    # Random (but fixed) tag-name embeddings stand in for the PLM pooling.
    tag_vectors = {t: rng.normal(size=d_model) for t in raw}

    encoder = AdaptiveNumericEncoder(d_model, num_layers=2, num_meta=4,
                                     lora_rank=4,
                                     rng=np.random.default_rng(1))
    decoder = NumericDecoder(d_model, np.random.default_rng(2))
    losses = NumericLossComputer(use_tag_classifier=False)
    optimizer = Adam(encoder.parameters() + decoder.parameters() +
                     losses.parameters(), lr=5e-3)

    for step in range(150):
        batch_tags = [tags[i] for i in rng.integers(0, len(tags), 24)]
        batch_raw = [float(rng.uniform(*
                     (min(raw[t]), max(raw[t])))) for t in batch_tags]
        batch_norm = normalizer.transform(batch_tags, batch_raw)
        tag_embedding = Tensor(np.stack([tag_vectors[t] for t in batch_tags]))
        optimizer.zero_grad()
        h = encoder(batch_norm, tag_embedding)
        out = losses(encoder, h, decoder(h), batch_norm)
        out.total.backward()
        optimizer.step()
        if step % 50 == 0:
            print(f"step {step:>3}: L_reg={out.regression:.4f} "
                  f"L_nc={out.contrastive:.4f} orth={out.orthogonal:.4f}")

    # Round-trip check on a seen tag.
    tag = "paging response delay"
    sweep = np.linspace(0, 1, 9)
    with no_grad():
        h = encoder(sweep, Tensor(np.tile(tag_vectors[tag], (9, 1))))
        decoded = decoder(h).data
    print(f"\nvalue round-trip for '{tag}':")
    for v, d in zip(sweep, decoded):
        print(f"  in={v:.2f}  decoded={d:+.2f}")

    # Unseen tag: ANEnc still orders values (field-adaptive by design).
    unseen = rng.normal(size=d_model)
    with no_grad():
        h = encoder(sweep, Tensor(np.tile(unseen, (9, 1)))).data
    unit = h / np.linalg.norm(h, axis=1, keepdims=True)
    sim_near = float(unit[0] @ unit[1])
    sim_far = float(unit[0] @ unit[8])
    print(f"\nunseen tag: sim(v=0.00, v=0.12) = {sim_near:.3f}  vs  "
          f"sim(v=0.00, v=1.00) = {sim_far:.3f}")
    print("closer values -> more similar embeddings"
          if sim_near > sim_far else "ordering did not emerge at this scale")


if __name__ == "__main__":
    main()
