"""Fault-episode simulation and machine-log inspection.

Generates fault episodes on a synthetic network, prints the propagation
chain, the machine log stream (as KTeleBERT sees it through the prompt
templates), and verifies the episode against the causal ground truth.

    python examples/fault_simulation.py
"""

from repro import TelecomWorld
from repro.prompts import wrap_log_record


def main() -> None:
    world = TelecomWorld.generate(seed=12)
    events = {e.uid: e for e in world.ontology.events}

    simulator = world.simulator()
    episode = simulator.simulate(0, background_kpi_count=4)

    root = events[episode.root_uid]
    print(f"injected root cause: {episode.root_uid} on {episode.root_node}")
    print(f"  '{root.name}' (theme: {root.theme})")

    print(f"\npropagation chain ({len(episode.chain)} alarms):")
    for uid in episode.chain:
        print(f"  {uid}: {events[uid].name[:60]}")

    print(f"\nmachine log stream ({len(episode.records)} records), "
          "prompt-wrapped:")
    for record in episode.records[:8]:
        print(f"  t={record.timestamp:7.1f}s  {wrap_log_record(record)[:95]}")

    # Every fired hop is a ground-truth causal edge.
    assert all(world.causal_graph.has_edge(*pair)
               for pair in episode.fired_edges)
    print(f"\nall {len(episode.fired_edges)} fired trigger pairs verified "
          "against the causal ground truth")

    # Downstream views of the same episode batch.
    episodes = simulator.simulate_many(20)
    themes = {}
    for ep in episodes:
        theme = events[ep.root_uid].theme
        themes[theme] = themes.get(theme, 0) + 1
    print(f"\nroot-cause theme distribution over {len(episodes)} episodes:")
    for theme, count in sorted(themes.items(), key=lambda kv: -kv[1]):
        print(f"  {theme:<16} {'#' * count}")


if __name__ == "__main__":
    main()
