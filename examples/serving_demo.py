"""FaultAnalysisService end to end: batching, persistence, degradation.

Builds a small KTeleBERT, wraps it in the online serving façade
(:mod:`repro.serving`), and walks the full request surface:

* ``embed`` through the micro-batcher and a persistent embedding store
  (run the script twice with ``REPRO_STORE_DIR`` set to see the warm-start
  skip every forward pass);
* ``rank_root_causes`` / ``propagate_alarms`` / ``classify_fault`` via the
  lazily-fitted task adapters;
* graceful degradation to a word-embedding fallback when the primary is
  given an impossible deadline;
* the metrics registry dump that ``python -m repro serve --stats`` prints.

    python examples/serving_demo.py     (~1-2 minutes on CPU)
"""

import os
import tempfile

from repro import ExperimentPipeline, PipelineConfig
from repro.models import model_fingerprint
from repro.service import KTeleBertProvider, WordEmbeddingProvider
from repro.serving import FaultAnalysisService, ServiceConfig
from repro.tasks.eap import EapAdapter, build_eap_dataset
from repro.tasks.fct import FctAdapter, build_fct_dataset
from repro.tasks.rca import RcaAdapter, build_rca_dataset


def main() -> None:
    config = PipelineConfig(seed=5, num_episodes=40, stage1_steps=120,
                            stage2_steps=80, generic_sentences=200)
    pipeline = ExperimentPipeline(config)
    model = pipeline.ktelebert_stl
    provider = KTeleBertProvider(model, pipeline.kg, mode="entity")
    fallback = WordEmbeddingProvider(dim=provider.dim, seed=0)
    store_dir = os.environ.get("REPRO_STORE_DIR") or tempfile.mkdtemp(
        prefix="repro-serving-")

    episodes = pipeline.episodes
    service = FaultAnalysisService(
        provider,
        fallback=fallback,
        config=ServiceConfig(max_batch_size=16, max_wait_ms=5,
                             timeout_s=120.0, max_retries=1),
        store_dir=store_dir,
        fingerprint=model_fingerprint(model),
        rca=RcaAdapter(build_rca_dataset(pipeline.world, episodes), epochs=4),
        eap=EapAdapter(build_eap_dataset(pipeline.world, episodes), epochs=4),
        fct=FctAdapter(build_fct_dataset(pipeline.world, episodes),
                       epochs=15))

    with service:
        print(f"== persistent store: {store_dir} ==")
        names = [e.name for e in pipeline.world.ontology.events[:8]]
        vectors = service.embed(names)
        print(f"embedded {vectors.shape[0]} names -> dim {vectors.shape[1]}")
        service.embed(names)  # warm: zero additional forward passes
        print(f"store after warm pass: {service.store.stats()}")

        print("\n== rank_root_causes (RCA) ==")
        state = service.rca.dataset.states[0]
        truth = state.node_names[state.root_index]
        for node, score in service.rank_root_causes(state, top_k=3):
            marker = "  <- ground truth" if node == truth else ""
            print(f"  {score:+.3f}  {node}{marker}")

        print("\n== propagate_alarms (EAP) ==")
        pairs = service.eap.dataset.pairs[:3]
        for pair, verdict in zip(pairs, service.propagate_alarms(pairs)):
            print(f"  p(trigger)={verdict['confidence']:.3f} "
                  f"(label={pair.label})  {pair.name_i[:28]!r} -> "
                  f"{pair.name_j[:28]!r}")

        print("\n== classify_fault (FCT) ==")
        alarm = service.fct.dataset.entity_names[0]
        print(f"  next hops after {alarm!r}:")
        for hop in service.classify_fault(alarm, top_k=3):
            print(f"    {hop['score']:+.3f}  [{hop['relation']}] "
                  f"{hop['alarm']}")

        print("\n== graceful degradation ==")
        service.config.timeout_s = 1e-4   # impossible deadline
        service.embed(["a name the cache has never seen"])
        service.config.timeout_s = 120.0
        fallbacks = service.metrics.counter("serving.fallbacks").value
        print(f"  primary timed out; fallback answered "
              f"(serving.fallbacks={fallbacks})")

        print("\n" + service.metrics.render())
        stats = service.stats()
        print(f"\nrequests={stats['requests']}  "
              f"cache hit rate={stats['cache']['hit_rate']:.2f}  "
              f"batcher={stats['batcher']}")


if __name__ == "__main__":
    main()
