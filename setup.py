"""Setup shim.

The environment has no ``wheel`` package and no network access, so PEP 517
editable installs (which shell out to ``bdist_wheel``) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` take the legacy
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
