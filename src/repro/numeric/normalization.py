"""Per-tag min-max normalisation of numeric values (Sec. IV-B).

"All numerical values across the same tag name should be normalized via
Min-max normalization to smooth the learning process."  The normaliser is
fitted on observed (tag, value) pairs; values of unseen tags pass through a
global fallback range so new fields (which the paper stresses keep appearing)
do not crash encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass
class TagNormalizer:
    """Min-max normaliser keyed by tag name."""

    ranges: dict[str, tuple[float, float]] = field(default_factory=dict)
    global_range: tuple[float, float] | None = None

    def fit(self, tags: Sequence[str], values: Sequence[float]) -> "TagNormalizer":
        """Record per-tag and global min/max from observations."""
        if len(tags) != len(values):
            raise ValueError("tags and values must align")
        if len(values) == 0:
            raise ValueError("cannot fit on empty data")
        per_tag: dict[str, list[float]] = {}
        for tag, value in zip(tags, values):
            per_tag.setdefault(tag, []).append(float(value))
        for tag, tag_values in per_tag.items():
            self.ranges[tag] = (min(tag_values), max(tag_values))
        all_values = [float(v) for v in values]
        self.global_range = (min(all_values), max(all_values))
        return self

    def _range_for(self, tag: str) -> tuple[float, float]:
        if tag in self.ranges:
            return self.ranges[tag]
        if self.global_range is None:
            raise RuntimeError("normalizer is not fitted")
        return self.global_range

    def transform_one(self, tag: str, value: float) -> float:
        """Normalise a single value into [0, 1] (clipped outside fitted range)."""
        low, high = self._range_for(tag)
        if high == low:
            return 0.5
        return float(np.clip((float(value) - low) / (high - low), 0.0, 1.0))

    def transform(self, tags: Sequence[str],
                  values: Sequence[float]) -> np.ndarray:
        """Vectorised :meth:`transform_one`."""
        return np.array([self.transform_one(t, v)
                         for t, v in zip(tags, values)])

    def inverse_transform_one(self, tag: str, normalised: float) -> float:
        """Map a normalised value back to the tag's original scale."""
        low, high = self._range_for(tag)
        return low + float(normalised) * (high - low)

    def knows(self, tag: str) -> bool:
        return tag in self.ranges

    @property
    def num_tags(self) -> int:
        return len(self.ranges)
