"""Adaptive numeric encoder (ANEnc), Eqs. 1–4 and Fig. 5.

Per layer: the tag-name embedding ``t`` (constant across layers — it is the
pooled output of the embedding layer) is projected by ``W_q`` into a query of
size ``d/N`` and attends over ``N`` field-aware meta embeddings
``E ∈ R^{N×(d/N)}``.  Each meta domain ``i`` owns a value transform
``W_v^{(i)} ∈ R^{d×d}``; the attention mixture of the transformed inputs is
the domain-adaptive embedding, which then passes through an FFN sublayer with
a LoRA-style low-rank residual ``α·x·W_down·W_up`` and a LayerNorm (Eq. 4).
The scalar value enters layer 1 through a 1→d map ``W_fc`` with activation
(Eq. 3).
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.layers import LayerNorm, Linear, _xavier_uniform
from repro.nn.module import Module, ModuleList, Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, stack


class ANEncLayer(Module):
    """One ANEnc layer: attention-based numeric projection + FFN/LoRA sublayer."""

    def __init__(self, d_model: int, num_meta: int, lora_rank: int,
                 rng: np.random.Generator, lora_alpha: float = 1.0,
                 d_ff: int | None = None):
        super().__init__()
        if d_model % num_meta != 0:
            raise ValueError(
                f"d_model={d_model} must be divisible by num_meta={num_meta}")
        if lora_rank > d_model:
            raise ValueError("lora_rank must be <= d_model")
        self.d_model = d_model
        self.num_meta = num_meta
        self.meta_dim = d_model // num_meta
        self.lora_alpha = lora_alpha
        d_ff = d_ff or 2 * d_model

        # E: (N, d/N) field-aware meta embeddings.
        self.meta_embeddings = Parameter(
            rng.normal(0.0, 0.02, size=(num_meta, self.meta_dim)))
        # W_q: (d, d/N) query conversion of the tag embedding.
        self.query_proj = Parameter(
            _xavier_uniform(rng, d_model, self.meta_dim,
                            (d_model, self.meta_dim)))
        # W_v^(i): one (d, d) value transform per meta domain, near-orthogonal
        # initialisation (identity + noise) to start inside the regularizer's
        # feasible region.
        self._value_params: list[Parameter] = []
        for i in range(num_meta):
            param = Parameter(np.eye(d_model) +
                              rng.normal(0.0, 0.02, size=(d_model, d_model)))
            self.register_parameter(f"value_transform_{i}", param)
            self._value_params.append(param)

        self.ffn_in = Linear(d_model, d_ff, rng)
        self.ffn_out = Linear(d_ff, d_model, rng)
        self.lora_down = Parameter(
            rng.normal(0.0, 0.02, size=(d_model, lora_rank)))
        self.lora_up = Parameter(np.zeros((lora_rank, d_model)))
        self.norm = LayerNorm(d_model)

    @property
    def value_params(self) -> list[Parameter]:
        """The layer's ``W_v^{(i)}`` value-transform matrices."""
        return list(self._value_params)

    def attention_scores(self, tag_embedding: Tensor) -> Tensor:
        """(B, N) softmax attention of the tag query over the meta domains."""
        query = tag_embedding @ self.query_proj            # (B, d/N)
        scores = query @ self.meta_embeddings.transpose()  # (B, N)
        scores = scores * (1.0 / math.sqrt(self.meta_dim))
        return F.softmax(scores, axis=-1)

    def forward(self, x: Tensor, tag_embedding: Tensor) -> Tensor:
        """Eq. 1–4: returns the layer output ``h`` of shape (B, d)."""
        attn = self.attention_scores(tag_embedding)        # (B, N)
        projected = stack([x @ w for w in self._value_params], axis=1)  # (B,N,d)
        h_hat = (attn.expand_dims(-1) * projected).sum(axis=1)          # (B, d)
        ffn = self.ffn_out(F.gelu(self.ffn_in(h_hat)))
        lora = (x @ self.lora_down) @ self.lora_up
        return self.norm(ffn + lora * self.lora_alpha)


class AdaptiveNumericEncoder(Module):
    """L stacked :class:`ANEncLayer` with the scalar entry map ``W_fc``.

    ``forward`` maps normalised scalar values (B,) plus tag-name embeddings
    (B, d) to numeric embeddings ``h`` (B, d), which KTeleBERT injects at the
    ``[NUM]`` positions of the wrapped input.
    """

    def __init__(self, d_model: int, num_layers: int = 2, num_meta: int = 4,
                 lora_rank: int = 8, lora_alpha: float = 1.0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.d_model = d_model
        self.num_layers = num_layers
        # W_fc: 1 -> d scalar lift (Eq. 3, l = 1).
        self.value_lift = Parameter(
            _xavier_uniform(rng, 1, d_model, (1, d_model)))
        self.layers = ModuleList([
            ANEncLayer(d_model, num_meta, lora_rank, rng,
                       lora_alpha=lora_alpha)
            for _ in range(num_layers)
        ])

    def forward(self, values: np.ndarray, tag_embeddings: Tensor) -> Tensor:
        """Encode normalised ``values`` under their tag-name embeddings."""
        values = np.asarray(values, dtype=float).reshape(-1, 1)
        if values.shape[0] != tag_embeddings.shape[0]:
            raise ValueError("values and tag_embeddings must align")
        x = F.gelu(Tensor(values) @ self.value_lift)  # ACT_FN(v W_fc)
        for layer in self.layers:
            x = layer(x, tag_embeddings)
        return x

    def value_transform_matrices(self) -> list[Parameter]:
        """All ``W_v^{(i)}`` across layers (for the orthogonal regularizer)."""
        matrices: list[Parameter] = []
        for layer in self.layers:
            matrices.extend(layer.value_params)
        return matrices
