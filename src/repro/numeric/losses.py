"""`L_num` assembly (Sec. IV-B4–5).

Combines the numeric regression loss (Eq. 5), the optional tag classification
loss (Eq. 6), and the numerical contrastive loss (Eq. 7) through Kendall-Gal
automatic weighting, then adds the orthogonal regularizer over the value
transforms with weight λ (Eq. 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.losses import (
    AutomaticWeightedLoss,
    numeric_contrastive_loss,
    orthogonal_regularizer,
)
from repro.numeric.anenc import AdaptiveNumericEncoder
from repro.numeric.heads import TagClassifier
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


@dataclass
class NumericLossOutput:
    """`L_num` and its components (floats for logging, Tensor for backprop)."""

    total: Tensor
    regression: float
    classification: float
    contrastive: float
    orthogonal: float


class NumericLossComputer:
    """Stateful combiner owning the AWL parameters.

    Parameters
    ----------
    use_tag_classifier:
        Disable when new unseen tag names make classification ill-posed
        (the paper marks `L_cls` as optional for exactly this reason).
    """

    def __init__(self, use_tag_classifier: bool = True,
                 contrastive_temperature: float = 0.05,
                 orthogonal_weight: float = 1e-4,
                 use_contrastive: bool = True):
        num_tasks = 1 + int(use_tag_classifier) + int(use_contrastive)
        self.use_tag_classifier = use_tag_classifier
        self.use_contrastive = use_contrastive
        self.contrastive_temperature = contrastive_temperature
        self.orthogonal_weight = orthogonal_weight
        self.awl = AutomaticWeightedLoss(num_tasks)

    def parameters(self):
        """The learnable μ parameters (to be added to the optimizer)."""
        return self.awl.parameters()

    def __call__(self, encoder: AdaptiveNumericEncoder,
                 numeric_embeddings: Tensor,
                 decoded_values: Tensor,
                 true_values: np.ndarray,
                 tag_classifier: TagClassifier | None = None,
                 tag_ids: np.ndarray | None = None) -> NumericLossOutput:
        """Assemble `L_num` for one batch.

        ``numeric_embeddings`` is ANEnc's output ``h``; ``decoded_values`` is
        NDec's output on the final transformer states; ``true_values`` are the
        normalised ground-truth values.
        """
        true_values = np.asarray(true_values, dtype=float)
        losses = [F.mse_loss(decoded_values, true_values)]
        cls_value = 0.0
        if self.use_tag_classifier:
            if tag_classifier is None or tag_ids is None:
                raise ValueError(
                    "tag classifier enabled but classifier/tag_ids missing")
            cls_loss = tag_classifier.loss(numeric_embeddings, tag_ids)
            losses.append(cls_loss)
            cls_value = float(cls_loss.data)
        nc_value = 0.0
        if self.use_contrastive:
            nc_loss = numeric_contrastive_loss(
                numeric_embeddings, true_values,
                temperature=self.contrastive_temperature)
            losses.append(nc_loss)
            nc_value = float(nc_loss.data)

        total = self.awl(losses)
        orth = orthogonal_regularizer(encoder.value_transform_matrices())
        total = total + orth * self.orthogonal_weight
        return NumericLossOutput(
            total=total,
            regression=float(losses[0].data),
            classification=cls_value,
            contrastive=nc_value,
            orthogonal=float(orth.data),
        )
