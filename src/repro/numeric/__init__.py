"""Adaptive numerical data encoding (Sec. IV-B, Figs. 4–5).

Machine-log numerics carry most of the information in structured tele data;
existing CTR-style field embeddings break when the field (tag name) set is
huge and open-ended.  The paper's answer is the **adaptive numeric encoder**
(ANEnc): the tag-name embedding queries a bank of field-aware meta embeddings
and the attention mixture selects how the (scalar) value is projected.

* :class:`TagNormalizer` — per-tag min-max normalisation (required before
  encoding, Sec. IV-B).
* :class:`ANEncLayer` / :class:`AdaptiveNumericEncoder` — L stacked layers of
  attention-based numeric projection + FFN with a LoRA-style low-rank
  residual (Eqs. 1–4).
* :class:`NumericDecoder` (NDec) — regresses the value back from the
  transformer output (`L_reg`, Eq. 5).
* :class:`TagClassifier` (TGC) — recovers the tag name from `h` (`L_cls`,
  Eq. 6; optional, since new tags appear over time).
* :func:`numeric_loss` — `L_num`: auto-weighted `L_reg + L_cls + L_nc` plus
  the orthogonal regularizer (Eqs. 7–8 via :mod:`repro.nn.losses`).
"""

from repro.numeric.normalization import TagNormalizer
from repro.numeric.anenc import AdaptiveNumericEncoder, ANEncLayer
from repro.numeric.heads import NumericDecoder, TagClassifier
from repro.numeric.losses import NumericLossComputer, NumericLossOutput

__all__ = [
    "ANEncLayer",
    "AdaptiveNumericEncoder",
    "NumericDecoder",
    "NumericLossComputer",
    "NumericLossOutput",
    "TagClassifier",
    "TagNormalizer",
]
