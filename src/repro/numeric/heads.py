"""NDec and TGC heads for the numeric self-supervision objectives."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class NumericDecoder(Module):
    """NDec (Sec. IV-B1): regress the scalar value from transformer output.

    The paper feeds the *final transformer layer* output at the numeric
    position into NDec so that cross-layer semantic interactions are involved;
    a 2-layer MLP maps d → 1.
    """

    def __init__(self, d_model: int, rng: np.random.Generator,
                 hidden: int | None = None):
        super().__init__()
        hidden = hidden or d_model
        self.input = Linear(d_model, hidden, rng)
        self.output = Linear(hidden, 1, rng)

    def forward(self, hidden_state: Tensor) -> Tensor:
        """(B, d) → (B,) predicted normalised values."""
        out = self.output(F.gelu(self.input(hidden_state)))
        return out.reshape(hidden_state.shape[0])


class TagClassifier(Module):
    """TGC (Sec. IV-B2): recover the tag name from the numeric embedding h.

    Optional head — the tag inventory grows over time in production, so the
    model must stay usable when this head is disabled.
    """

    def __init__(self, d_model: int, num_tags: int, rng: np.random.Generator):
        super().__init__()
        if num_tags < 2:
            raise ValueError("tag classification needs at least 2 tags")
        self.num_tags = num_tags
        self.proj = Linear(d_model, num_tags, rng)

    def forward(self, numeric_embedding: Tensor) -> Tensor:
        """(B, d) → (B, num_tags) logits."""
        return self.proj(numeric_embedding)

    def loss(self, numeric_embedding: Tensor, tag_ids: np.ndarray) -> Tensor:
        """`L_cls` (Eq. 6): cross-entropy on tag identity."""
        return F.cross_entropy(self(numeric_embedding), np.asarray(tag_ids))
