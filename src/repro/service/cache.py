"""Caching wrapper for embedding providers.

Task harnesses query the same target names many times (folds, repeated
experiments, ablations); :class:`CachedProvider` memoises per-name vectors so
the underlying PLM encodes each distinct name exactly once.

The cache is thread-safe: it can sit under the serving micro-batcher
(:class:`repro.serving.MicroBatcher`), whose caller threads and flush
worker touch it concurrently.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.service.providers import EmbeddingProvider


class CachedProvider(EmbeddingProvider):
    """Memoising decorator around any :class:`EmbeddingProvider`."""

    def __init__(self, inner: EmbeddingProvider):
        self.inner = inner
        self.label = inner.label
        self.dim = inner.dim
        self._cache: dict[str, np.ndarray] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def encode_names(self, names: list[str]) -> np.ndarray:
        """Cached encode.  The lock is never held across the inner call:
        a slow (or hung) encoder cannot block ``stats``/``clear``, the
        encoding of already-cached names, or an independent retry of the
        same name.  Concurrent cold misses on one name may therefore both
        pay for the encode; the write-back is last-write-wins, so the
        cache stays internally consistent (one settled vector per name)
        and every caller sees a coherent snapshot within its own request.
        Liveness over strict dedup: the old exclusive-miss lock turned a
        single hung encode into a stack-wide deadlock."""
        with self._lock:
            results = {n: self._cache[n] for n in names if n in self._cache}
        missing = [n for n in dict.fromkeys(names) if n not in results]
        if missing:
            vectors = self.inner.encode_names(missing)
            for name, vector in zip(missing, vectors):
                results[name] = vector
        with self._lock:
            for name in missing:
                self._cache[name] = results[name]
            self.misses += len(missing)
            self.hits += len(names) - len(missing)
            return np.stack([results[n] for n in names])

    def clear(self) -> None:
        """Drop the cache (e.g. after further training of the inner model).

        Also resets the hit/miss counters — hit-rate statistics computed
        after a ``clear()`` describe the new cache generation only.
        """
        with self._lock:
            self._cache.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict:
        """Hit/miss counters in the shape the metrics registry aggregates."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
                "size": len(self._cache),
            }

    @property
    def cache_size(self) -> int:
        """Number of distinct names currently memoised."""
        with self._lock:
            return len(self._cache)
