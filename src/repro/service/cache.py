"""Caching wrapper for embedding providers.

Task harnesses query the same target names many times (folds, repeated
experiments, ablations); :class:`CachedProvider` memoises per-name vectors so
the underlying PLM encodes each distinct name exactly once.
"""

from __future__ import annotations

import numpy as np

from repro.service.providers import EmbeddingProvider


class CachedProvider(EmbeddingProvider):
    """Memoising decorator around any :class:`EmbeddingProvider`."""

    def __init__(self, inner: EmbeddingProvider):
        self.inner = inner
        self.label = inner.label
        self.dim = inner.dim
        self._cache: dict[str, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def encode_names(self, names: list[str]) -> np.ndarray:
        missing = [n for n in names if n not in self._cache]
        # Deduplicate while preserving order for the inner call.
        unique_missing = list(dict.fromkeys(missing))
        if unique_missing:
            vectors = self.inner.encode_names(unique_missing)
            for name, vector in zip(unique_missing, vectors):
                self._cache[name] = vector
        self.misses += len(unique_missing)
        self.hits += len(names) - len(unique_missing)
        return np.stack([self._cache[n] for n in names])

    def clear(self) -> None:
        """Drop the cache (e.g. after further training of the inner model)."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0

    @property
    def cache_size(self) -> int:
        return len(self._cache)
