"""Embedding providers for every compared method.

Data-type modes for PLM providers follow Sec. V-A3:

* ``"name"`` — pure literal name ("only name");
* ``"entity"`` — the name mapped to a Tele-KG entity by surface and wrapped
  with the ``[ENT]`` template ("Entity mapping w/o Attr.");
* ``"entity_attr"`` — as above with the entity's KG attributes concatenated
  behind ("Entity mapping w/ Attr.").
"""

from __future__ import annotations

import numpy as np

from repro.kg.graph import TeleKG
from repro.models.ktelebert import KTeleBert, NumericRow, TextRow
from repro.models.telebert import TeleBertTrainer
from repro.prompts.templates import wrap_entity
from repro.tokenization.tokenizer import basic_tokenize

VALID_MODES = ("name", "entity", "entity_attr")


class EmbeddingProvider:
    """Interface: map target names to fixed service vectors."""

    #: embedding dimensionality
    dim: int
    #: human-readable method label (row name in the result tables)
    label: str = "provider"

    def encode_names(self, names: list[str]) -> np.ndarray:
        """(len(names), dim) matrix of service embeddings."""
        raise NotImplementedError


class RandomProvider(EmbeddingProvider):
    """The paper's "Random" baseline: uniform random vectors per name.

    Vectors are cached per name so repeated queries are consistent within a
    run (as they would be with a fixed random init).
    """

    label = "Random"

    def __init__(self, dim: int, seed: int = 0):
        self.dim = dim
        self.rng = np.random.default_rng(seed)
        self._cache: dict[str, np.ndarray] = {}

    def encode_names(self, names: list[str]) -> np.ndarray:
        rows = []
        for name in names:
            if name not in self._cache:
                self._cache[name] = self.rng.uniform(-1, 1, size=self.dim)
            rows.append(self._cache[name])
        return np.stack(rows)


class WordEmbeddingProvider(EmbeddingProvider):
    """The EAP "Word Embeddings" baseline: average of per-word random vectors."""

    label = "Word Embeddings"

    def __init__(self, dim: int, seed: int = 0):
        self.dim = dim
        self.rng = np.random.default_rng(seed)
        self._cache: dict[str, np.ndarray] = {}

    def _word_vector(self, word: str) -> np.ndarray:
        if word not in self._cache:
            self._cache[word] = self.rng.normal(0, 1, size=self.dim)
        return self._cache[word]

    def encode_names(self, names: list[str]) -> np.ndarray:
        rows = []
        for name in names:
            words = basic_tokenize(name) or [name]
            rows.append(np.mean([self._word_vector(w) for w in words], axis=0))
        return np.stack(rows)


class PlmProvider(EmbeddingProvider):
    """Service embeddings from a stage-1 PLM (MacBERT stand-in or TeleBERT)."""

    def __init__(self, trainer: TeleBertTrainer, label: str):
        self.trainer = trainer
        self.label = label
        self.dim = trainer.config.d_model

    def encode_names(self, names: list[str]) -> np.ndarray:
        return self.trainer.encode_sentences(names)


class KTeleBertProvider(EmbeddingProvider):
    """Service embeddings from KTeleBERT under one of the three data modes."""

    def __init__(self, model: KTeleBert, kg: TeleKG | None = None,
                 mode: str = "entity", label: str = "KTeleBERT",
                 max_attributes: int = 3):
        if mode not in VALID_MODES:
            raise ValueError(f"mode must be one of {VALID_MODES}")
        if mode != "name" and kg is None:
            raise ValueError("entity modes require the Tele-KG")
        self.model = model
        self.kg = kg
        self.mode = mode
        self.label = label
        self.max_attributes = max_attributes
        self.dim = model.bert_config.d_model

    def _row_for(self, name: str):
        if self.mode == "name":
            return TextRow(name)
        entity = self.kg.entity_by_surface(name)
        if entity is None:
            return TextRow(name)  # unmapped targets degrade to "only name"
        if self.mode == "entity":
            return TextRow(wrap_entity(entity.surface))
        attributes = {}
        numeric: tuple[str, float] | None = None
        for fact in self.kg.attributes_of(entity.uid)[: self.max_attributes]:
            attributes[fact.attribute] = fact.value
            if fact.is_numeric and numeric is None:
                numeric = (f"{fact.attribute} of {entity.surface}",
                           float(fact.value))
        text = wrap_entity(entity.surface, attributes)
        if numeric is not None:
            return NumericRow(text=text, tag=numeric[0], value=numeric[1])
        return TextRow(text)

    def encode_names(self, names: list[str]) -> np.ndarray:
        rows = [self._row_for(n) for n in names]
        return self.model.encode(rows)
