"""Service-delivery layer (Sec. V-A3).

Downstream task models consume *service embeddings* — fixed vectors for
target names.  Providers implement the same interface for every method the
paper compares, so the task harnesses can swap Random / Word-Embedding /
MacBERT / TeleBERT / KTeleBERT rows of Tables IV, VI, VIII by changing one
argument.
"""

from repro.service.providers import (
    EmbeddingProvider,
    KTeleBertProvider,
    PlmProvider,
    RandomProvider,
    WordEmbeddingProvider,
)
from repro.service.cache import CachedProvider

__all__ = [
    "CachedProvider",
    "EmbeddingProvider",
    "KTeleBertProvider",
    "PlmProvider",
    "RandomProvider",
    "WordEmbeddingProvider",
]
