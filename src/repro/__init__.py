"""repro — reproduction of *Tele-Knowledge Pre-training for Fault Analysis*
(Chen, Zhang et al., ICDE 2023).

The paper pre-trains TeleBERT on telecom corpora (stage 1) and re-trains it
into KTeleBERT with prompt-unified modalities, an adaptive numeric encoder,
and a knowledge-embedding objective (stage 2), then applies the service
embeddings to root-cause analysis, event association prediction, and fault
chain tracing.  Everything — the autograd engine, transformer, tokenizer,
synthetic telecom world, Tele-KG, and the three task models — is implemented
from scratch in this package (see DESIGN.md for the substitution map).

Quick start::

    from repro import TelecomWorld, build_tele_corpus, pretrain_telebert

    world = TelecomWorld.generate(seed=0)
    corpus = build_tele_corpus(world)
    telebert = pretrain_telebert(corpus.sentences, steps=100)
    vectors = telebert.encode_sentences(["The NF destination service is "
                                         "unreachable"])

Subpackages: ``tensor`` (autograd), ``nn`` (layers/optim/losses),
``tokenization``, ``world`` (synthetic telecom universe), ``corpus``, ``kg``
(Tele-KG), ``prompts``, ``numeric`` (ANEnc), ``models`` (TeleBERT /
KTeleBERT), ``training``, ``kge``, ``service``, ``tasks`` (rca/eap/fct),
``evaluation``, ``experiments`` (table/figure harnesses), ``serving``
(online inference: micro-batching, persistent embedding store, metrics).
"""

__version__ = "1.0.0"

from repro.world import TelecomWorld
from repro.corpus import build_tele_corpus, generate_generic_corpus
from repro.kg import TeleKG, build_tele_kg
from repro.models import (
    KTeleBert,
    KTeleBertConfig,
    TeleBertTrainer,
    pretrain_telebert,
)
from repro.service import (
    KTeleBertProvider,
    PlmProvider,
    RandomProvider,
    WordEmbeddingProvider,
)
from repro.serving import FaultAnalysisService, ServiceConfig
from repro.experiments import ExperimentPipeline, PipelineConfig

__all__ = [
    "ExperimentPipeline",
    "FaultAnalysisService",
    "KTeleBert",
    "KTeleBertConfig",
    "KTeleBertProvider",
    "PipelineConfig",
    "PlmProvider",
    "RandomProvider",
    "ServiceConfig",
    "TeleBertTrainer",
    "TeleKG",
    "TelecomWorld",
    "WordEmbeddingProvider",
    "__version__",
    "build_tele_corpus",
    "build_tele_kg",
    "generate_generic_corpus",
    "pretrain_telebert",
]
