"""Finite-difference gradient verification for the autograd engine.

The harness plays the role of ``torch.autograd.gradcheck`` for
``repro.tensor``: a *case* is a zero-argument callable returning a scalar
:class:`~repro.tensor.Tensor` (a closure over its inputs and modules) plus a
named collection of tensors to differentiate with respect to — module
parameters and/or differentiable inputs.  The analytic gradients produced by
``backward()`` are compared against central-difference estimates obtained by
perturbing each entry of each target in place and re-evaluating the closure.

Tolerances follow the usual two-sided scheme: per element the relative error
is ``|a - n| / max(|a|, |n|, atol / rtol)``, so tiny gradients are judged on
the absolute scale ``atol`` and everything else on the relative scale
``rtol``.  With the default ``eps=1e-6`` central differences in float64 the
numeric estimate is good to ~1e-9 absolute, leaving ample margin below the
default ``rtol=1e-4``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.nn.module import Module
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor

ScalarFn = Callable[[], Tensor]


@dataclass
class GradCheckResult:
    """Comparison of analytic vs. numeric gradient for one target tensor."""

    target: str
    max_abs_err: float
    max_rel_err: float
    passed: bool


@dataclass
class GradCheckReport:
    """All per-target results of one gradcheck case."""

    name: str
    results: list[GradCheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def max_rel_err(self) -> float:
        return max((r.max_rel_err for r in self.results), default=0.0)

    def worst(self) -> GradCheckResult | None:
        """The target with the largest relative error."""
        if not self.results:
            return None
        return max(self.results, key=lambda r: r.max_rel_err)

    def summary(self) -> str:
        status = "ok" if self.passed else "FAIL"
        return (f"{self.name}: {status} "
                f"({len(self.results)} targets, max rel err "
                f"{self.max_rel_err:.3e})")


def numerical_gradient(fn: ScalarFn, array: np.ndarray,
                       eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``fn()`` w.r.t. every entry of ``array``.

    ``array`` is perturbed in place and restored; ``fn`` must read it afresh
    on every call (closures over tensors sharing this buffer do).
    """
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    with no_grad():
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            plus = float(fn().data)
            flat[i] = original - eps
            minus = float(fn().data)
            flat[i] = original
            grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(fn: ScalarFn, wrt: Mapping[str, Tensor], *,
              name: str = "case", eps: float = 1e-6,
              rtol: float = 1e-4, atol: float = 1e-7) -> GradCheckReport:
    """Check analytic vs. numeric gradients of scalar ``fn()`` per target.

    ``wrt`` maps a label to each tensor whose gradient should be verified
    (module parameters, differentiable inputs).  Every target must have
    ``requires_grad=True``.  Returns a :class:`GradCheckReport`; raises
    nothing on mismatch — callers decide whether to assert.
    """
    if rtol <= 0 or eps <= 0:
        raise ValueError("eps and rtol must be positive")
    for label, tensor in wrt.items():
        if not isinstance(tensor, Tensor):
            raise TypeError(f"target {label!r} is not a Tensor")
        if not tensor.requires_grad:
            raise ValueError(f"target {label!r} does not require grad")
        tensor.zero_grad()

    out = fn()
    if out.data.size != 1:
        raise ValueError(
            f"gradcheck case {name!r} must return a scalar, got shape "
            f"{out.data.shape}")
    out.backward()

    floor = atol / rtol
    report = GradCheckReport(name=name)
    for label, tensor in wrt.items():
        analytic = (tensor.grad if tensor.grad is not None
                    else np.zeros_like(tensor.data))
        numeric = numerical_gradient(fn, tensor.data, eps=eps)
        abs_err = np.abs(analytic - numeric)
        denom = np.maximum(np.maximum(np.abs(analytic), np.abs(numeric)),
                           floor)
        rel_err = abs_err / denom
        max_rel = float(rel_err.max()) if rel_err.size else 0.0
        max_abs = float(abs_err.max()) if abs_err.size else 0.0
        report.results.append(GradCheckResult(
            target=label, max_abs_err=max_abs, max_rel_err=max_rel,
            passed=max_rel <= rtol))
    return report


def module_targets(module: Module, inputs: Mapping[str, Tensor] | None = None,
                   prefix: str = "param") -> dict[str, Tensor]:
    """Gradcheck targets for a module: every parameter plus extra inputs."""
    wrt: dict[str, Tensor] = {
        f"{prefix}:{name}": param
        for name, param in module.named_parameters()
    }
    for label, tensor in (inputs or {}).items():
        wrt[f"input:{label}"] = tensor
    return wrt


def assert_gradcheck(fn: ScalarFn, wrt: Mapping[str, Tensor], *,
                     name: str = "case", eps: float = 1e-6,
                     rtol: float = 1e-4, atol: float = 1e-7) -> GradCheckReport:
    """Like :func:`gradcheck`, but raises ``AssertionError`` on mismatch."""
    report = gradcheck(fn, wrt, name=name, eps=eps, rtol=rtol, atol=atol)
    if not report.passed:
        failing = [r for r in report.results if not r.passed]
        detail = "\n".join(
            f"  {r.target}: max rel err {r.max_rel_err:.3e} "
            f"(abs {r.max_abs_err:.3e})" for r in failing)
        raise AssertionError(
            f"gradient mismatch in {name!r} ({len(failing)} targets):\n"
            f"{detail}")
    return report
