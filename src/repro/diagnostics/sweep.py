"""Gradient-check sweep over every differentiable component of the library.

Each :class:`SweepCase` builds one layer/loss at a deliberately tiny shape
(float64, fixed seeds) and hands the harness a scalar closure plus the named
tensors to verify — module parameters *and* differentiable inputs.  The
sweep covers ``repro.nn`` (layers, attention, transformer, losses),
``repro.tensor.functional``, ``repro.numeric`` (ANEnc, NDec, TGC),
``repro.kge`` (TransE/GTransE and the model-zoo scorers), and the task heads
(RCA GCN/GAT, EAP, FCT), mirroring what ``torch.autograd.gradcheck`` does
for custom ops.

Stochastic layers are swept in eval mode (dropout off) so the closure is
deterministic; inputs are drawn from seeded generators, away from the
measure-zero kinks of ``relu``/``abs``/``max``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.diagnostics.gradcheck import (
    GradCheckReport,
    ScalarFn,
    gradcheck,
    module_targets,
)
from repro.tensor.tensor import Tensor

CaseBuilder = Callable[[], tuple[ScalarFn, Mapping[str, Tensor]]]


@dataclass(frozen=True)
class SweepCase:
    """A named gradcheck case with a lazily-invoked builder."""

    name: str
    build: CaseBuilder


def _rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


def _t(rng: np.random.Generator, *shape: int, scale: float = 1.0,
       requires_grad: bool = True) -> Tensor:
    return Tensor(rng.normal(0.0, scale, size=shape),
                  requires_grad=requires_grad)


def _const(rng: np.random.Generator, *shape: int) -> Tensor:
    """A fixed projection tensor used to reduce outputs to a scalar."""
    return Tensor(rng.normal(0.0, 1.0, size=shape))


# ----------------------------------------------------------------------
# repro.tensor.functional
# ----------------------------------------------------------------------

def _functional_cases() -> list[SweepCase]:
    from repro.tensor import functional as F

    def unary(fn, seed, *shape):
        def build():
            rng = _rng(seed)
            x = _t(rng, *shape)
            w = _const(rng, *shape)
            return (lambda: (fn(x) * w).sum()), {"x": x}
        return build

    def softmax_case():
        rng = _rng(1)
        x = _t(rng, 2, 3, 4)
        w = _const(rng, 2, 3, 4)
        return (lambda: (F.softmax(x, axis=-1) * w).sum()), {"x": x}

    def log_softmax_case():
        rng = _rng(2)
        x = _t(rng, 3, 5)
        w = _const(rng, 3, 5)
        return (lambda: (F.log_softmax(x, axis=-1) * w).sum()), {"x": x}

    def layer_norm_case():
        rng = _rng(3)
        x = _t(rng, 2, 4, 6)
        weight = _t(rng, 6, scale=0.5)
        bias = _t(rng, 6, scale=0.5)
        w = _const(rng, 2, 4, 6)
        return (lambda: (F.layer_norm(x, weight, bias) * w).sum()), \
            {"x": x, "weight": weight, "bias": bias}

    def cross_entropy_case():
        rng = _rng(4)
        x = _t(rng, 2, 3, 5)
        targets = rng.integers(0, 5, size=(2, 3))
        targets[0, 1] = -100
        return (lambda: F.cross_entropy(x, targets, ignore_index=-100)), \
            {"logits": x}

    def bce_case():
        rng = _rng(5)
        x = _t(rng, 3, 4)
        targets = rng.integers(0, 2, size=(3, 4)).astype(float)
        weight = rng.uniform(0.5, 2.0, size=(3, 4))
        return (lambda: F.binary_cross_entropy_with_logits(
            x, targets, weight=weight)), {"logits": x}

    def mse_case():
        rng = _rng(6)
        x = _t(rng, 4, 3)
        target = rng.normal(size=(4, 3))
        return (lambda: F.mse_loss(x, target)), {"prediction": x}

    def cosine_case():
        rng = _rng(7)
        a = _t(rng, 3, 1, 4)
        b = _t(rng, 2, 4)
        w = _const(rng, 3, 2)
        return (lambda: (F.cosine_similarity(a, b) * w).sum()), \
            {"a": a, "b": b}

    def l2_norm_case():
        rng = _rng(8)
        x = _t(rng, 3, 5)
        w = _const(rng, 3)
        return (lambda: (F.l2_norm(x, axis=-1) * w).sum()), {"x": x}

    def masked_mean_case():
        rng = _rng(9)
        x = _t(rng, 3, 4, 5)
        mask = np.array([[1, 1, 0, 0], [1, 1, 1, 1], [0, 0, 0, 0]],
                        dtype=float)
        w = _const(rng, 3, 5)
        return (lambda: (F.masked_mean(x, mask) * w).sum()), {"x": x}

    def fused_embedding_case():
        rng = _rng(14)
        token = _t(rng, 7, 5)
        position = _t(rng, 4, 5)
        ids = rng.integers(0, 7, size=(2, 3))
        positions = np.array([[0, 1], [1, 2]])
        vectors = _t(rng, 2, 5)
        w = _const(rng, 2, 3, 5)
        return (lambda: (F.fused_embedding(
            token, position, ids, overrides=(positions, vectors)) * w
        ).sum()), {"token": token, "position": position, "vectors": vectors}

    def attention_weights_case():
        rng = _rng(15)
        q = _t(rng, 2, 2, 3, 4)
        k = _t(rng, 2, 2, 3, 4)
        mask = np.array([[1, 1, 0], [1, 1, 1]], dtype=float)
        bias = F.attention_scores_mask(mask)
        w = _const(rng, 2, 2, 3, 3)
        workspace: dict = {}
        return (lambda: (F.attention_weights(
            q, k, 0.5, mask_bias=bias, workspace=workspace) * w).sum()), \
            {"q": q, "k": k}

    return [
        SweepCase("functional.softmax", softmax_case),
        SweepCase("functional.log_softmax", log_softmax_case),
        SweepCase("functional.relu", unary(F.relu, 10, 3, 4)),
        SweepCase("functional.gelu", unary(F.gelu, 11, 3, 4)),
        SweepCase("functional.sigmoid", unary(F.sigmoid, 12, 3, 4)),
        SweepCase("functional.tanh", unary(F.tanh, 13, 3, 4)),
        SweepCase("functional.layer_norm", layer_norm_case),
        SweepCase("functional.cross_entropy", cross_entropy_case),
        SweepCase("functional.binary_cross_entropy_with_logits", bce_case),
        SweepCase("functional.mse_loss", mse_case),
        SweepCase("functional.cosine_similarity", cosine_case),
        SweepCase("functional.l2_norm", l2_norm_case),
        SweepCase("functional.masked_mean", masked_mean_case),
        SweepCase("functional.fused_embedding", fused_embedding_case),
        SweepCase("functional.attention_weights", attention_weights_case),
    ]


# ----------------------------------------------------------------------
# repro.nn layers and blocks
# ----------------------------------------------------------------------

def _nn_layer_cases() -> list[SweepCase]:
    from repro import nn

    def linear_case():
        rng = _rng(20)
        layer = nn.Linear(5, 3, rng)
        x = _t(rng, 2, 5)
        w = _const(rng, 2, 3)
        return (lambda: (layer(x) * w).sum()), \
            module_targets(layer, {"x": x})

    def linear_nobias_case():
        rng = _rng(21)
        layer = nn.Linear(4, 4, rng, bias=False)
        x = _t(rng, 3, 4)
        w = _const(rng, 3, 4)
        return (lambda: (layer(x) * w).sum()), \
            module_targets(layer, {"x": x})

    def embedding_case():
        rng = _rng(22)
        layer = nn.Embedding(6, 4, rng)
        indices = np.array([[0, 2, 2], [5, 1, 0]])
        w = _const(rng, 2, 3, 4)
        return (lambda: (layer(indices) * w).sum()), module_targets(layer)

    def layernorm_module_case():
        rng = _rng(23)
        layer = nn.LayerNorm(5)
        x = _t(rng, 2, 3, 5)
        w = _const(rng, 2, 3, 5)
        return (lambda: (layer(x) * w).sum()), \
            module_targets(layer, {"x": x})

    def dropout_eval_case():
        rng = _rng(24)
        layer = nn.Dropout(0.5, rng)
        layer.eval()
        x = _t(rng, 3, 4)
        w = _const(rng, 3, 4)
        return (lambda: (layer(x) * w).sum()), {"input:x": x}

    def sequential_case():
        rng = _rng(25)
        stack = nn.Sequential(nn.Linear(4, 6, rng), nn.GELU(),
                              nn.Linear(6, 4, rng), nn.Tanh(),
                              nn.Linear(4, 2, rng), nn.ReLU())
        x = _t(rng, 3, 4)
        w = _const(rng, 3, 2)
        return (lambda: (stack(x) * w).sum()), \
            module_targets(stack, {"x": x})

    def attention_case():
        rng = _rng(26)
        attn = nn.MultiHeadSelfAttention(8, 2, rng)
        attn.eval()
        x = _t(rng, 2, 4, 8)
        mask = np.array([[1, 1, 1, 0], [1, 1, 1, 1]])
        w = _const(rng, 2, 4, 8)
        return (lambda: (attn(x, attention_mask=mask) * w).sum()), \
            module_targets(attn, {"x": x})

    def encoder_layer_case():
        rng = _rng(27)
        layer = nn.TransformerEncoderLayer(8, 2, 16, rng)
        layer.eval()
        x = _t(rng, 2, 3, 8)
        mask = np.array([[1, 1, 0], [1, 1, 1]])
        w = _const(rng, 2, 3, 8)
        return (lambda: (layer(x, attention_mask=mask) * w).sum()), \
            module_targets(layer, {"x": x})

    def encoder_stack_case():
        rng = _rng(28)
        encoder = nn.TransformerEncoder(2, 8, 2, 16, rng)
        encoder.eval()
        x = _t(rng, 2, 3, 8)
        mask = np.array([[1, 1, 1], [1, 0, 0]])
        w = _const(rng, 2, 3, 8)
        return (lambda: (encoder(x, attention_mask=mask) * w).sum()), \
            module_targets(encoder, {"x": x})

    return [
        SweepCase("nn.Linear", linear_case),
        SweepCase("nn.Linear(bias=False)", linear_nobias_case),
        SweepCase("nn.Embedding", embedding_case),
        SweepCase("nn.LayerNorm", layernorm_module_case),
        SweepCase("nn.Dropout(eval)", dropout_eval_case),
        SweepCase("nn.Sequential+activations", sequential_case),
        SweepCase("nn.MultiHeadSelfAttention", attention_case),
        SweepCase("nn.TransformerEncoderLayer", encoder_layer_case),
        SweepCase("nn.TransformerEncoder", encoder_stack_case),
    ]


# ----------------------------------------------------------------------
# repro.nn losses
# ----------------------------------------------------------------------

def _nn_loss_cases() -> list[SweepCase]:
    from repro.nn import losses

    def margin_case():
        rng = _rng(30)
        pos = _t(rng, 5)
        neg = _t(rng, 5)
        return (lambda: losses.margin_ranking_loss(pos, neg, margin=0.7)), \
            {"positive": pos, "negative": neg}

    def info_nce_case():
        rng = _rng(31)
        anchors = _t(rng, 4, 6)
        positives = _t(rng, 4, 6)
        return (lambda: losses.info_nce(anchors, positives,
                                        temperature=0.5)), \
            {"anchors": anchors, "positives": positives}

    def numeric_contrastive_case():
        rng = _rng(32)
        embeddings = _t(rng, 4, 6)
        values = rng.normal(size=4)
        return (lambda: losses.numeric_contrastive_loss(
            embeddings, values, temperature=0.5)), {"embeddings": embeddings}

    def awl_case():
        rng = _rng(33)
        awl = losses.AutomaticWeightedLoss(3)
        x = _t(rng, 4)
        return (lambda: awl([(x * x).mean(), x.sigmoid().mean(),
                             (x.tanh() * x).sum()])), \
            module_targets(awl, {"x": x})

    def orthogonal_case():
        rng = _rng(34)
        a = _t(rng, 3, 3, scale=0.3)
        b = _t(rng, 3, 3, scale=0.3)
        return (lambda: losses.orthogonal_regularizer([a, b])), \
            {"a": a, "b": b}

    return [
        SweepCase("losses.margin_ranking_loss", margin_case),
        SweepCase("losses.info_nce", info_nce_case),
        SweepCase("losses.numeric_contrastive_loss", numeric_contrastive_case),
        SweepCase("losses.AutomaticWeightedLoss", awl_case),
        SweepCase("losses.orthogonal_regularizer", orthogonal_case),
    ]


# ----------------------------------------------------------------------
# repro.numeric: ANEnc, NDec, TGC
# ----------------------------------------------------------------------

def _numeric_cases() -> list[SweepCase]:
    from repro.numeric.anenc import AdaptiveNumericEncoder, ANEncLayer
    from repro.numeric.heads import NumericDecoder, TagClassifier

    def anenc_layer_case():
        rng = _rng(40)
        layer = ANEncLayer(6, 2, 2, rng)
        x = _t(rng, 3, 6)
        tag = _t(rng, 3, 6)
        w = _const(rng, 3, 6)
        return (lambda: (layer(x, tag) * w).sum()), \
            module_targets(layer, {"x": x, "tag": tag})

    def anenc_case():
        rng = _rng(41)
        enc = AdaptiveNumericEncoder(6, num_layers=2, num_meta=2,
                                     lora_rank=2, rng=rng)
        values = rng.normal(size=3)
        tag = _t(rng, 3, 6)
        w = _const(rng, 3, 6)
        return (lambda: (enc(values, tag) * w).sum()), \
            module_targets(enc, {"tag": tag})

    def ndec_case():
        rng = _rng(42)
        ndec = NumericDecoder(6, rng, hidden=5)
        hidden_state = _t(rng, 4, 6)
        w = _const(rng, 4)
        return (lambda: (ndec(hidden_state) * w).sum()), \
            module_targets(ndec, {"hidden": hidden_state})

    def tgc_case():
        rng = _rng(43)
        tgc = TagClassifier(6, 4, rng)
        embedding = _t(rng, 3, 6)
        tag_ids = np.array([0, 3, 1])
        return (lambda: tgc.loss(embedding, tag_ids)), \
            module_targets(tgc, {"embedding": embedding})

    return [
        SweepCase("numeric.ANEncLayer", anenc_layer_case),
        SweepCase("numeric.AdaptiveNumericEncoder", anenc_case),
        SweepCase("numeric.NumericDecoder", ndec_case),
        SweepCase("numeric.TagClassifier", tgc_case),
    ]


# ----------------------------------------------------------------------
# repro.kge: TransE family + model zoo
# ----------------------------------------------------------------------

def _kge_triples(rng: np.random.Generator, entities: int, relations: int,
                 batch: int) -> tuple[np.ndarray, np.ndarray]:
    positives = np.stack([rng.integers(0, entities, size=batch),
                          rng.integers(0, relations, size=batch),
                          rng.integers(0, entities, size=batch)], axis=1)
    negatives = np.stack([rng.integers(0, entities, size=batch),
                          positives[:, 1],
                          rng.integers(0, entities, size=batch)], axis=1)
    return positives, negatives


def _kge_cases() -> list[SweepCase]:
    from repro.kge.gtranse import GTransE, UncertainTriple
    from repro.kge.models import build_kge_model
    from repro.kge.transe import TransE

    def transe_case():
        rng = _rng(50)
        model = TransE(5, 3, 4, rng)
        positives, negatives = _kge_triples(rng, 5, 3, 6)
        return (lambda: model.margin_loss(positives, negatives,
                                          margin=0.5)), \
            module_targets(model)

    def zoo_case(name, seed):
        def build():
            rng = _rng(seed)
            model = build_kge_model(name, 5, 3, 4, rng)
            positives, negatives = _kge_triples(rng, 5, 3, 6)
            return (lambda: model.margin_loss(positives, negatives,
                                              margin=0.5)), \
                module_targets(model)
        return build

    def gtranse_case():
        rng = _rng(55)
        model = GTransE(5, 3, 4, rng, margin=1.2, alpha=0.8)
        positives = [UncertainTriple(int(rng.integers(5)),
                                     int(rng.integers(3)),
                                     int(rng.integers(5)),
                                     float(rng.uniform(0.1, 1.0)))
                     for _ in range(6)]
        negatives = np.stack([rng.integers(0, 5, size=6),
                              rng.integers(0, 3, size=6),
                              rng.integers(0, 5, size=6)], axis=1)
        return (lambda: model.confidence_loss(positives, negatives)), \
            module_targets(model)

    return [
        SweepCase("kge.TransE", transe_case),
        SweepCase("kge.TransH", zoo_case("transh", 51)),
        SweepCase("kge.DistMult", zoo_case("distmult", 52)),
        SweepCase("kge.ComplEx", zoo_case("complex", 53)),
        SweepCase("kge.RotatE", zoo_case("rotate", 54)),
        SweepCase("kge.GTransE", gtranse_case),
    ]


# ----------------------------------------------------------------------
# Task heads: RCA (GCN + GAT), EAP, FCT
# ----------------------------------------------------------------------

def _tiny_rca_state():
    from repro.tasks.rca.data import RcaState

    adjacency = np.array([[0, 1, 1, 0],
                          [1, 0, 0, 1],
                          [1, 0, 0, 0],
                          [0, 1, 0, 0]], dtype=float)
    features = np.array([[2, 0, 1],
                         [0, 1, 0],
                         [1, 1, 3],
                         [0, 0, 0]], dtype=float)
    return RcaState(node_names=["a", "b", "c", "d"], adjacency=adjacency,
                    features=features, root_index=1)


def _tiny_eap():
    from repro.tasks.eap.data import EapDataset, EventPair

    dataset = EapDataset(
        pairs=[], node_names=["ne0", "ne1", "ne2"],
        neighbor_lists={"ne0": ["ne0", "ne1"],
                        "ne1": ["ne1", "ne0", "ne2"],
                        "ne2": ["ne2"]},
        num_events=4, num_packages=1)
    pairs = [
        EventPair("e0", "e1", "link down", "paging fail", "ne0", "ne1",
                  5.0, 2.0, 1),
        EventPair("e2", "e3", "cpu high", "link down", "ne2", "ne0",
                  1.0, 4.0, 0),
        EventPair("e1", "e2", "paging fail", "cpu high", "ne1", "ne2",
                  3.0, 3.5, 1),
    ]
    return dataset, pairs


def _task_cases() -> list[SweepCase]:
    def rca_gcn_case():
        from repro.tasks.rca.model import RcaModel
        rng = _rng(60)
        state = _tiny_rca_state()
        model = RcaModel(feature_dim=5, rng=rng, gcn_hidden=6, gcn_out=4,
                         mlp_hidden=3)
        event_embeddings = rng.normal(size=(3, 5))
        return (lambda: model.loss(state, event_embeddings)), \
            module_targets(model)

    def rca_gat_case():
        from repro.tasks.rca.gat import GatRcaModel
        rng = _rng(61)
        state = _tiny_rca_state()
        model = GatRcaModel(feature_dim=5, rng=rng, hidden=6, out=4,
                            mlp_hidden=3)
        event_embeddings = rng.normal(size=(3, 5))
        return (lambda: model.loss(state, event_embeddings)), \
            module_targets(model)

    def eap_case():
        from repro.tasks.eap.model import EapModel
        rng = _rng(62)
        dataset, pairs = _tiny_eap()
        model = EapModel(dataset, text_dim=4, rng=rng, node_dim=3,
                         time_dim=2)
        text_i = rng.normal(size=(len(pairs), 4))
        text_j = rng.normal(size=(len(pairs), 4))
        return (lambda: model.loss(pairs, text_i, text_j)), \
            module_targets(model)

    def fct_case():
        # FCT's trainable head is GTransE warm-started from provider
        # embeddings (Sec. V-D3); sweep that configuration explicitly.
        from repro.kge.gtranse import GTransE, UncertainTriple
        rng = _rng(63)
        entity_init = rng.normal(0.0, 0.5, size=(5, 4))
        model = GTransE(5, 3, 4, rng, margin=2.0, alpha=1.0,
                        entity_init=entity_init)
        positives = [UncertainTriple(int(rng.integers(5)),
                                     int(rng.integers(3)),
                                     int(rng.integers(5)),
                                     float(rng.uniform(0.2, 1.0)))
                     for _ in range(5)]
        negatives = np.stack([rng.integers(0, 5, size=5),
                              rng.integers(0, 3, size=5),
                              rng.integers(0, 5, size=5)], axis=1)
        return (lambda: model.confidence_loss(positives, negatives)), \
            module_targets(model)

    return [
        SweepCase("tasks.rca.RcaModel(GCN)", rca_gcn_case),
        SweepCase("tasks.rca.GatRcaModel(GAT)", rca_gat_case),
        SweepCase("tasks.eap.EapModel", eap_case),
        SweepCase("tasks.fct.GTransE(init)", fct_case),
    ]


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------

def default_cases() -> list[SweepCase]:
    """Every registered sweep case, in deterministic order."""
    return (_functional_cases() + _nn_layer_cases() + _nn_loss_cases() +
            _numeric_cases() + _kge_cases() + _task_cases())


def case_names() -> list[str]:
    """Names of every sweep case, in registry order."""
    return [case.name for case in default_cases()]


def run_sweep(names: Iterable[str] | None = None, *, eps: float = 1e-6,
              rtol: float = 1e-4, atol: float = 1e-7) -> list[GradCheckReport]:
    """Run the sweep (optionally restricted to substring-matched ``names``)."""
    wanted = [n.lower() for n in names] if names is not None else None
    reports: list[GradCheckReport] = []
    for case in default_cases():
        if wanted is not None and \
                not any(w in case.name.lower() for w in wanted):
            continue
        fn, wrt = case.build()
        reports.append(gradcheck(fn, wrt, name=case.name, eps=eps,
                                 rtol=rtol, atol=atol))
    if wanted is not None and not reports:
        raise ValueError(f"no sweep case matches {sorted(wanted)}")
    return reports
