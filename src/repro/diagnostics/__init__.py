"""Training-stack diagnostics: finite-difference gradient verification.

``repro.diagnostics`` is the correctness tooling for the hand-written
autograd engine: :func:`gradcheck` compares every analytic gradient produced
by ``backward()`` against central-difference estimates, and
:func:`run_sweep` applies it to every layer and loss in the library at small
shapes (``make gradcheck`` / ``tools/run_gradcheck.py``).
"""

from repro.diagnostics.gradcheck import (
    GradCheckReport,
    GradCheckResult,
    assert_gradcheck,
    gradcheck,
    module_targets,
    numerical_gradient,
)
from repro.diagnostics.sweep import (
    SweepCase,
    case_names,
    default_cases,
    run_sweep,
)

__all__ = [
    "GradCheckReport",
    "GradCheckResult",
    "SweepCase",
    "assert_gradcheck",
    "case_names",
    "default_cases",
    "gradcheck",
    "module_targets",
    "numerical_gradient",
    "run_sweep",
]
