"""Multi-client network serving: TCP frontend with tenancy + admission.

Layers (bottom-up):

* :mod:`repro.netserve.protocol` — the transport-agnostic request
  language: parse/dispatch one JSON request against
  :class:`FaultAnalysisService`.  The stdin loop
  (``python -m repro serve``) and the socket server share this core.
* :mod:`repro.netserve.tenants` — API keys resolving to per-tenant
  token buckets and concurrency quotas.
* :mod:`repro.netserve.admission` — the request gate: bounded inflight,
  queue-depth backpressure, deadline-headroom checks; rejects with a
  structured ``retry_after_s`` instead of queueing.
* :mod:`repro.netserve.server` — the threaded TCP server tying the
  layers together, with graceful drain on SIGTERM.
"""

# Import order matters: protocol first (repro.serving.server re-exports
# from it while repro.serving may itself still be initializing).
from repro.netserve.protocol import (
    CODE_AUTH,
    CODE_BAD_REQUEST,
    CODE_DRAINING,
    CODE_INTERNAL,
    CODE_UNAVAILABLE,
    RETRYABLE_CODES,
    dispatch_line,
    error_envelope,
    handle_request,
    serve_loop,
)
from repro.netserve.tenants import (
    TenantRegistry,
    TenantSpec,
    TenantState,
    TokenBucket,
)
from repro.netserve.admission import (
    REJECT_CODES,
    AdmissionConfig,
    AdmissionController,
    AdmissionRejected,
    AdmissionTicket,
)
from repro.netserve.server import NetServeConfig, TeleServer

__all__ = [
    "CODE_AUTH",
    "CODE_BAD_REQUEST",
    "CODE_DRAINING",
    "CODE_INTERNAL",
    "CODE_UNAVAILABLE",
    "RETRYABLE_CODES",
    "REJECT_CODES",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionRejected",
    "AdmissionTicket",
    "NetServeConfig",
    "TeleServer",
    "TenantRegistry",
    "TenantSpec",
    "TenantState",
    "TokenBucket",
    "dispatch_line",
    "error_envelope",
    "handle_request",
    "serve_loop",
]
