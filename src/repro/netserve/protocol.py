"""Shared request-dispatch core for every serving frontend.

``python -m repro serve`` (stdin JSON-lines) and ``python -m repro
serve-net`` (the TCP socket server) speak the same request language:
one JSON object per line, an ``op`` field selecting the call, and a
response that always carries ``"ok"``.  This module is the single
implementation both frontends dispatch through — op validation, payload
parsing, the error envelope, and the bad-request metrics live here, so
the two transports cannot drift apart.

The envelope contract::

    success  {"ok": true, "op": <op>, ...payload}
    failure  {"ok": false, "error": <repr>}            # stdin loop
    failure  {"ok": false, "error": ..., "code": ...,  # socket server
              "retry_after_s": ..., "id": ...}

The stdin loop's failure shape predates the socket server and is kept
byte-compatible; the socket server adds the machine-actionable fields
(``code`` for programmatic handling, ``retry_after_s`` for admission
rejections, ``id`` echoing the request's correlation id).

Dispatch accepts an optional :class:`~repro.serving.deadline.Deadline`
that is propagated into the service, so a frontend-issued budget bounds
every wait underneath (batcher, retry pool) end to end.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, IO

from repro.serving import metric_names as mn

if TYPE_CHECKING:  # import only for annotations; avoids a package cycle
    from repro.serving.deadline import Deadline
    from repro.serving.service import FaultAnalysisService

# -- error codes ------------------------------------------------------
#: Request could not be parsed or failed op/payload validation.
CODE_BAD_REQUEST = "bad_request"
#: Unknown or missing API key.
CODE_AUTH = "auth"
#: Admitted request exhausted its budget (or the service degraded).
CODE_UNAVAILABLE = "unavailable"
#: Unexpected server-side failure.
CODE_INTERNAL = "internal"
#: Server is draining after SIGTERM; retry against another replica.
CODE_DRAINING = "draining"

#: Rejection codes a well-behaved client backs off and retries on
#: (admission codes are defined in :mod:`repro.netserve.admission`).
RETRYABLE_CODES = frozenset({
    "rate_limit", "concurrency", "overload", "queue_full", "deadline",
    CODE_DRAINING, CODE_UNAVAILABLE,
})


def parse_rca_state(request: dict):
    """Validate and build the RCA inference state from a request dict."""
    import numpy as np

    from repro.tasks.rca.serve import state_for_inference

    nodes = request.get("nodes")
    if not isinstance(nodes, list) or not nodes or \
            not all(isinstance(n, str) for n in nodes):
        raise ValueError("rca needs a non-empty 'nodes' string list")
    try:
        adjacency = np.asarray(request.get("adjacency"), dtype=float)
        features = np.asarray(request.get("features"), dtype=float)
    except (TypeError, ValueError):
        raise ValueError("rca 'adjacency'/'features' must be numeric "
                         "matrices") from None
    v = len(nodes)
    if adjacency.shape != (v, v):
        raise ValueError(f"rca 'adjacency' must be {v}x{v}")
    if features.ndim != 2 or features.shape[0] != v:
        raise ValueError(f"rca 'features' must have {v} rows")
    return state_for_inference(nodes, adjacency, features)


def parse_eap_pairs(request: dict):
    """Validate and build EventPair objects from a request dict."""
    from repro.tasks.eap.data import EventPair

    raw_pairs = request.get("pairs")
    if not isinstance(raw_pairs, list) or not raw_pairs or \
            not all(isinstance(p, dict) for p in raw_pairs):
        raise ValueError("eap needs a non-empty 'pairs' list of objects")
    pairs = []
    for number, raw in enumerate(raw_pairs):
        try:
            pairs.append(EventPair(
                event_i=str(raw.get("event_i", raw["name_i"])),
                event_j=str(raw.get("event_j", raw["name_j"])),
                name_i=str(raw["name_i"]), name_j=str(raw["name_j"]),
                node_i=str(raw["node_i"]), node_j=str(raw["node_j"]),
                time_i=float(raw["time_i"]), time_j=float(raw["time_j"]),
                label=0))  # placeholder; never read at inference time
        except KeyError as missing:
            raise ValueError(
                f"eap pair {number} lacks required field {missing}"
            ) from None
        except (TypeError, ValueError):
            raise ValueError(
                f"eap pair {number} has non-numeric time_i/time_j"
            ) from None
    return pairs


def handle_request(service: "FaultAnalysisService", request: dict,
                   deadline: "Deadline | None" = None) -> dict:
    """Dispatch one request dict to the service; returns the response.

    ``deadline`` (when given) is propagated into every service call, so
    the frontend's per-request budget bounds the batcher and retry-pool
    waits underneath.  Raises ``ValueError`` on validation failures and
    whatever the service raises on exhaustion — converting those into
    the wire envelope is the transport's job (:func:`error_envelope`).
    """
    op = request.get("op")
    if op == "ping":
        return {"ok": True, "op": "ping"}
    if op == "embed":
        names = request.get("names")
        if not isinstance(names, list) or not names or \
                not all(isinstance(n, str) for n in names):
            raise ValueError("embed needs a non-empty 'names' string list")
        vectors = service.embed(names, deadline=deadline)
        return {"ok": True, "op": "embed",
                "embeddings": [[round(float(x), 6) for x in row]
                               for row in vectors]}
    if op == "classify_fault":
        alarm = request.get("alarm")
        if not isinstance(alarm, str):
            raise ValueError("classify_fault needs an 'alarm' string")
        chain = service.classify_fault(alarm,
                                       top_k=int(request.get("top_k", 5)),
                                       deadline=deadline)
        return {"ok": True, "op": "classify_fault", "next_hops": chain}
    if op == "rca":
        state = parse_rca_state(request)
        top_k = request.get("top_k")
        if top_k is not None:
            top_k = int(top_k)
        ranking = service.rank_root_causes(state, top_k=top_k,
                                           deadline=deadline)
        return {"ok": True, "op": "rca",
                "ranking": [{"node": node, "score": round(float(score), 6)}
                            for node, score in ranking]}
    if op == "eap":
        verdicts = service.propagate_alarms(parse_eap_pairs(request),
                                            deadline=deadline)
        return {"ok": True, "op": "eap",
                "verdicts": [{"triggers": v["triggers"],
                              "confidence": round(float(v["confidence"]), 6)}
                             for v in verdicts]}
    if op in ("knn", "retrieve"):
        # knn request envelope:
        #   {"op": "knn", "names": [...], "k": 10, "nprobe": 4}
        # response:
        #   {"ok": true, "op": "knn",
        #    "neighbours": [[{"name": ..., "score": ...}, ...], ...]}
        # one neighbour list per query name, nearest first.
        names = request.get("names")
        if not isinstance(names, list) or not names or \
                not all(isinstance(n, str) for n in names):
            raise ValueError(f"{op} needs a non-empty 'names' string list")
        k = int(request.get("k", 10))
        if k < 1:
            raise ValueError(f"{op} 'k' must be positive")
        nprobe = request.get("nprobe")
        if nprobe is not None:
            nprobe = int(nprobe)
            if nprobe < 1:
                raise ValueError(f"{op} 'nprobe' must be positive")
        neighbours = service.retrieve(names, k=k, nprobe=nprobe,
                                      deadline=deadline)
        return {"ok": True, "op": op, "neighbours": neighbours}
    if op == "stats":
        stats = service.stats()
        return {"ok": True, "op": "stats",
                "requests": stats["requests"],
                "cache": stats["cache"],
                "latency": stats["latency"],
                "batcher": stats["batcher"]}
    raise ValueError(f"unknown op: {op!r}")


def error_envelope(error: BaseException | str, *, code: str | None = None,
                   request_id=None,
                   retry_after_s: float | None = None) -> dict:
    """The failure response shape shared by every frontend.

    With only ``error`` set this is byte-compatible with the historical
    stdin-loop envelope (``{"ok": false, "error": repr(error)}``); the
    socket server layers on ``code`` / ``retry_after_s`` / ``id``.
    """
    response: dict = {
        "ok": False,
        "error": error if isinstance(error, str) else repr(error),
    }
    if code is not None:
        response["code"] = code
    if retry_after_s is not None:
        response["retry_after_s"] = round(float(retry_after_s), 4)
    if request_id is not None:
        response["id"] = request_id
    return response


def dispatch_line(service: "FaultAnalysisService", line: str) -> dict:
    """Parse and dispatch one JSON request line; never raises.

    This is the stdin loop's whole per-line pipeline: JSON parse, object
    check, :func:`handle_request`, and the legacy error envelope with
    bad-request metrics.  The socket server shares the same parsing and
    dispatch but builds richer envelopes (auth/admission), so it calls
    the pieces directly instead of this convenience wrapper.
    """
    try:
        request = json.loads(line)
        if not isinstance(request, dict):
            raise ValueError("request must be a JSON object")
        return handle_request(service, request)
    except Exception as error:  # noqa: BLE001 — reported, loop survives
        service.metrics.counter(mn.SERVING_BAD_REQUESTS).inc()
        service.metrics.emit("bad_request", error=repr(error))
        return error_envelope(error)


def serve_loop(service: "FaultAnalysisService", input_stream: IO[str],
               output_stream: IO[str]) -> int:
    """Run requests from ``input_stream`` until EOF; returns served count."""
    served = 0
    for line in input_stream:
        line = line.strip()
        if not line:
            continue
        response = dispatch_line(service, line)
        served += 1
        output_stream.write(json.dumps(response, ensure_ascii=False) + "\n")
        output_stream.flush()
    return served
