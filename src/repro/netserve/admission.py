"""Admission control: shed load *before* the micro-batcher saturates.

The socket frontend must keep answering when the encoder underneath is
slow or wedged.  The failure mode to prevent is the wedge cascade: every
new request queues behind a stuck batcher, sockets pile up, and the
process stops being able to say *no*.  :class:`AdmissionController`
gates each authenticated request through cheap checks — all O(1), none
touching the provider — and rejects with a structured, machine-actionable
``retry_after_s`` instead of queueing:

``deadline``
    The request's propagated deadline has less than ``min_headroom_s``
    remaining — executing it could only produce a timeout.
``queue_full``
    The micro-batcher's pending queue (via ``queue_depth_fn``) is at
    ``max_queue_depth`` — the stage underneath is saturated.
``overload``
    ``max_inflight`` admitted requests are already executing — the
    bounded admission queue is full.
``concurrency``
    The tenant's own ``max_concurrency`` quota is spent.
``rate_limit``
    The tenant's token bucket is empty; ``retry_after_s`` is the exact
    time until the next token accrues.

Ordering matters: global gates run before the tenant's token bucket so a
rejected request never burns a rate token, and the bucket runs last so
an admitted request always holds both a token and a concurrency slot.
Admission returns a ticket (context manager) that releases the slots on
exit, whatever the request's outcome.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro.serving import metric_names as mn
from repro.serving.deadline import Deadline
from repro.serving.metrics import MetricsRegistry
from repro.netserve.tenants import TenantState

# -- rejection codes (wire-visible in the error envelope) --------------
REJECT_DEADLINE = "deadline"
REJECT_QUEUE_FULL = "queue_full"
REJECT_OVERLOAD = "overload"
REJECT_CONCURRENCY = "concurrency"
REJECT_RATE_LIMIT = "rate_limit"

REJECT_CODES = (REJECT_DEADLINE, REJECT_QUEUE_FULL, REJECT_OVERLOAD,
                REJECT_CONCURRENCY, REJECT_RATE_LIMIT)


class AdmissionRejected(RuntimeError):
    """Request refused at the door; carries the structured rejection."""

    def __init__(self, code: str, message: str, retry_after_s: float):
        super().__init__(message)
        self.code = code
        self.retry_after_s = retry_after_s


@dataclass
class AdmissionConfig:
    """Operational knobs for :class:`AdmissionController`."""

    #: bounded admission queue: admitted requests executing at once
    max_inflight: int = 64
    #: reject when the stage underneath reports this many queued names
    max_queue_depth: int = 256
    #: reject requests whose deadline has less than this left (seconds)
    min_headroom_s: float = 0.01
    #: default ``retry_after_s`` for non-rate-limit rejections (seconds)
    retry_after_s: float = 0.1

    def __post_init__(self):
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be positive")
        if self.min_headroom_s < 0:
            raise ValueError("min_headroom_s must be non-negative")
        if self.retry_after_s <= 0:
            raise ValueError("retry_after_s must be positive")


class AdmissionTicket:
    """Proof of admission; releases the claimed slots on ``__exit__``."""

    __slots__ = ("_controller", "_tenant", "_released")

    def __init__(self, controller: "AdmissionController",
                 tenant: TenantState):
        self._controller = controller
        self._tenant = tenant
        self._released = False

    def release(self) -> None:
        """Return the inflight slot and tenant slot (idempotent)."""
        if self._released:
            return
        self._released = True
        self._tenant.finish()
        self._controller._release()

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class AdmissionController:
    """The request gate in front of :class:`FaultAnalysisService`.

    ``queue_depth_fn`` reports the saturation of the stage underneath
    (the micro-batcher's pending-name count); it is sampled *outside*
    the controller's lock so a slow callee cannot serialize admission.
    """

    def __init__(self, config: AdmissionConfig | None = None,
                 metrics: MetricsRegistry | None = None,
                 queue_depth_fn: Callable[[], int] | None = None):
        self.config = config or AdmissionConfig()
        self.metrics = metrics or MetricsRegistry()
        self.queue_depth_fn = queue_depth_fn
        self._lock = threading.Lock()
        self._inflight = 0

    def inflight(self) -> int:
        """Admitted requests currently executing."""
        with self._lock:
            return self._inflight

    def _reject(self, tenant: TenantState, code: str, message: str,
                retry_after_s: float) -> AdmissionRejected:
        tenant.note_rejected()
        self.metrics.counter(mn.NETSERVE_REJECTIONS).inc()
        self.metrics.counter(mn.rejections_for(code)).inc()
        return AdmissionRejected(code, message, retry_after_s)

    def admit(self, tenant: TenantState,
              deadline: Deadline | None = None) -> AdmissionTicket:
        """Run every gate; returns a ticket or raises AdmissionRejected."""
        retry_s = self.config.retry_after_s
        if deadline is not None and \
                deadline.remaining() < self.config.min_headroom_s:
            raise self._reject(
                tenant, REJECT_DEADLINE,
                f"deadline headroom below {self.config.min_headroom_s:g}s "
                f"— executing could only time out", retry_s)
        # Sampled before taking the admission lock: the batcher holds its
        # own lock for this, and nesting the two would couple admission
        # latency to flush latency.
        if self.queue_depth_fn is not None:
            depth = self.queue_depth_fn()
            if depth >= self.config.max_queue_depth:
                raise self._reject(
                    tenant, REJECT_QUEUE_FULL,
                    f"{depth} names queued behind the batcher "
                    f"(limit {self.config.max_queue_depth})", retry_s)
        with self._lock:
            if self._inflight >= self.config.max_inflight:
                overloaded = True
            else:
                overloaded = False
                self._inflight += 1
                inflight = self._inflight
        if overloaded:
            raise self._reject(
                tenant, REJECT_OVERLOAD,
                f"{self.config.max_inflight} requests already in flight",
                retry_s)
        # From here on a failed gate must return the global slot.
        try:
            if not tenant.try_start():
                raise self._reject(
                    tenant, REJECT_CONCURRENCY,
                    f"tenant {tenant.name!r} is at its concurrency quota "
                    f"({tenant.spec.max_concurrency})", retry_s)
            try:
                granted, bucket_retry = tenant.bucket.try_acquire()
                if not granted:
                    raise self._reject(
                        tenant, REJECT_RATE_LIMIT,
                        f"tenant {tenant.name!r} is over its rate limit "
                        f"({tenant.spec.rate_per_s:g}/s, burst "
                        f"{tenant.spec.burst})",
                        max(bucket_retry, 0.001))
            except AdmissionRejected:
                tenant.finish()
                raise
        except AdmissionRejected:
            self._release()
            raise
        tenant.note_admitted()
        self.metrics.counter(mn.NETSERVE_ADMITTED).inc()
        self.metrics.gauge(mn.NETSERVE_INFLIGHT).set(inflight)
        return AdmissionTicket(self, tenant)

    def _release(self) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
            inflight = self._inflight
        self.metrics.gauge(mn.NETSERVE_INFLIGHT).set(inflight)
