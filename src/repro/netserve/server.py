"""Threaded TCP socket frontend over :class:`FaultAnalysisService`.

Transport: newline-delimited JSON over TCP, the same request language as
the stdin loop (:mod:`repro.netserve.protocol`) plus three socket-only
fields on every request:

``api_key``
    Tenant credential, resolved through :class:`TenantRegistry`.
    Required on every op except ``ping`` (health probes stay
    credential-free).
``deadline_ms``
    Client-declared budget for this request; the server turns it into a
    :class:`~repro.serving.deadline.Deadline` at receipt and propagates
    it through admission and every service wait underneath.  Defaults to
    ``NetServeConfig.default_deadline_s``.
``id``
    Opaque correlation value echoed back on the response line.

Each accepted connection is served by one daemon thread
(``socketserver.ThreadingTCPServer``) that loops: read a line,
authenticate, pass admission control, dispatch with the propagated
deadline, answer — or answer a structured rejection
(``retry_after_s``-carrying envelope) without ever touching the
provider.  Because admission rejects instead of queueing, the server
keeps answering within milliseconds even while the encoder underneath
is wedged.

Graceful drain: :meth:`TeleServer.drain` (wired to SIGTERM by the
``serve-net`` CLI) stops the accept loop, answers any late request on
open connections with the ``draining`` envelope, and waits — bounded by
``close_timeout_s`` — for admitted requests to finish.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.netserve import protocol
from repro.netserve.admission import AdmissionController, AdmissionRejected
from repro.netserve.tenants import TenantRegistry
from repro.serving import metric_names as mn
from repro.serving.deadline import Deadline, DeadlineExceeded, FlushTimeout
from repro.serving.metrics import MetricsRegistry

if TYPE_CHECKING:
    from repro.serving.service import FaultAnalysisService

#: How often a blocked socket read wakes to re-check the draining flag.
_READ_POLL_S = 0.25
#: Drain-wait poll interval while waiting for inflight to hit zero.
_DRAIN_POLL_S = 0.02


@dataclass
class NetServeConfig:
    """Operational knobs for :class:`TeleServer`."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (reported by :meth:`TeleServer.start`)
    port: int = 0
    #: budget attached to requests that do not send ``deadline_ms``
    default_deadline_s: float = 30.0
    #: bound on :meth:`TeleServer.drain`: in-flight requests get this
    #: long to finish after the accept loop stops
    close_timeout_s: float = 5.0
    #: refuse request lines longer than this (framing safety valve)
    max_request_bytes: int = 1_000_000
    #: listen backlog for connection bursts
    request_queue_size: int = 128

    def __post_init__(self):
        if self.default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be positive")
        if self.close_timeout_s <= 0:
            raise ValueError("close_timeout_s must be positive")
        if self.max_request_bytes < 1024:
            raise ValueError("max_request_bytes must be >= 1024")


class _LineReader:
    """Buffered newline framing over a socket with bounded reads.

    ``readline`` returns one decoded line, ``None`` on a poll timeout
    (caller re-checks the draining flag), or ``""`` at EOF.  The buffer
    is owned by this reader — a poll timeout never loses partial input,
    which a ``makefile()``-based reader could not guarantee.
    """

    def __init__(self, sock: socket.socket, max_bytes: int):
        self._sock = sock
        self._max_bytes = max_bytes
        self._buffer = bytearray()

    def readline(self) -> str | None:
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                raw = bytes(self._buffer[:newline])
                del self._buffer[:newline + 1]
                return raw.decode("utf-8", errors="replace")
            if len(self._buffer) > self._max_bytes:
                raise ValueError(
                    f"request line exceeds {self._max_bytes} bytes")
            try:
                chunk = self._sock.recv(65536)
            except TimeoutError:
                return None
            if not chunk:
                # EOF: a trailing unterminated line is not a request.
                return ""
            self._buffer.extend(chunk)


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True          # a wedged handler cannot block exit
    allow_reuse_address = True
    block_on_close = False         # server_close never joins handlers

    owner: "TeleServer"


class _Handler(socketserver.BaseRequestHandler):
    def handle(self):  # pragma: no cover — thin trampoline
        self.server.owner.handle_connection(self.request)


class TeleServer:
    """Multi-client NDJSON-over-TCP frontend with tenancy + admission."""

    def __init__(self, service: "FaultAnalysisService",
                 tenants: TenantRegistry,
                 admission: AdmissionController | None = None,
                 config: NetServeConfig | None = None,
                 metrics: MetricsRegistry | None = None):
        self.service = service
        self.tenants = tenants
        self.config = config or NetServeConfig()
        self.metrics = metrics or service.metrics
        self.admission = admission or AdmissionController(
            metrics=self.metrics,
            queue_depth_fn=lambda: service.batcher.stats()["pending"])
        self._tcp: _ThreadingTCPServer | None = None
        self._accept_thread: threading.Thread | None = None
        self._draining = threading.Event()
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind, start the accept loop; returns the bound ``(host, port)``."""
        if self._tcp is not None:
            raise RuntimeError("server already started")
        self._tcp = _ThreadingTCPServer(
            (self.config.host, self.config.port), _Handler,
            bind_and_activate=False)
        self._tcp.owner = self
        self._tcp.request_queue_size = self.config.request_queue_size
        try:
            self._tcp.server_bind()
            self._tcp.server_activate()
        except BaseException:
            self._tcp.server_close()
            self._tcp = None
            raise
        self._accept_thread = threading.Thread(
            target=self._tcp.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-netserve-accept", daemon=True)
        self._accept_thread.start()
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ephemeral port 0)."""
        if self._tcp is None:
            raise RuntimeError("server not started")
        host, port = self._tcp.server_address[:2]
        return host, port

    @property
    def draining(self) -> bool:
        """Whether :meth:`drain` has been initiated."""
        return self._draining.is_set()

    def drain(self, timeout_s: float | None = None) -> bool:
        """Graceful shutdown: stop accepting, let in-flight work finish.

        Returns True when every admitted request completed within
        ``timeout_s`` (default ``config.close_timeout_s``).  Idempotent;
        late requests on still-open connections are answered with the
        structured ``draining`` envelope either way.
        """
        timeout_s = (self.config.close_timeout_s if timeout_s is None
                     else timeout_s)
        if not self._draining.is_set():
            self._draining.set()
            self.metrics.counter(mn.NETSERVE_DRAINS).inc()
            self.metrics.emit("drain_started",
                              inflight=self.admission.inflight())
            if self._tcp is not None:
                # Stops serve_forever's accept loop (bounded internally
                # by its poll_interval) and closes the listening socket,
                # so new connection attempts are refused at the kernel
                # instead of parking in the accept backlog unanswered.
                self._tcp.shutdown()
                self._tcp.server_close()
        end = time.monotonic() + timeout_s
        while time.monotonic() < end:
            if self.admission.inflight() == 0:
                return True
            time.sleep(_DRAIN_POLL_S)
        return self.admission.inflight() == 0

    def close(self, timeout_s: float | None = None) -> None:
        """Drain, then release the listening socket (idempotent).

        The whole teardown — drain *and* the accept-thread join — runs
        against one ``timeout_s`` budget, so a caller's close bound is
        honoured end to end instead of stretching by a fixed join grace.
        """
        if self._closed:
            return
        self._closed = True
        budget_s = (self.config.close_timeout_s if timeout_s is None
                    else timeout_s)
        started = time.monotonic()
        self.drain(budget_s)
        if self._tcp is not None:
            self._tcp.server_close()
        if self._accept_thread is not None:
            remaining_s = max(0.1, budget_s
                              - (time.monotonic() - started))
            self._accept_thread.join(timeout=remaining_s)

    def __enter__(self) -> "TeleServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def handle_connection(self, sock: socket.socket) -> None:
        """Serve one client connection until EOF, error, or drain."""
        self.metrics.counter(mn.NETSERVE_CONNECTIONS).inc()
        self.metrics.gauge(mn.NETSERVE_ACTIVE_CONNECTIONS).add(1)
        sock.settimeout(_READ_POLL_S)
        reader = _LineReader(sock, self.config.max_request_bytes)
        try:
            while True:
                try:
                    line = reader.readline()
                except ValueError as error:   # oversized line: unframeable
                    self._send(sock, protocol.error_envelope(
                        error, code=protocol.CODE_BAD_REQUEST))
                    return
                if line is None:              # poll tick
                    if self._draining.is_set():
                        return
                    continue
                if line == "":                # client closed
                    return
                if not line.strip():
                    continue
                response = self._serve_line(line)
                if not self._send(sock, response):
                    return
                if self._draining.is_set():
                    return
        except OSError:
            # Peer reset / socket torn down mid-write; the connection is
            # done but the server keeps serving everyone else.
            self.metrics.emit("connection_error")
        finally:
            self.metrics.gauge(mn.NETSERVE_ACTIVE_CONNECTIONS).add(-1)

    def _send(self, sock: socket.socket, response: dict) -> bool:
        payload = (json.dumps(response, ensure_ascii=False) + "\n").encode()
        try:
            sock.sendall(payload)
            return True
        except OSError:
            self.metrics.emit("connection_error", during="send")
            return False

    # ------------------------------------------------------------------
    # Per-request pipeline: parse → auth → admit → dispatch
    # ------------------------------------------------------------------
    def _serve_line(self, line: str) -> dict:
        self.metrics.counter(mn.NETSERVE_REQUESTS).inc()
        started = time.perf_counter()
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as error:
            self.metrics.counter(mn.NETSERVE_PROTOCOL_ERRORS).inc()
            return protocol.error_envelope(
                error, code=protocol.CODE_BAD_REQUEST)
        request_id = request.get("id")
        response = self._dispatch(request, request_id)
        if request_id is not None:
            response["id"] = request_id
        self.metrics.histogram(mn.NETSERVE_LATENCY).observe(
            time.perf_counter() - started)
        return response

    def _dispatch(self, request: dict, request_id) -> dict:
        if request.get("op") == "ping":
            # Health probes bypass auth and admission: a supervisor must
            # be able to distinguish "draining" from "dead".
            if self._draining.is_set():
                return protocol.error_envelope(
                    "server is draining", code=protocol.CODE_DRAINING,
                    retry_after_s=self.config.close_timeout_s)
            return {"ok": True, "op": "ping"}
        if self._draining.is_set():
            self.metrics.counter(mn.NETSERVE_DRAINING_REJECTS).inc()
            return protocol.error_envelope(
                "server is draining", code=protocol.CODE_DRAINING,
                retry_after_s=self.config.close_timeout_s)
        tenant = self.tenants.authenticate(request.get("api_key"))
        if tenant is None:
            self.metrics.counter(mn.NETSERVE_AUTH_FAILURES).inc()
            return protocol.error_envelope(
                "unknown or missing api_key", code=protocol.CODE_AUTH)
        try:
            deadline = self._request_deadline(request)
        except ValueError as error:
            self.metrics.counter(mn.NETSERVE_PROTOCOL_ERRORS).inc()
            return protocol.error_envelope(
                error, code=protocol.CODE_BAD_REQUEST)
        try:
            ticket = self.admission.admit(tenant, deadline)
        except AdmissionRejected as rejection:
            return protocol.error_envelope(
                str(rejection), code=rejection.code,
                retry_after_s=rejection.retry_after_s)
        with ticket:
            try:
                return protocol.handle_request(self.service, request,
                                               deadline=deadline)
            except ValueError as error:
                self.metrics.counter(mn.SERVING_BAD_REQUESTS).inc()
                self.metrics.emit("bad_request", error=repr(error))
                return protocol.error_envelope(
                    error, code=protocol.CODE_BAD_REQUEST)
            except (DeadlineExceeded, FlushTimeout) as error:
                return protocol.error_envelope(
                    error, code=protocol.CODE_UNAVAILABLE,
                    retry_after_s=self.admission.config.retry_after_s)
            except Exception as error:  # noqa: BLE001 — reported, survives
                if type(error).__name__ == "ServingError":
                    # Budget exhausted with no fallback: the service is
                    # degraded, not the request malformed.
                    return protocol.error_envelope(
                        error, code=protocol.CODE_UNAVAILABLE,
                        retry_after_s=self.admission.config.retry_after_s)
                self.metrics.emit("internal_error", error=repr(error))
                return protocol.error_envelope(
                    error, code=protocol.CODE_INTERNAL)

    def _request_deadline(self, request: dict) -> Deadline:
        raw = request.get("deadline_ms")
        if raw is None:
            return Deadline.after(self.config.default_deadline_s)
        if isinstance(raw, bool) or not isinstance(raw, (int, float)) \
                or raw <= 0:
            raise ValueError("deadline_ms must be a positive number")
        return Deadline.after(float(raw) / 1000.0)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Frontend snapshot: connections, admission, per-tenant usage."""
        snapshot = self.metrics.snapshot()
        return {
            "address": self.address if self._tcp is not None else None,
            "draining": self.draining,
            "inflight": self.admission.inflight(),
            "connections": snapshot["counters"].get(
                mn.NETSERVE_CONNECTIONS, 0),
            "requests": snapshot["counters"].get(mn.NETSERVE_REQUESTS, 0),
            "rejections": snapshot["counters"].get(
                mn.NETSERVE_REJECTIONS, 0),
            "tenants": self.tenants.stats(),
        }
