"""Tenant registry: API keys carrying rate limits and concurrency quotas.

Every socket request authenticates with an ``api_key``; the key resolves
to a :class:`TenantState` holding the tenant's operational quota:

* a **token bucket** (``rate_per_s`` tokens/second, ``burst`` capacity)
  bounding sustained request rate while absorbing short bursts, and
* a **concurrency quota** (``max_concurrency``) bounding how many of the
  tenant's requests may execute at once — one tenant's flood consumes
  its own slots, not the shared service.

Tenant configuration is declarative (:meth:`TenantRegistry.from_json` /
``from_file``)::

    {"tenants": [
        {"name": "noc-east", "api_key": "k-noc-east",
         "rate_per_s": 50, "burst": 100, "max_concurrency": 8},
        ...
    ]}

All state is thread-safe: connection-handler threads call
:meth:`TokenBucket.try_acquire` and mutate inflight counts concurrently.
Clocks are injectable for deterministic refill-timing tests.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable


@dataclass(frozen=True)
class TenantSpec:
    """Declarative quota configuration for one tenant."""

    #: stable identifier (reports, per-tenant stats)
    name: str
    #: shared secret presented as ``api_key`` on every request
    api_key: str
    #: sustained request rate (tokens/second); ``0`` disables rate limiting
    rate_per_s: float = 0.0
    #: bucket capacity — the burst absorbed beyond the sustained rate
    burst: int = 1
    #: concurrent in-flight requests this tenant may hold; ``0`` = unlimited
    max_concurrency: int = 0

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not self.api_key:
            raise ValueError(f"tenant {self.name!r} needs an api_key")
        if self.rate_per_s < 0:
            raise ValueError(f"tenant {self.name!r}: rate_per_s must be "
                             f"non-negative (0 = unlimited)")
        if self.burst < 1:
            raise ValueError(f"tenant {self.name!r}: burst must be >= 1")
        if self.max_concurrency < 0:
            raise ValueError(f"tenant {self.name!r}: max_concurrency must "
                             f"be non-negative (0 = unlimited)")


class TokenBucket:
    """Thread-safe token bucket on the monotonic clock.

    Starts full (``burst`` tokens); refills continuously at
    ``rate_per_s``.  :meth:`try_acquire` never blocks — it either takes a
    token or reports how long until one is available, so rejection paths
    can answer with a concrete ``retry_after_s`` instead of queueing.
    A ``rate_per_s`` of 0 means unlimited (every acquire succeeds).
    """

    def __init__(self, rate_per_s: float, burst: int = 1,
                 clock: Callable[[], float] = time.monotonic):
        if rate_per_s < 0:
            raise ValueError("rate_per_s must be non-negative")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate_per_s = float(rate_per_s)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._refilled_at = clock()
        self._lock = threading.Lock()

    def _refill_locked(self, now: float) -> None:
        elapsed = max(0.0, now - self._refilled_at)
        self._refilled_at = now
        if self.rate_per_s > 0:
            self._tokens = min(float(self.burst),
                               self._tokens + elapsed * self.rate_per_s)

    def try_acquire(self) -> tuple[bool, float]:
        """Take one token if available.

        Returns ``(granted, retry_after_s)`` — ``retry_after_s`` is 0.0
        when granted, else the time until the next token accrues.
        """
        if self.rate_per_s == 0:
            return True, 0.0
        with self._lock:
            now = self._clock()
            self._refill_locked(now)
            # epsilon absorbs float error from incremental refills, so a
            # client that waited exactly its advertised retry_after_s is
            # granted rather than bounced on the 15th decimal
            if self._tokens >= 1.0 - 1e-9:
                self._tokens = max(0.0, self._tokens - 1.0)
                return True, 0.0
            return False, (1.0 - self._tokens) / self.rate_per_s

    def available(self) -> float:
        """Current token count (refilled to now); for stats/tests."""
        if self.rate_per_s == 0:
            return float("inf")
        with self._lock:
            self._refill_locked(self._clock())
            return self._tokens


class TenantState:
    """Live per-tenant state: quota instruments plus usage accounting."""

    def __init__(self, spec: TenantSpec,
                 clock: Callable[[], float] = time.monotonic):
        self.spec = spec
        self.bucket = TokenBucket(spec.rate_per_s, spec.burst, clock=clock)
        self._lock = threading.Lock()
        self.inflight = 0
        self.admitted = 0
        self.rejected = 0

    @property
    def name(self) -> str:
        return self.spec.name

    def try_start(self) -> bool:
        """Claim one concurrency slot; False when the quota is spent."""
        with self._lock:
            limit = self.spec.max_concurrency
            if limit and self.inflight >= limit:
                return False
            self.inflight += 1
            return True

    def finish(self) -> None:
        """Release a slot claimed by :meth:`try_start`."""
        with self._lock:
            self.inflight = max(0, self.inflight - 1)

    def note_admitted(self) -> None:
        with self._lock:
            self.admitted += 1

    def note_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def stats(self) -> dict:
        """Usage snapshot for the per-tenant stats table."""
        with self._lock:
            return {
                "name": self.spec.name,
                "inflight": self.inflight,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "rate_per_s": self.spec.rate_per_s,
                "burst": self.spec.burst,
                "max_concurrency": self.spec.max_concurrency,
            }


class TenantRegistry:
    """API-key → tenant resolution over a fixed set of tenant specs."""

    def __init__(self, specs: list[TenantSpec],
                 clock: Callable[[], float] = time.monotonic):
        if not specs:
            raise ValueError("a TenantRegistry needs at least one tenant")
        self._by_key: dict[str, TenantState] = {}
        by_name: set[str] = set()
        for spec in specs:
            if spec.api_key in self._by_key:
                raise ValueError(
                    f"duplicate api_key for tenant {spec.name!r}")
            if spec.name in by_name:
                raise ValueError(f"duplicate tenant name {spec.name!r}")
            by_name.add(spec.name)
            self._by_key[spec.api_key] = TenantState(spec, clock=clock)

    @classmethod
    def from_json(cls, obj: dict, **kwargs) -> "TenantRegistry":
        """Build from the declarative ``{"tenants": [...]}`` shape."""
        tenants = obj.get("tenants")
        if not isinstance(tenants, list) or not tenants:
            raise ValueError(
                "tenant config needs a non-empty 'tenants' list")
        specs = []
        for raw in tenants:
            if not isinstance(raw, dict):
                raise ValueError("each tenant must be a JSON object")
            unknown = set(raw) - {"name", "api_key", "rate_per_s", "burst",
                                  "max_concurrency"}
            if unknown:
                raise ValueError(
                    f"unknown tenant field(s): {sorted(unknown)}")
            specs.append(TenantSpec(
                name=str(raw.get("name", "")),
                api_key=str(raw.get("api_key", "")),
                rate_per_s=float(raw.get("rate_per_s", 0.0)),
                burst=int(raw.get("burst", 1)),
                max_concurrency=int(raw.get("max_concurrency", 0))))
        return cls(specs, **kwargs)

    @classmethod
    def from_file(cls, path: str | Path, **kwargs) -> "TenantRegistry":
        """Load the JSON tenant config at ``path``."""
        return cls.from_json(json.loads(Path(path).read_text()), **kwargs)

    @classmethod
    def single(cls, api_key: str, *, name: str = "default",
               rate_per_s: float = 0.0, burst: int = 1,
               max_concurrency: int = 0, **kwargs) -> "TenantRegistry":
        """One-tenant registry — the ``serve-net`` CLI default."""
        return cls([TenantSpec(name=name, api_key=api_key,
                               rate_per_s=rate_per_s, burst=burst,
                               max_concurrency=max_concurrency)], **kwargs)

    def authenticate(self, api_key) -> TenantState | None:
        """The tenant owning ``api_key``, or None (auth failure)."""
        if not isinstance(api_key, str):
            return None
        return self._by_key.get(api_key)

    def tenants(self) -> list[TenantState]:
        """Every tenant, in configuration order."""
        return list(self._by_key.values())

    def stats(self) -> list[dict]:
        """Per-tenant usage snapshots (the ``stats`` op / drain report)."""
        return [tenant.stats() for tenant in self._by_key.values()]
