"""Trend rendering: markdown tables + sparkline text charts.

Reads the per-benchmark history files
(``benchmarks/results/history/<name>.jsonl``) and renders, per benchmark,
one row per metric: the latest value, the delta against the oldest shown
run, and a sparkline of the trajectory — so a reviewer sees whether
``stage2_step_ms`` has been creeping up across PRs without downloading
anything.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.history import load_history
from repro.bench.registry import REGISTRY, get_spec

#: Eight-level block ramp; index 0 renders troughs, index 7 peaks.
SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """Map a numeric series onto the block ramp (constant series -> mid)."""
    if not values:
        return ""
    low, high = min(values), max(values)
    if high == low:
        return SPARK_LEVELS[3] * len(values)
    span = high - low
    return "".join(
        SPARK_LEVELS[min(len(SPARK_LEVELS) - 1,
                         int((value - low) / span * len(SPARK_LEVELS)))]
        for value in values)


def _series(entries: list[dict], metric: str) -> list[float]:
    values: list[float] = []
    for entry in entries:
        for item in entry.get("metrics", []):
            if item.get("metric") == metric:
                values.append(float(item["value"]))
                break
    return values


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.3f}"


def render_benchmark(bench_id: str, entries: list[dict],
                     last: int = 20) -> str:
    """Markdown trend block for one benchmark's history entries."""
    spec = get_spec(bench_id)
    entries = entries[-last:]
    lines = [f"## `{bench_id}` — {spec.title}", ""]
    if not entries:
        lines.append("_no history yet — run the benchmark suite_")
        lines.append("")
        return "\n".join(lines)
    first, latest = entries[0], entries[-1]
    lines.append(f"{len(entries)} run(s), `{first.get('git_sha', '?')}` "
                 f"({first.get('date', '?')[:10]}) → "
                 f"`{latest.get('git_sha', '?')}` "
                 f"({latest.get('date', '?')[:10]})")
    lines.append("")
    lines.append("| metric | latest | vs oldest | trend |")
    lines.append("|---|---|---|---|")
    names = [m.name for m in spec.metrics]
    emitted = {item.get("metric")
               for entry in entries for item in entry.get("metrics", [])}
    names += sorted(emitted - set(names) - {None})
    for name in names:
        series = _series(entries, name)
        if not series:
            continue
        delta = "-"
        if len(series) > 1 and series[0] != 0:
            delta = f"{(series[-1] - series[0]) / abs(series[0]) * 100:+.1f}%"
        metric_spec = spec.metric(name)
        unit = f" {metric_spec.unit}" if metric_spec and metric_spec.unit \
            else ""
        lines.append(f"| `{name}` | {_fmt(series[-1])}{unit} | {delta} "
                     f"| `{sparkline(series)}` |")
    lines.append("")
    return "\n".join(lines)


def render_report(history_dir: str | Path,
                  bench_ids: list[str] | None = None,
                  last: int = 20) -> str:
    """The full markdown trend report across (selected) benchmarks."""
    ids = bench_ids if bench_ids is not None else sorted(REGISTRY)
    blocks = ["# Benchmark trends", "",
              f"History root: `{Path(history_dir).as_posix()}` "
              f"(last {last} runs per benchmark)", ""]
    for bench_id in ids:
        entries = load_history(history_dir, bench_id)
        blocks.append(render_benchmark(bench_id, entries, last=last))
    return "\n".join(blocks)


__all__ = ["SPARK_LEVELS", "render_benchmark", "render_report", "sparkline"]
