"""Baseline comparison: the CI regression gate.

Compares the latest ``BENCH_<name>.json`` results against the committed
baselines under ``benchmarks/baselines/`` using the per-metric directions
and tolerances from the registry.  The contract:

* an **improvement never fails**, whatever its size;
* a regression **within tolerance passes** (recorded as ``ok``);
* a regression **past tolerance always fails** (``regressed``);
* a gating metric **absent from the current run fails** (``missing``) —
  a benchmark cannot dodge its gate by not emitting the metric;
* a metric whose ``binding_key`` resolves falsy in the run's config is
  **skipped with a recorded note** (``non-binding``), e.g. the ≥2x
  data-parallel bar on a 1-CPU host;
* tracked metrics (no tolerance) and metrics new to the baseline are
  reported but never fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.registry import (
    HIGHER_IS_BETTER,
    REGISTRY,
    BenchSpec,
    MetricSpec,
    get_spec,
)
from repro.bench.schema import BenchRun, load_run, result_path

#: Default location of the committed baselines, relative to the repo root.
BASELINES_DIRNAME = "baselines"

# Row statuses.  FAILING ones flip the exit code.
OK = "ok"
IMPROVED = "improved"
REGRESSED = "regressed"
MISSING = "missing"
NON_BINDING = "non-binding"
TRACKED = "tracked"
NEW = "new"
UNSPECCED = "unspecced"
FAILING = (REGRESSED, MISSING)


@dataclass(frozen=True)
class MetricComparison:
    """One metric's verdict: values, relative delta, status, note."""

    metric: str
    status: str
    baseline: float | None = None
    current: float | None = None
    delta_pct: float | None = None
    tolerance_pct: float | None = None
    direction: str = ""
    unit: str = ""
    note: str = ""

    @property
    def failed(self) -> bool:
        return self.status in FAILING


@dataclass
class BenchComparison:
    """All metric verdicts for one benchmark."""

    bench_id: str
    rows: list[MetricComparison] = field(default_factory=list)
    error: str = ""                 # load/schema problem, fails the check

    @property
    def failed(self) -> bool:
        return bool(self.error) or any(row.failed for row in self.rows)


def _config_flag(config: dict, dotted: str) -> object:
    """Resolve ``a.b.c`` inside a nested config dict (missing -> None)."""
    cursor: object = config
    for part in dotted.split("."):
        if not isinstance(cursor, dict) or part not in cursor:
            return None
        cursor = cursor[part]
    return cursor


def compare_metric(spec: MetricSpec, baseline: float | None,
                   current: float | None,
                   config: dict) -> MetricComparison:
    """Apply the direction-aware tolerance policy to one metric."""
    common = dict(metric=spec.name, baseline=baseline, current=current,
                  direction=spec.direction, unit=spec.unit,
                  tolerance_pct=(spec.tolerance * 100.0
                                 if spec.tolerance is not None else None))
    if spec.binding_key is not None and \
            not _config_flag(config, spec.binding_key):
        return MetricComparison(
            status=NON_BINDING,
            note=f"config {spec.binding_key} is falsy on this run; "
                 f"bar not binding, measurement recorded only", **common)
    if current is None:
        if spec.gating:
            return MetricComparison(
                status=MISSING,
                note="gating metric absent from the current run", **common)
        return MetricComparison(status=TRACKED,
                                note="not emitted this run", **common)
    if baseline is None:
        return MetricComparison(
            status=NEW, note="no baseline yet; promote to start gating",
            **common)
    delta = current - baseline
    delta_pct = (delta / abs(baseline) * 100.0) if baseline != 0 else None
    common["delta_pct"] = delta_pct
    worse = delta < 0 if spec.direction == HIGHER_IS_BETTER else delta > 0
    if not worse:
        status = OK if delta == 0 else IMPROVED
        return MetricComparison(status=status, **common)
    if not spec.gating:
        return MetricComparison(status=TRACKED, **common)
    # The more permissive of the relative and absolute bounds wins, so a
    # zero baseline (relative bound admits nothing) can still carry an
    # absolute allowance.
    allowed = 0.0
    if spec.tolerance is not None:
        allowed = max(allowed, spec.tolerance * abs(baseline))
    if spec.abs_tolerance is not None:
        allowed = max(allowed, spec.abs_tolerance)
    if abs(delta) <= allowed:
        return MetricComparison(status=OK, **common)
    return MetricComparison(
        status=REGRESSED,
        note=f"worse than baseline by more than the allowed "
             f"{allowed:g}{spec.unit or ''}", **common)


def compare_runs(spec: BenchSpec, baseline: BenchRun | None,
                 current: BenchRun | None) -> BenchComparison:
    """Compare one benchmark's current run against its baseline."""
    comparison = BenchComparison(bench_id=spec.bench_id)
    base_metrics = baseline.metrics if baseline else {}
    cur_metrics = current.metrics if current else {}
    config = current.config if current else {}
    for metric_spec in spec.metrics:
        comparison.rows.append(compare_metric(
            metric_spec, base_metrics.get(metric_spec.name),
            cur_metrics.get(metric_spec.name), config))
    specced = {m.name for m in spec.metrics}
    for name in sorted(set(cur_metrics) - specced):
        comparison.rows.append(MetricComparison(
            metric=name, status=UNSPECCED, current=cur_metrics[name],
            baseline=base_metrics.get(name),
            note="emitted but not in the registry; add a MetricSpec"))
    return comparison


def check_benchmarks(results_dir: str | Path, baselines_dir: str | Path,
                     bench_ids: list[str] | None = None
                     ) -> list[BenchComparison]:
    """Run the gate for every benchmark that has a current result file.

    A result file without a committed baseline is an error (the gate
    cannot be dodged by never promoting); a registered benchmark with
    no current result is skipped — not every suite runs in every tier.
    """
    results_dir = Path(results_dir)
    baselines_dir = Path(baselines_dir)
    ids = bench_ids if bench_ids is not None else sorted(REGISTRY)
    comparisons: list[BenchComparison] = []
    for bench_id in ids:
        spec = get_spec(bench_id)
        current_path = result_path(results_dir, bench_id)
        if not current_path.exists():
            if bench_ids is not None:
                comparison = BenchComparison(bench_id=bench_id)
                comparison.error = f"no current result at {current_path}"
                comparisons.append(comparison)
            continue
        comparison = BenchComparison(bench_id=bench_id)
        try:
            current = load_run(current_path)
        except (ValueError, OSError) as error:
            comparison.error = f"unreadable current result: {error}"
            comparisons.append(comparison)
            continue
        baseline_path = result_path(baselines_dir, bench_id)
        if not baseline_path.exists():
            comparison.error = (
                f"no committed baseline at {baseline_path} — run "
                f"`python -m repro bench promote --names {spec.bench_id}`")
            comparisons.append(comparison)
            continue
        try:
            baseline = load_run(baseline_path)
        except (ValueError, OSError) as error:
            comparison.error = f"unreadable baseline: {error}"
            comparisons.append(comparison)
            continue
        comparisons.append(compare_runs(spec, baseline, current))
    return comparisons


# ---------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------
def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.3f}"


def _fmt_pct(value: float | None) -> str:
    return "-" if value is None else f"{value:+.1f}%"


def _row_cells(row: MetricComparison) -> tuple[str, ...]:
    tol = ("-" if row.tolerance_pct is None
           else f"{row.tolerance_pct:.0f}%")
    arrow = "↑" if row.direction == HIGHER_IS_BETTER else \
        ("↓" if row.direction else "·")
    return (row.metric, arrow, _fmt(row.baseline), _fmt(row.current),
            _fmt_pct(row.delta_pct), tol, row.status, row.note)


_HEADER = ("metric", "dir", "baseline", "current", "delta", "tol",
           "status", "note")


def render_text(comparisons: list[BenchComparison]) -> str:
    """Fixed-width per-metric tables for terminal output."""
    blocks: list[str] = []
    for comparison in comparisons:
        lines = [f"== {comparison.bench_id} "
                 f"{'FAIL' if comparison.failed else 'ok'} =="]
        if comparison.error:
            lines.append(f"  ERROR: {comparison.error}")
            blocks.append("\n".join(lines))
            continue
        cells = [_HEADER] + [_row_cells(row) for row in comparison.rows]
        widths = [max(len(row[col]) for row in cells)
                  for col in range(len(_HEADER))]
        for row in cells:
            lines.append("  " + "  ".join(
                cell.ljust(width) for cell, width in zip(row, widths))
                .rstrip())
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def render_markdown(comparisons: list[BenchComparison]) -> str:
    """GitHub-flavoured markdown (for ``$GITHUB_STEP_SUMMARY``)."""
    lines: list[str] = ["# Benchmark regression gate", ""]
    for comparison in comparisons:
        verdict = "❌ FAIL" if comparison.failed else "✅ ok"
        lines.append(f"## `{comparison.bench_id}` — {verdict}")
        lines.append("")
        if comparison.error:
            lines.append(f"**Error:** {comparison.error}")
            lines.append("")
            continue
        lines.append("| " + " | ".join(_HEADER) + " |")
        lines.append("|" + "---|" * len(_HEADER))
        for row in comparison.rows:
            cells = _row_cells(row)
            cells = (f"`{cells[0]}`",) + cells[1:]
            lines.append("| " + " | ".join(cells) + " |")
        lines.append("")
    return "\n".join(lines)


__all__ = [
    "BASELINES_DIRNAME",
    "BenchComparison",
    "FAILING",
    "IMPROVED",
    "MISSING",
    "MetricComparison",
    "NEW",
    "NON_BINDING",
    "OK",
    "REGRESSED",
    "TRACKED",
    "UNSPECCED",
    "check_benchmarks",
    "compare_metric",
    "compare_runs",
    "render_markdown",
    "render_text",
]
