"""Intentional baseline updates, journaled.

``python -m repro bench promote`` copies the current ``BENCH_<name>.json``
results over the committed baselines — and appends one record per
benchmark to ``benchmarks/baselines/promotions.jsonl`` capturing who
moved which metric from what to what.  A regression can therefore never
be silently absorbed into the baseline: the journal line carries every
per-metric delta (including the regressed ones being accepted) plus the
operator's ``--note``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from repro.bench.registry import REGISTRY, get_spec
from repro.bench.schema import BenchRun, load_run, result_path
from repro.ioutil import atomic_write_bytes

#: The append-only promote journal inside the baselines directory.
JOURNAL_NAME = "promotions.jsonl"


@dataclass
class Promotion:
    """The journal record for one benchmark's baseline update."""

    bench_id: str
    date: str
    git_sha: str
    previous_sha: str | None
    note: str
    changes: list[dict] = field(default_factory=list)

    def to_payload(self) -> dict:
        return {
            "bench_id": self.bench_id,
            "date": self.date,
            "git_sha": self.git_sha,
            "previous_sha": self.previous_sha,
            "note": self.note,
            "changes": self.changes,
        }


def _metric_changes(previous: BenchRun | None,
                    current: BenchRun) -> list[dict]:
    old = previous.metrics if previous else {}
    changes: list[dict] = []
    for name in sorted(set(old) | set(current.metrics)):
        before, after = old.get(name), current.metrics.get(name)
        if before == after:
            continue
        change: dict = {"metric": name, "from": before, "to": after}
        if before not in (None, 0) and after is not None:
            change["delta_pct"] = round(
                (after - before) / abs(before) * 100.0, 2)
        changes.append(change)
    return changes


def promote(results_dir: str | Path, baselines_dir: str | Path,
            bench_ids: list[str] | None = None, note: str = "",
            now: datetime | None = None) -> list[Promotion]:
    """Promote current results to baselines; returns the journal records.

    Without ``bench_ids``, every registered benchmark that has a current
    result file is promoted; naming a benchmark with no current result is
    an error (there is nothing to promote).
    """
    results_dir = Path(results_dir)
    baselines_dir = Path(baselines_dir)
    ids = bench_ids if bench_ids is not None else sorted(REGISTRY)
    promotions: list[Promotion] = []
    stamp = (now or datetime.now(timezone.utc)).isoformat(
        timespec="seconds")
    for bench_id in ids:
        get_spec(bench_id)
        current_path = result_path(results_dir, bench_id)
        if not current_path.exists():
            if bench_ids is not None:
                raise FileNotFoundError(
                    f"nothing to promote for {bench_id!r}: "
                    f"{current_path} does not exist")
            continue
        current = load_run(current_path)
        baseline_path = result_path(baselines_dir, bench_id)
        previous = load_run(baseline_path) if baseline_path.exists() \
            else None
        record = Promotion(
            bench_id=bench_id, date=stamp, git_sha=current.git_sha,
            previous_sha=previous.git_sha if previous else None,
            note=note, changes=_metric_changes(previous, current))
        baselines_dir.mkdir(parents=True, exist_ok=True)
        # Byte-for-byte copy of the result file: the baseline is the
        # promoted run, not a re-serialisation of it.
        atomic_write_bytes(baseline_path, current_path.read_bytes())
        with open(baselines_dir / JOURNAL_NAME, "a",
                  encoding="utf-8") as journal:
            journal.write(json.dumps(record.to_payload(),
                                     sort_keys=True) + "\n")
        promotions.append(record)
    return promotions


def load_journal(baselines_dir: str | Path) -> list[dict]:
    """All promote-journal records, oldest first."""
    path = Path(baselines_dir) / JOURNAL_NAME
    if not path.exists():
        return []
    records: list[dict] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue                # torn tail
    return records


__all__ = ["JOURNAL_NAME", "Promotion", "load_journal", "promote"]
