"""The ``BenchRun`` schema and the shared emitter.

One structured shape for every benchmark result file
(``benchmarks/results/BENCH_<name>.json``), replacing the hand-rolled,
slightly-different dicts the benchmark suites used to build::

    {
      "schema_version": 1,
      "name": "train_step",             # short name (file stem)
      "bench_id": "bench.train_step",   # registry id
      "metrics": [{"metric": "stage2_step_ms", "value": 14.7}, ...],
      "config": {...},                  # run parameters, nested dicts ok
      "git_sha": "5849721",
      "date": "2026-08-08T12:00:00+00:00",
      "host": {"platform": ..., "python": ..., "cpus": ...}
    }

The emitter (:func:`record_metrics`) *merges* by metric name: benchmark
modules contribute metrics test-by-test, so the file stays complete even
when only a subset of a module runs.  Every write also upserts the merged
run into the history store (``results/history/<name>.jsonl``) keyed by
git sha, so trends survive across PRs.
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from repro.bench.history import HISTORY_DIRNAME, append_run
from repro.bench.registry import NAMESPACE, get_spec, short_name
from repro.ioutil import atomic_write_text

SCHEMA_VERSION = 1

#: Result-file naming convention: ``BENCH_<short_name>.json``.
FILE_PREFIX = "BENCH_"


def result_path(results_dir: str | Path, bench_id: str) -> Path:
    """``benchmarks/results/BENCH_<short>.json`` for a benchmark id."""
    return Path(results_dir) / f"{FILE_PREFIX}{short_name(bench_id)}.json"


def git_sha(cwd: str | Path | None = None) -> str:
    """Short git sha of HEAD, or ``"unknown"`` outside a checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
            cwd=cwd).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def host_info() -> dict:
    """The host facts that contextualise absolute timings."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 1,
    }


@dataclass
class BenchRun:
    """One benchmark run: named metric values plus provenance."""

    bench_id: str
    metrics: dict[str, float] = field(default_factory=dict)
    config: dict = field(default_factory=dict)
    git_sha: str = "unknown"
    date: str = ""
    host: dict = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    @property
    def name(self) -> str:
        return short_name(self.bench_id)

    def to_payload(self) -> dict:
        """The canonical JSON-ready dict (metrics sorted by name)."""
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "bench_id": self.bench_id,
            "metrics": [{"metric": k, "value": self.metrics[k]}
                        for k in sorted(self.metrics)],
            "config": self.config,
            "git_sha": self.git_sha,
            "date": self.date,
            "host": self.host,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "BenchRun":
        """Parse a payload, accepting the pre-schema legacy shape.

        Legacy files (``schema_version`` absent) carried ``name`` but no
        ``bench_id`` or ``host``; both are derived/filled so old results
        merge cleanly into the new schema on the next emit.
        """
        problems = validate_payload(payload, strict=False)
        if problems:
            raise ValueError(
                f"invalid benchmark payload: {'; '.join(problems)}")
        bench_id = payload.get("bench_id") or NAMESPACE + payload["name"]
        metrics = {m["metric"]: float(m["value"])
                   for m in payload.get("metrics", [])}
        return cls(bench_id=bench_id, metrics=metrics,
                   config=dict(payload.get("config") or {}),
                   git_sha=payload.get("git_sha", "unknown"),
                   date=payload.get("date", ""),
                   host=dict(payload.get("host") or {}),
                   schema_version=int(payload.get("schema_version", 0)))


def validate_payload(payload: object, strict: bool = True) -> list[str]:
    """Return schema problems for a result payload ([] = valid).

    ``strict=False`` tolerates the legacy pre-``repro.bench`` shape
    (missing ``schema_version``/``bench_id``/``host``) so old committed
    results stay loadable; structural problems (bad metric entries,
    non-finite values, mismatched ids) are reported either way.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        problems.append("missing or empty 'name'")
    bench_id = payload.get("bench_id")
    if bench_id is not None:
        if not isinstance(bench_id, str) or \
                not bench_id.startswith(NAMESPACE):
            problems.append(f"'bench_id' must start with {NAMESPACE!r}")
        elif isinstance(name, str) and bench_id != NAMESPACE + name:
            problems.append(f"'bench_id' {bench_id!r} does not match "
                            f"'name' {name!r}")
    elif strict:
        problems.append("missing 'bench_id'")
    if strict and not isinstance(payload.get("schema_version"), int):
        problems.append("missing integer 'schema_version'")
    if strict and not isinstance(payload.get("host"), dict):
        problems.append("missing 'host' object")
    metrics = payload.get("metrics")
    if not isinstance(metrics, list):
        problems.append("'metrics' must be a list")
        metrics = []
    seen: set[str] = set()
    for index, entry in enumerate(metrics):
        if not isinstance(entry, dict) or "metric" not in entry \
                or "value" not in entry:
            problems.append(f"metrics[{index}] must be an object with "
                            f"'metric' and 'value'")
            continue
        metric = entry["metric"]
        if not isinstance(metric, str) or not metric:
            problems.append(f"metrics[{index}].metric must be a "
                            f"non-empty string")
            continue
        if metric in seen:
            problems.append(f"duplicate metric {metric!r}")
        seen.add(metric)
        value = entry["value"]
        if isinstance(value, bool) or \
                not isinstance(value, (int, float)) or \
                not math.isfinite(float(value)):
            problems.append(f"metric {metric!r} value must be a finite "
                            f"number, got {value!r}")
    config = payload.get("config")
    if config is not None and not isinstance(config, dict):
        problems.append("'config' must be an object")
    for key in ("git_sha", "date"):
        value = payload.get(key)
        if value is not None and not isinstance(value, str):
            problems.append(f"'{key}' must be a string")
    return problems


def load_run(path: str | Path) -> BenchRun:
    """Load (and normalise) one ``BENCH_*.json`` result file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    try:
        return BenchRun.from_payload(payload)
    except ValueError as error:
        raise ValueError(f"{path}: {error}") from None


def record_metrics(results_dir: str | Path, bench_id: str,
                   metrics: dict[str, float],
                   config: dict | None = None,
                   update_history: bool = True,
                   now: datetime | None = None) -> BenchRun:
    """Merge metric/value pairs into ``BENCH_<name>.json`` and the history.

    The benchmark must be registered (typo'd ids fail loudly instead of
    creating an ungated orphan file).  Values are rounded to 3 decimals;
    existing metrics/config keys from previous tests in the same run are
    preserved, matching the pre-platform merge-by-name behaviour.
    """
    get_spec(bench_id)              # unknown benchmarks fail loudly
    results_dir = Path(results_dir)
    path = result_path(results_dir, bench_id)
    run = BenchRun(bench_id=bench_id)
    if path.exists():
        run = load_run(path)
        if run.bench_id != bench_id:
            raise ValueError(f"{path} holds {run.bench_id!r}, refusing to "
                             f"merge {bench_id!r} into it")
    for key, value in metrics.items():
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"metric {key!r} is not finite: {value!r}")
        run.metrics[key] = round(value, 3)
    run.config.update(config or {})
    run.git_sha = git_sha(cwd=results_dir)
    stamp = now or datetime.now(timezone.utc)
    run.date = stamp.isoformat(timespec="seconds")
    run.host = host_info()
    run.schema_version = SCHEMA_VERSION
    atomic_write_text(path, json.dumps(run.to_payload(), indent=2) + "\n")
    if update_history:
        append_run(results_dir / HISTORY_DIRNAME, run)
    return run


__all__ = [
    "BenchRun",
    "FILE_PREFIX",
    "SCHEMA_VERSION",
    "git_sha",
    "host_info",
    "load_run",
    "record_metrics",
    "result_path",
    "validate_payload",
]
