"""Append-only trend history: one JSONL file per benchmark.

``benchmarks/results/history/<name>.jsonl`` accumulates one line per
benchmark run, keyed by git sha: re-running a benchmark at the same sha
*replaces* the trailing entry instead of appending (the suites merge
metrics test-by-test, so a run emits several partial writes that must
collapse into one history record), while a new sha appends.  The file is
capped at :data:`MAX_ENTRIES` — when rotation trims old entries, a
marker line records how many were dropped so a truncated trend is never
mistaken for the complete one.

JSONL is the sanctioned append-friendly format here (a torn tail loses
one record, not the file); rewrites for upsert/rotation go through the
atomic writer.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.registry import short_name
from repro.ioutil import atomic_write_text

#: Subdirectory of the results dir holding the per-benchmark trend files.
HISTORY_DIRNAME = "history"

#: Entries retained per benchmark before rotation trims the oldest.
MAX_ENTRIES = 500


def history_path(history_dir: str | Path, bench_id: str) -> Path:
    """``<history_dir>/<short_name>.jsonl`` for a benchmark id."""
    return Path(history_dir) / f"{short_name(bench_id)}.jsonl"


def _to_payload(run) -> dict:
    return run.to_payload() if hasattr(run, "to_payload") else dict(run)


def load_history(history_dir: str | Path, bench_id: str) -> list[dict]:
    """All decodable history entries, oldest first (rotation markers
    excluded).  A torn/corrupt trailing line is skipped, not fatal."""
    path = history_path(history_dir, bench_id)
    if not path.exists():
        return []
    entries: list[dict] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue                # torn tail from a crashed writer
        if isinstance(entry, dict) and "rotated" not in entry:
            entries.append(entry)
    return entries


def _rotation_dropped(path: Path) -> int:
    """Total entries rotation has dropped so far (from marker lines)."""
    if not path.exists():
        return 0
    dropped = 0
    for line in path.read_text(encoding="utf-8").splitlines():
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict) and "rotated" in entry:
            dropped += int(entry["rotated"])
    return dropped


def append_run(history_dir: str | Path, run,
               max_entries: int = MAX_ENTRIES) -> Path:
    """Upsert a run into the benchmark's trend file.

    Same git sha as the trailing entry -> replace it (partial emits from
    one run collapse); otherwise append.  Past ``max_entries`` the oldest
    entries rotate out behind a ``{"rotated": N}`` marker line.
    """
    payload = _to_payload(run)
    path = history_path(history_dir, payload["bench_id"])
    entries = load_history(history_dir, payload["bench_id"])
    dropped = _rotation_dropped(path)
    sha = payload.get("git_sha", "unknown")
    if entries and entries[-1].get("git_sha") == sha and sha != "unknown":
        entries[-1] = payload
    else:
        entries.append(payload)
    if len(entries) > max_entries:
        dropped += len(entries) - max_entries
        entries = entries[-max_entries:]
    lines = []
    if dropped:
        lines.append(json.dumps({"rotated": dropped}))
    lines.extend(json.dumps(entry, sort_keys=True) for entry in entries)
    atomic_write_text(path, "\n".join(lines) + "\n")
    return path


__all__ = [
    "HISTORY_DIRNAME",
    "MAX_ENTRIES",
    "append_run",
    "history_path",
    "load_history",
]
