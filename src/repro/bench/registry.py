"""Registry of known benchmarks: metrics, directions, tolerances.

This module is the single source of truth for ``bench.*`` benchmark ids
(the ``RL007`` lint rule rejects ``bench.``-shaped literals anywhere else
in ``src/repro``) and for each benchmark's gating policy: which metrics
exist, which direction is better, and how much regression the CI gate
tolerates before failing.

Tolerance philosophy
--------------------
Absolute timings (milliseconds, names/sec) vary wildly across hosts —
the committed baseline was measured on one machine, CI runs on another —
so raw latencies are *tracked* (``tolerance=None``: recorded, charted,
never gating) while host-independent ratios (speedups), invariant counts
(protocol errors, forward passes on a warm cache), and generous relative
bounds carry the gate.  A metric whose bar only binds under certain run
conditions (the ≥2x data-parallel speedup needs ≥4 CPUs) names a
``binding_key`` into the run's config; when that key resolves to a falsy
value the metric is skipped with a recorded note instead of failing on a
1-CPU runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Directions a metric can improve in.
HIGHER_IS_BETTER = "higher_is_better"
LOWER_IS_BETTER = "lower_is_better"
DIRECTIONS = (HIGHER_IS_BETTER, LOWER_IS_BETTER)

#: Namespace prefix every benchmark id carries ("bench.<short_name>").
NAMESPACE = "bench."

# -- benchmark ids (the canonical ``bench.*`` strings) -----------------
BENCH_TRAIN_STEP = "bench.train_step"
BENCH_NETSERVE_LOAD = "bench.netserve_load"
BENCH_SERVING_THROUGHPUT = "bench.serving_throughput"
BENCH_SERVING_DEGRADATION = "bench.serving_degradation"
BENCH_INDEX_RETRIEVAL = "bench.index_retrieval"


def short_name(bench_id: str) -> str:
    """``bench.train_step`` -> ``train_step`` (file-naming stem)."""
    if not bench_id.startswith(NAMESPACE):
        raise ValueError(f"benchmark id must start with {NAMESPACE!r}: "
                         f"{bench_id!r}")
    return bench_id[len(NAMESPACE):]


@dataclass(frozen=True)
class MetricSpec:
    """Gating policy for one metric of one benchmark.

    ``tolerance`` is the allowed *relative* regression (0.5 = the current
    value may be up to 50% worse than baseline before the gate fails);
    ``None`` means the metric is tracked and charted but never gates.
    ``abs_tolerance`` is the allowed *absolute* worsening, needed when the
    baseline is 0 (a relative bound on zero admits nothing); when both are
    set the more permissive bound wins.  ``binding_key`` is a dotted path
    into the run's ``config`` — a falsy value there makes the metric
    non-binding for that run (skipped with a note).
    """

    name: str
    direction: str = LOWER_IS_BETTER
    tolerance: float | None = None
    abs_tolerance: float | None = None
    binding_key: str | None = None
    unit: str = ""

    def __post_init__(self):
        if self.direction not in DIRECTIONS:
            raise ValueError(f"direction must be one of {DIRECTIONS}, "
                             f"got {self.direction!r}")
        if self.tolerance is not None and self.tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {self.tolerance}")
        if self.abs_tolerance is not None and self.abs_tolerance < 0:
            raise ValueError(
                f"abs_tolerance must be >= 0, got {self.abs_tolerance}")

    @property
    def gating(self) -> bool:
        """Whether this metric can ever fail the regression gate."""
        return self.tolerance is not None or self.abs_tolerance is not None


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark: id, provenance, and its metric specs."""

    bench_id: str
    title: str
    source: str = ""                # the emitting benchmark module
    metrics: tuple[MetricSpec, ...] = field(default_factory=tuple)

    def __post_init__(self):
        short_name(self.bench_id)   # validates the namespace
        seen: set[str] = set()
        for spec in self.metrics:
            if spec.name in seen:
                raise ValueError(f"duplicate metric {spec.name!r} in "
                                 f"{self.bench_id}")
            seen.add(spec.name)

    def metric(self, name: str) -> MetricSpec | None:
        for spec in self.metrics:
            if spec.name == name:
                return spec
        return None


def _ms(name: str, tolerance: float | None = None,
        abs_tolerance: float | None = None,
        binding_key: str | None = None) -> MetricSpec:
    return MetricSpec(name, LOWER_IS_BETTER, tolerance=tolerance,
                      abs_tolerance=abs_tolerance, binding_key=binding_key,
                      unit="ms")


def _speedup(name: str, tolerance: float | None = 0.5,
             binding_key: str | None = None) -> MetricSpec:
    return MetricSpec(name, HIGHER_IS_BETTER, tolerance=tolerance,
                      binding_key=binding_key, unit="x")


def _rate(name: str, tolerance: float | None = None,
          unit: str = "names/s") -> MetricSpec:
    return MetricSpec(name, HIGHER_IS_BETTER, tolerance=tolerance, unit=unit)


def _count(name: str, direction: str = LOWER_IS_BETTER,
           tolerance: float | None = None,
           abs_tolerance: float | None = None) -> MetricSpec:
    return MetricSpec(name, direction, tolerance=tolerance,
                      abs_tolerance=abs_tolerance, unit="")


#: Every known benchmark.  Ratios/counts gate; absolute timings track.
REGISTRY: dict[str, BenchSpec] = {
    spec.bench_id: spec for spec in (
        BenchSpec(
            BENCH_TRAIN_STEP,
            title="Training hot path: mask_batch, fused ops, stage-2 step",
            source="benchmarks/test_train_step_throughput.py",
            metrics=(
                _ms("mask_batch_legacy_ms"),
                _ms("mask_batch_fixed_ms"),
                _speedup("mask_batch_speedup_x"),
                _ms("fused_embedding_legacy_ms"),
                _ms("fused_embedding_fused_ms"),
                _speedup("fused_embedding_speedup_x", tolerance=0.6),
                _ms("attention_weights_legacy_ms"),
                _ms("attention_weights_fused_ms"),
                _speedup("attention_weights_speedup_x", tolerance=0.6),
                _ms("stage2_step_ms"),
                _rate("stage2_tokens_per_sec", unit="tok/s"),
                _ms("data_parallel_serial_step_ms"),
                _ms("data_parallel_parallel_step_ms"),
                # The ≥2x bar needs ≥4 CPUs; the emitter records whether
                # it binds on this host under config.data_parallel.
                _speedup("data_parallel_speedup_x",
                         binding_key="data_parallel.speedup_bar_binding"),
            )),
        BenchSpec(
            BENCH_NETSERVE_LOAD,
            title="TCP frontend: latency vs offered load + wedged shedding",
            source="benchmarks/test_netserve_load.py",
            metrics=(
                _ms("sweep_rate_50_p95_ms"),
                _ms("sweep_rate_100_p95_ms"),
                _ms("sweep_rate_200_p95_ms"),
                _ms("sweep_rate_400_p95_ms"),
                _rate("sweep_rate_50_achieved_rps", tolerance=0.25,
                      unit="req/s"),
                _rate("sweep_rate_100_achieved_rps", tolerance=0.25,
                      unit="req/s"),
                _rate("sweep_rate_200_achieved_rps", tolerance=0.25,
                      unit="req/s"),
                _rate("sweep_rate_400_achieved_rps", tolerance=0.25,
                      unit="req/s"),
                # Rejections must answer fast even on a slow runner:
                # generous relative bound plus a 50ms absolute floor.
                _ms("wedged_reject_p95_ms", tolerance=3.0,
                    abs_tolerance=50.0),
                _count("wedged_rejected", HIGHER_IS_BETTER),
                _count("wedged_answered", HIGHER_IS_BETTER),
                # Invariant: the frontend never drops a request on the
                # floor.  Baseline 0, zero absolute tolerance.
                _count("wedged_protocol_errors", abs_tolerance=0.0),
            )),
        BenchSpec(
            BENCH_SERVING_THROUGHPUT,
            title="Serving stack: batching on/off, persistent cache "
                  "cold/warm",
            source="benchmarks/test_serving_throughput.py",
            metrics=(
                _rate("unbatched_names_per_sec"),
                _rate("batched_names_per_sec"),
                _speedup("batched_speedup_x", tolerance=0.6),
                _rate("cold_names_per_sec"),
                _rate("warm_names_per_sec"),
                _count("unbatched_fwd_passes"),
                _count("batched_fwd_passes", tolerance=0.5),
                _count("cold_fwd_passes", tolerance=0.5),
                # Invariant: a warm persistent store does zero forward
                # passes.
                _count("warm_fwd_passes", abs_tolerance=0.0),
            )),
        BenchSpec(
            BENCH_SERVING_DEGRADATION,
            title="Serving stack under encoder faults: bounded latency, "
                  "bounded threads",
            source="benchmarks/test_serving_degradation.py",
            metrics=(
                _ms("healthy_p50_ms"),
                _ms("healthy_p95_ms"),
                _ms("healthy_max_ms"),
                _ms("wedged_p50_ms"),
                _ms("wedged_p95_ms"),
                # Wedged requests must stay inside the retry budget; the
                # budget itself is ~115ms so the bound is absolute-backed.
                _ms("wedged_max_ms", tolerance=3.0, abs_tolerance=250.0),
                _ms("flaky_p50_ms"),
                _ms("flaky_p95_ms"),
                _ms("flaky_max_ms", tolerance=3.0, abs_tolerance=250.0),
                # Thread growth is the hung-flush circuit-breaker bound,
                # not one-thread-per-request: small absolute headroom.
                _count("wedged_thread_growth", abs_tolerance=4.0),
                _count("wedged_fallbacks", HIGHER_IS_BETTER),
                _count("flaky_retries", HIGHER_IS_BETTER),
                _count("flaky_fallbacks", tolerance=1.0,
                       abs_tolerance=6.0),
            )),
        BenchSpec(
            BENCH_INDEX_RETRIEVAL,
            title="Vector index: recall vs exact scan + probed-query QPS",
            source="benchmarks/test_index_retrieval.py",
            metrics=(
                # Recall against the brute-force oracle is host-independent
                # (seeded synthetic world, deterministic clustering): tight
                # relative gates.
                _count("recall_at_1_10k", HIGHER_IS_BETTER, tolerance=0.05),
                _count("recall_at_10_10k", HIGHER_IS_BETTER,
                       tolerance=0.05),
                _count("recall_at_1_100k", HIGHER_IS_BETTER,
                       tolerance=0.05),
                _count("recall_at_10_100k", HIGHER_IS_BETTER,
                       tolerance=0.05),
                # Absolute QPS varies per host: tracked only.  The probed
                # scan vs exact scan ratio is host-independent and gates.
                _rate("index_qps_10k", unit="q/s"),
                _rate("index_qps_100k", unit="q/s"),
                _rate("exact_qps_10k", unit="q/s"),
                _rate("exact_qps_100k", unit="q/s"),
                _speedup("speedup_10k_x", tolerance=None),
                _speedup("speedup_100k_x", tolerance=0.4),
                MetricSpec("build_100k_s", LOWER_IS_BETTER, unit="s"),
                # Million-entity scale runs only when the emitter was
                # launched with full-scale mode on (slow build): the
                # config flag makes these non-binding otherwise.
                MetricSpec("recall_at_10_1m", HIGHER_IS_BETTER,
                           tolerance=0.05,
                           binding_key="full_scale.enabled"),
                _rate("index_qps_1m", unit="q/s"),
                _rate("exact_qps_1m", unit="q/s"),
                _speedup("speedup_1m_x",
                         binding_key="full_scale.enabled"),
            )),
    )
}


def get_spec(bench_id: str) -> BenchSpec:
    """Look up a registered benchmark; raise ``KeyError`` with the known
    ids when the id is unknown (typo'd registrations fail loudly)."""
    try:
        return REGISTRY[bench_id]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown benchmark {bench_id!r} "
                       f"(known: {known})") from None


__all__ = [
    "BENCH_INDEX_RETRIEVAL",
    "BENCH_NETSERVE_LOAD",
    "BENCH_SERVING_DEGRADATION",
    "BENCH_SERVING_THROUGHPUT",
    "BENCH_TRAIN_STEP",
    "BenchSpec",
    "DIRECTIONS",
    "HIGHER_IS_BETTER",
    "LOWER_IS_BETTER",
    "MetricSpec",
    "NAMESPACE",
    "REGISTRY",
    "get_spec",
    "short_name",
]
