"""Command-line driver for :mod:`repro.bench`.

Subcommands (``python -m repro bench <cmd>``):

* ``check``   — compare current ``BENCH_*.json`` results against the
  committed baselines; exit ``1`` on any out-of-tolerance regression
  (per-metric table on stdout; markdown appended to
  ``$GITHUB_STEP_SUMMARY`` when CI sets it).
* ``report``  — render the trend history as markdown tables plus
  sparkline text charts.
* ``promote`` — intentionally move the baselines to the current results,
  journaling every per-metric delta to ``baselines/promotions.jsonl``.
* ``list``    — show the registry: benchmarks, metrics, directions,
  tolerances.

Exit codes (CI contract): ``0`` clean, ``1`` regression or check error,
``2`` usage error.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Sequence

from repro.bench.check import (
    BASELINES_DIRNAME,
    check_benchmarks,
    render_markdown,
    render_text,
)
from repro.bench.history import HISTORY_DIRNAME
from repro.bench.promote import promote
from repro.bench.registry import NAMESPACE, REGISTRY, get_spec
from repro.bench.report import render_report
from repro.lint.cli import find_repo_root


def _default_dirs(root: Path) -> tuple[Path, Path]:
    bench_root = root / "benchmarks"
    return bench_root / "results", bench_root / BASELINES_DIRNAME


def _resolve_names(raw: list[str] | None) -> list[str] | None:
    """Normalise ``--names`` values; short names gain the namespace."""
    if not raw:
        return None
    names: list[str] = []
    for chunk in raw:
        for name in chunk.split(","):
            name = name.strip()
            if not name:
                continue
            if not name.startswith(NAMESPACE):
                name = NAMESPACE + name
            get_spec(name)          # raises KeyError on typos
            names.append(name)
    return names or None


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-bench`` argument parser (check/report/promote/list)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Benchmark platform: structured results, trend "
                    "history, and the CI regression gate.")
    parser.add_argument(
        "--root", default=None,
        help="repository root (default: auto-detected via pyproject.toml)")
    parser.add_argument(
        "--results-dir", default=None,
        help="directory holding BENCH_*.json (default: "
             "<root>/benchmarks/results)")
    parser.add_argument(
        "--baselines-dir", default=None,
        help="directory holding committed baselines (default: "
             "<root>/benchmarks/baselines)")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser(
        "check", help="fail on out-of-tolerance regressions vs baselines")
    check.add_argument("--names", action="append", default=None,
                       help="benchmark subset (repeatable or "
                            "comma-separated; short names ok)")
    check.add_argument("--format", choices=("text", "markdown"),
                       default="text", help="stdout format")
    check.add_argument("--output", default=None,
                       help="also write the markdown table here")
    check.add_argument("--no-summary", action="store_true",
                       help="do not append to $GITHUB_STEP_SUMMARY")

    report = sub.add_parser(
        "report", help="render trend tables + sparkline charts")
    report.add_argument("--names", action="append", default=None)
    report.add_argument("--last", type=int, default=20,
                        help="history entries per benchmark (default 20)")
    report.add_argument("--output", default=None,
                        help="write the markdown report here instead of "
                             "stdout")

    promote_cmd = sub.add_parser(
        "promote", help="move baselines to current results (journaled)")
    promote_cmd.add_argument("--names", action="append", default=None)
    promote_cmd.add_argument("--note", default="",
                             help="why the baseline moves; recorded in "
                                  "the promote journal")

    sub.add_parser("list", help="show the benchmark/metric registry")
    return parser


def _cmd_check(args, results_dir: Path, baselines_dir: Path) -> int:
    names = _resolve_names(args.names)
    comparisons = check_benchmarks(results_dir, baselines_dir, names)
    if not comparisons:
        print("bench check: no current results found under "
              f"{results_dir} — nothing to gate", file=sys.stderr)
        return 0
    text = render_text(comparisons)
    markdown = render_markdown(comparisons)
    print(markdown if args.format == "markdown" else text)
    if args.output:
        Path(args.output).write_text(markdown + "\n", encoding="utf-8")
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path and not args.no_summary:
        with open(summary_path, "a", encoding="utf-8") as summary:
            summary.write(markdown + "\n")
    failed = [c.bench_id for c in comparisons if c.failed]
    if failed:
        print(f"bench check: FAIL ({', '.join(failed)})", file=sys.stderr)
        return 1
    print(f"bench check: ok ({len(comparisons)} benchmark(s) within "
          f"tolerance)", file=sys.stderr)
    return 0


def _cmd_report(args, results_dir: Path) -> int:
    names = _resolve_names(args.names)
    if args.last <= 0:
        print("bench report: --last must be positive", file=sys.stderr)
        return 2
    text = render_report(results_dir / HISTORY_DIRNAME, names,
                         last=args.last)
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
        print(f"bench report: wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_promote(args, results_dir: Path, baselines_dir: Path) -> int:
    names = _resolve_names(args.names)
    try:
        promotions = promote(results_dir, baselines_dir, names,
                             note=args.note)
    except FileNotFoundError as error:
        print(f"bench promote: {error}", file=sys.stderr)
        return 2
    if not promotions:
        print("bench promote: no current results to promote",
              file=sys.stderr)
        return 2
    for record in promotions:
        moved = len(record.changes)
        print(f"promoted {record.bench_id} -> baseline at "
              f"{record.git_sha} ({moved} metric(s) changed)")
    return 0


def _cmd_list() -> int:
    for bench_id in sorted(REGISTRY):
        spec = REGISTRY[bench_id]
        print(f"{bench_id}: {spec.title}")
        print(f"  source: {spec.source}")
        for metric in spec.metrics:
            bounds = []
            if metric.tolerance is not None:
                bounds.append(f"tol {metric.tolerance * 100:.0f}%")
            if metric.abs_tolerance is not None:
                bounds.append(f"abs {metric.abs_tolerance:g}")
            gate = " / ".join(bounds) or "tracked"
            if metric.binding_key:
                gate += f" (binding: config.{metric.binding_key})"
            direction = "higher" if metric.direction.startswith("higher") \
                else "lower"
            unit = f" [{metric.unit}]" if metric.unit else ""
            print(f"    {metric.name}{unit}: {direction} is better, "
                  f"{gate}")
    return 0


def bench_main(argv: Sequence[str] | None = None) -> int:
    """Run the bench driver; returns the process exit code (0/1/2)."""
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exit_:     # argparse exits 2 on usage errors
        return int(exit_.code or 0)
    root = Path(args.root).resolve() if args.root else find_repo_root()
    default_results, default_baselines = _default_dirs(root)
    results_dir = Path(args.results_dir) if args.results_dir \
        else default_results
    baselines_dir = Path(args.baselines_dir) if args.baselines_dir \
        else default_baselines
    try:
        if args.command == "check":
            return _cmd_check(args, results_dir, baselines_dir)
        if args.command == "report":
            return _cmd_report(args, results_dir)
        if args.command == "promote":
            return _cmd_promote(args, results_dir, baselines_dir)
        if args.command == "list":
            return _cmd_list()
    except KeyError as error:       # unknown benchmark in --names
        print(f"bench: {error.args[0]}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


def main() -> None:                 # pragma: no cover - console entry
    """Console entry point: exits with :func:`bench_main`'s code."""
    raise SystemExit(bench_main())


__all__ = ["bench_main", "build_parser", "main"]
