"""Benchmark platform: structured results, trend history, CI gate.

The subsystem that makes the repo's performance claims *provable* across
PRs (ROADMAP item 4), modelled on tiered eval registries
(TeleCom-Bench-style suites; ``EvalRun``/``EvalResult`` run tracking):

* :mod:`repro.bench.schema`   — the ``BenchRun`` result schema and the
  shared emitter every benchmark suite writes through
  (``BENCH_<name>.json``; merge-by-metric, git sha, host info);
* :mod:`repro.bench.registry` — the single source of truth for known
  benchmarks, their metrics, improvement directions, and per-metric
  regression tolerances;
* :mod:`repro.bench.history`  — per-benchmark JSONL trend files keyed by
  git sha (``results/history/<name>.jsonl``), so trajectories survive
  across PRs;
* :mod:`repro.bench.check`    — the regression gate: direction-aware
  tolerance math, non-binding skips, per-metric tables
  (``python -m repro bench check`` exits nonzero on regression);
* :mod:`repro.bench.report`   — markdown trend tables with sparkline
  text charts;
* :mod:`repro.bench.promote`  — journaled, intentional baseline moves
  (a regression can never be silently absorbed);
* :mod:`repro.bench.cli`      — the ``python -m repro bench`` driver.

Everything here is dependency-free (stdlib only), so the gate runs in CI
tiers that never install the numeric stack.
"""

from repro.bench.check import (
    FAILING,
    IMPROVED,
    MISSING,
    NEW,
    NON_BINDING,
    OK,
    REGRESSED,
    TRACKED,
    UNSPECCED,
    BenchComparison,
    MetricComparison,
    check_benchmarks,
    compare_metric,
    compare_runs,
    render_markdown,
    render_text,
)
from repro.bench.cli import bench_main
from repro.bench.history import append_run, history_path, load_history
from repro.bench.promote import Promotion, load_journal, promote
from repro.bench.registry import (
    BENCH_INDEX_RETRIEVAL,
    BENCH_NETSERVE_LOAD,
    BENCH_SERVING_DEGRADATION,
    BENCH_SERVING_THROUGHPUT,
    BENCH_TRAIN_STEP,
    HIGHER_IS_BETTER,
    LOWER_IS_BETTER,
    REGISTRY,
    BenchSpec,
    MetricSpec,
    get_spec,
    short_name,
)
from repro.bench.report import render_benchmark, render_report, sparkline
from repro.bench.schema import (
    BenchRun,
    git_sha,
    load_run,
    record_metrics,
    result_path,
    validate_payload,
)

__all__ = [
    "BENCH_INDEX_RETRIEVAL",
    "BENCH_NETSERVE_LOAD",
    "BENCH_SERVING_DEGRADATION",
    "BENCH_SERVING_THROUGHPUT",
    "BENCH_TRAIN_STEP",
    "BenchComparison",
    "BenchRun",
    "BenchSpec",
    "FAILING",
    "HIGHER_IS_BETTER",
    "IMPROVED",
    "LOWER_IS_BETTER",
    "MISSING",
    "MetricComparison",
    "MetricSpec",
    "NEW",
    "NON_BINDING",
    "OK",
    "Promotion",
    "REGISTRY",
    "REGRESSED",
    "TRACKED",
    "UNSPECCED",
    "append_run",
    "bench_main",
    "check_benchmarks",
    "compare_metric",
    "compare_runs",
    "get_spec",
    "git_sha",
    "history_path",
    "load_history",
    "load_journal",
    "load_run",
    "promote",
    "record_metrics",
    "render_benchmark",
    "render_markdown",
    "render_report",
    "render_text",
    "result_path",
    "short_name",
    "sparkline",
    "validate_payload",
]
