"""Triple classification — the second standard KGE evaluation task.

The paper's related-work framing (Sec. I) names "link prediction or triple
classification" as the knowledge-inference tasks KGE serves; link prediction
drives FCT, and this module completes the pair: given a scored KGE model,
learn one decision threshold per relation on a validation set (positives =
true triples, negatives = corruptions) and classify test triples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tensor import no_grad


@dataclass
class TripleClassificationResult:
    """Accuracy plus the learned thresholds."""

    accuracy: float
    thresholds: dict[int, float]


def _scores(model, triples: np.ndarray) -> np.ndarray:
    with no_grad():
        return model.score(triples[:, 0], triples[:, 1],
                           triples[:, 2]).data.copy()


def _best_threshold(positive: np.ndarray, negative: np.ndarray) -> float:
    """Threshold minimising classification error (distance convention:
    a triple is predicted true when its score is *below* the threshold)."""
    candidates = np.unique(np.concatenate([positive, negative]))
    midpoints = (candidates[:-1] + candidates[1:]) / 2.0
    candidates = np.concatenate([[candidates[0] - 1.0], midpoints,
                                 [candidates[-1] + 1.0]])
    best_threshold = candidates[0]
    best_correct = -1
    for threshold in candidates:
        correct = int((positive < threshold).sum()) + \
            int((negative >= threshold).sum())
        if correct > best_correct:
            best_correct = correct
            best_threshold = float(threshold)
    return best_threshold


def triple_classification(model,
                          valid_positives: np.ndarray,
                          valid_negatives: np.ndarray,
                          test_positives: np.ndarray,
                          test_negatives: np.ndarray
                          ) -> TripleClassificationResult:
    """Learn per-relation thresholds on valid, report accuracy on test.

    All inputs are (N, 3) integer (head, relation, tail) arrays; positives
    and negatives within a split need not be aligned.  Relations absent from
    the validation set fall back to a global threshold.
    """
    valid_positives = np.asarray(valid_positives)
    valid_negatives = np.asarray(valid_negatives)
    test_positives = np.asarray(test_positives)
    test_negatives = np.asarray(test_negatives)
    for name, arr in (("valid_positives", valid_positives),
                      ("valid_negatives", valid_negatives),
                      ("test_positives", test_positives),
                      ("test_negatives", test_negatives)):
        if arr.ndim != 2 or arr.shape[1] != 3 or len(arr) == 0:
            raise ValueError(f"{name} must be a nonempty (N, 3) array")

    vp_scores = _scores(model, valid_positives)
    vn_scores = _scores(model, valid_negatives)

    global_threshold = _best_threshold(vp_scores, vn_scores)
    thresholds: dict[int, float] = {}
    for relation in np.unique(np.concatenate([valid_positives[:, 1],
                                              valid_negatives[:, 1]])):
        pos_mask = valid_positives[:, 1] == relation
        neg_mask = valid_negatives[:, 1] == relation
        if not pos_mask.any() or not neg_mask.any():
            thresholds[int(relation)] = global_threshold
            continue
        thresholds[int(relation)] = _best_threshold(vp_scores[pos_mask],
                                                    vn_scores[neg_mask])

    tp_scores = _scores(model, test_positives)
    tn_scores = _scores(model, test_negatives)
    correct = 0
    for triples, scores, is_positive in ((test_positives, tp_scores, True),
                                         (test_negatives, tn_scores, False)):
        for triple, score in zip(triples, scores):
            threshold = thresholds.get(int(triple[1]), global_threshold)
            predicted_true = score < threshold
            correct += int(predicted_true == is_positive)
    total = len(test_positives) + len(test_negatives)
    return TripleClassificationResult(accuracy=correct / total,
                                      thresholds=thresholds)
