"""Knowledge-graph-embedding substrate (the NeuralKG role for FCT).

* :class:`TransE` — translation embeddings with margin ranking loss.
* :class:`GTransE` — the uncertain-KG generalisation used by fault chain
  tracing (Eq. 24): the margin is scaled per-fact by confidence ``s^α · M``.
* :func:`link_prediction_ranks` — filtered link-prediction evaluation.
"""

from repro.kge.transe import TransE
from repro.kge.gtranse import GTransE, UncertainTriple
from repro.kge.ranking import link_prediction_ranks
from repro.kge.classification import (
    TripleClassificationResult,
    triple_classification,
)
from repro.kge.trainer import KgeTrainer, KgeTrainingLog
from repro.kge.models import (
    ComplEx,
    DistMult,
    KgeModel,
    MODEL_REGISTRY,
    RotatE,
    TransH,
    build_kge_model,
)

__all__ = [
    "ComplEx",
    "DistMult",
    "GTransE",
    "KgeModel",
    "KgeTrainer",
    "KgeTrainingLog",
    "MODEL_REGISTRY",
    "RotatE",
    "TransE",
    "TransH",
    "TripleClassificationResult",
    "UncertainTriple",
    "build_kge_model",
    "link_prediction_ranks",
    "triple_classification",
]
