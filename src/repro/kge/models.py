"""Additional KGE scoring models: TransH, DistMult, ComplEx, RotatE.

The paper cites this family ([5]–[8]) as the standard embedding approach to
Tele-KG completion that KTeleBERT's text-enhanced KE objective competes with;
implementing them makes the FCT harness able to ablate the scoring function
(see ``benchmarks/test_ablations.py``) and gives the library a complete KGE
substrate in the NeuralKG spirit.

All models share the :class:`KgeModel` interface: ``score`` (lower = more
plausible, distance convention), ``score_all_tails`` / ``score_all_heads``
for ranking, and ``margin_loss`` for training.  Similarity-based models
(DistMult, ComplEx) negate their score to fit the distance convention.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import margin_ranking_loss
from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class KgeModel(Module):
    """Interface shared by all KGE scorers (distance convention)."""

    num_entities: int
    num_relations: int
    dim: int

    def score(self, heads: np.ndarray, relations: np.ndarray,
              tails: np.ndarray) -> Tensor:
        raise NotImplementedError

    def score_all_tails(self, head: int, relation: int) -> np.ndarray:
        """Default dense implementation via :meth:`score` (no grad)."""
        from repro.tensor import no_grad
        entities = np.arange(self.num_entities)
        with no_grad():
            scores = self.score(np.full(self.num_entities, head),
                                np.full(self.num_entities, relation),
                                entities)
        return scores.data.copy()

    def score_all_heads(self, relation: int, tail: int) -> np.ndarray:
        from repro.tensor import no_grad
        entities = np.arange(self.num_entities)
        with no_grad():
            scores = self.score(entities,
                                np.full(self.num_entities, relation),
                                np.full(self.num_entities, tail))
        return scores.data.copy()

    def margin_loss(self, positives: np.ndarray, negatives: np.ndarray,
                    margin: float = 1.0) -> Tensor:
        positives = np.asarray(positives)
        negatives = np.asarray(negatives)
        pos = self.score(positives[:, 0], positives[:, 1], positives[:, 2])
        neg = self.score(negatives[:, 0], negatives[:, 1], negatives[:, 2])
        return margin_ranking_loss(pos, neg, margin=margin)

    def normalize_entities(self) -> None:
        """Optional post-step constraint; default is a no-op."""


def _uniform_table(rng: np.random.Generator, rows: int, dim: int) -> np.ndarray:
    bound = 6.0 / np.sqrt(dim)
    return rng.uniform(-bound, bound, size=(rows, dim))


class TransH(KgeModel):
    """Wang et al. 2014: translation on relation-specific hyperplanes.

    Entities are projected onto the relation's hyperplane (normal ``w_r``)
    before the TransE distance is computed.
    """

    def __init__(self, num_entities: int, num_relations: int, dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.dim = dim
        self.entity_embeddings = Parameter(_uniform_table(rng, num_entities, dim))
        self.relation_embeddings = Parameter(
            _uniform_table(rng, num_relations, dim))
        self.normals = Parameter(_uniform_table(rng, num_relations, dim))

    def _project(self, vectors: Tensor, normals: Tensor) -> Tensor:
        # Normalise the hyperplane normals, then remove the normal component.
        unit = normals / (F.l2_norm(normals, axis=-1, eps=1e-12)
                          .expand_dims(-1))
        dot = (vectors * unit).sum(axis=-1, keepdims=True)
        return vectors - unit * dot

    def score(self, heads, relations, tails) -> Tensor:
        h = self.entity_embeddings.take_rows(np.asarray(heads))
        r = self.relation_embeddings.take_rows(np.asarray(relations))
        w = self.normals.take_rows(np.asarray(relations))
        t = self.entity_embeddings.take_rows(np.asarray(tails))
        return F.l2_norm(self._project(h, w) + r - self._project(t, w),
                         axis=-1, eps=1e-12)

    def normalize_entities(self) -> None:
        norms = np.linalg.norm(self.entity_embeddings.data, axis=-1,
                               keepdims=True)
        np.maximum(norms, 1.0, out=norms)
        self.entity_embeddings.data /= norms


class DistMult(KgeModel):
    """Yang et al. 2015: bilinear-diagonal similarity (negated to distance)."""

    def __init__(self, num_entities: int, num_relations: int, dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.dim = dim
        self.entity_embeddings = Parameter(_uniform_table(rng, num_entities, dim))
        self.relation_embeddings = Parameter(
            _uniform_table(rng, num_relations, dim))

    def score(self, heads, relations, tails) -> Tensor:
        h = self.entity_embeddings.take_rows(np.asarray(heads))
        r = self.relation_embeddings.take_rows(np.asarray(relations))
        t = self.entity_embeddings.take_rows(np.asarray(tails))
        return -(h * r * t).sum(axis=-1)


class ComplEx(KgeModel):
    """Trouillon et al. 2016: complex bilinear scoring (negated to distance).

    Embeddings are stored as (dim) real + (dim) imaginary halves.
    """

    def __init__(self, num_entities: int, num_relations: int, dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.dim = dim
        self.entity_re = Parameter(_uniform_table(rng, num_entities, dim))
        self.entity_im = Parameter(_uniform_table(rng, num_entities, dim))
        self.relation_re = Parameter(_uniform_table(rng, num_relations, dim))
        self.relation_im = Parameter(_uniform_table(rng, num_relations, dim))

    def score(self, heads, relations, tails) -> Tensor:
        heads = np.asarray(heads)
        relations = np.asarray(relations)
        tails = np.asarray(tails)
        h_re = self.entity_re.take_rows(heads)
        h_im = self.entity_im.take_rows(heads)
        r_re = self.relation_re.take_rows(relations)
        r_im = self.relation_im.take_rows(relations)
        t_re = self.entity_re.take_rows(tails)
        t_im = self.entity_im.take_rows(tails)
        # Re(<h, r, conj(t)>)
        real_part = (h_re * r_re * t_re + h_im * r_re * t_im +
                     h_re * r_im * t_im - h_im * r_im * t_re)
        return -real_part.sum(axis=-1)


class RotatE(KgeModel):
    """Sun et al. 2019: relations as rotations in the complex plane.

    The relation phase table stores angles; scoring rotates the head and
    measures the complex-modulus distance to the tail.
    """

    def __init__(self, num_entities: int, num_relations: int, dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.dim = dim
        self.entity_re = Parameter(_uniform_table(rng, num_entities, dim))
        self.entity_im = Parameter(_uniform_table(rng, num_entities, dim))
        self.phases = Parameter(
            rng.uniform(-np.pi, np.pi, size=(num_relations, dim)))

    def score(self, heads, relations, tails) -> Tensor:
        heads = np.asarray(heads)
        relations = np.asarray(relations)
        tails = np.asarray(tails)
        h_re = self.entity_re.take_rows(heads)
        h_im = self.entity_im.take_rows(heads)
        t_re = self.entity_re.take_rows(tails)
        t_im = self.entity_im.take_rows(tails)
        phase = self.phases.take_rows(relations)
        cos = phase.cos()
        sin = phase.sin()
        rotated_re = h_re * cos - h_im * sin
        rotated_im = h_re * sin + h_im * cos
        diff_re = rotated_re - t_re
        diff_im = rotated_im - t_im
        return ((diff_re * diff_re + diff_im * diff_im) + 1e-12) \
            .sqrt().sum(axis=-1)


MODEL_REGISTRY = {
    "transh": TransH,
    "distmult": DistMult,
    "complex": ComplEx,
    "rotate": RotatE,
}


def build_kge_model(name: str, num_entities: int, num_relations: int,
                    dim: int, rng: np.random.Generator) -> KgeModel:
    """Factory over :data:`MODEL_REGISTRY` (TransE/GTransE live in their
    own modules and are constructed directly)."""
    key = name.lower()
    if key not in MODEL_REGISTRY:
        raise ValueError(f"unknown KGE model {name!r}; "
                         f"choose from {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[key](num_entities, num_relations, dim, rng)
