"""TransE (Bordes et al. 2013) on learnable embedding tables.

Unlike :mod:`repro.models.ke` (which scores *text-encoded* embeddings), this
module owns its own entity/relation tables — the classic KGE setting used by
the FCT task, where KTeleBERT only supplies the *initialisation* of the
entity embeddings.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import margin_ranking_loss
from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class TransE(Module):
    """Entity/relation embeddings scored by ``||h + r − t||``."""

    def __init__(self, num_entities: int, num_relations: int, dim: int,
                 rng: np.random.Generator,
                 entity_init: np.ndarray | None = None):
        super().__init__()
        if num_entities < 1 or num_relations < 1:
            raise ValueError("need at least one entity and one relation")
        bound = 6.0 / np.sqrt(dim)
        if entity_init is not None:
            entity_init = np.asarray(entity_init, dtype=float)
            if entity_init.shape != (num_entities, dim):
                raise ValueError(
                    f"entity_init shape {entity_init.shape} != "
                    f"({num_entities}, {dim})")
            entities = entity_init.copy()
        else:
            entities = rng.uniform(-bound, bound, size=(num_entities, dim))
        self.entity_embeddings = Parameter(entities)
        self.relation_embeddings = Parameter(
            rng.uniform(-bound, bound, size=(num_relations, dim)))
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.dim = dim

    # ------------------------------------------------------------------
    def score(self, heads: np.ndarray, relations: np.ndarray,
              tails: np.ndarray) -> Tensor:
        """Distances for index triples (lower = more plausible)."""
        h = self.entity_embeddings.take_rows(np.asarray(heads))
        r = self.relation_embeddings.take_rows(np.asarray(relations))
        t = self.entity_embeddings.take_rows(np.asarray(tails))
        return F.l2_norm(h + r - t, axis=-1, eps=1e-12)

    def score_all_tails(self, head: int, relation: int) -> np.ndarray:
        """Distances of (head, relation, *) against every entity (no grad)."""
        from repro.tensor import no_grad
        with no_grad():
            h = self.entity_embeddings.data[head]
            r = self.relation_embeddings.data[relation]
            candidates = self.entity_embeddings.data
            return np.linalg.norm(h + r - candidates, axis=-1)

    def score_all_heads(self, relation: int, tail: int) -> np.ndarray:
        """Distances of (*, relation, tail) against every entity (no grad)."""
        t = self.entity_embeddings.data[tail]
        r = self.relation_embeddings.data[relation]
        candidates = self.entity_embeddings.data
        return np.linalg.norm(candidates + r - t, axis=-1)

    # ------------------------------------------------------------------
    def margin_loss(self, positives: np.ndarray, negatives: np.ndarray,
                    margin: float = 1.0) -> Tensor:
        """Hinge loss between positive and negative index triples.

        ``positives`` and ``negatives`` are (B, 3) arrays of
        (head, relation, tail) indices.
        """
        positives = np.asarray(positives)
        negatives = np.asarray(negatives)
        pos = self.score(positives[:, 0], positives[:, 1], positives[:, 2])
        neg = self.score(negatives[:, 0], negatives[:, 1], negatives[:, 2])
        return margin_ranking_loss(pos, neg, margin=margin)

    def normalize_entities(self) -> None:
        """Project entity embeddings onto the unit ball (TransE's constraint)."""
        norms = np.linalg.norm(self.entity_embeddings.data, axis=-1,
                               keepdims=True)
        np.maximum(norms, 1.0, out=norms)
        self.entity_embeddings.data /= norms
