"""Filtered link-prediction evaluation for KGE models."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.evaluation.ranking import rank_of
from repro.kge.transe import TransE


def link_prediction_ranks(model: TransE,
                          test_triples: Sequence[tuple[int, int, int]],
                          known_triples: Iterable[tuple[int, int, int]] = (),
                          predict: str = "tail") -> list[int]:
    """Ranks of the true entity when completing each test triple.

    For ``predict="tail"`` the model scores ``(h, r, *)`` against every
    entity; other known facts with the same (h, r) are *filtered* (their
    scores set to +inf) so they cannot crowd out the target — the standard
    filtered protocol.  ``predict="both"`` interleaves head and tail ranks.
    """
    if predict not in ("tail", "head", "both"):
        raise ValueError("predict must be 'tail', 'head', or 'both'")
    known = set(known_triples)
    ranks: list[int] = []
    for head, relation, tail in test_triples:
        if predict in ("tail", "both"):
            scores = model.score_all_tails(head, relation).copy()
            for h, r, t in known:
                if h == head and r == relation and t != tail:
                    scores[t] = np.inf
            ranks.append(rank_of(scores, tail, higher_is_better=False))
        if predict in ("head", "both"):
            scores = model.score_all_heads(relation, tail).copy()
            for h, r, t in known:
                if t == tail and r == relation and h != head:
                    scores[h] = np.inf
            ranks.append(rank_of(scores, head, higher_is_better=False))
    return ranks
