"""GTransE: translation embeddings on uncertain KGs (Kertkeidkachorn 2019).

The FCT task models fault knowledge as probabilistic quadruples
``(h, r, t, s)`` with confidence ``s ∈ [0, 1]``; GTransE scales the margin of
the hinge by ``s^α · M`` (Eq. 24), so high-confidence facts must be separated
from their corruptions by a larger margin while dubious facts exert less
force.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kge.transe import TransE
from repro.tensor.tensor import Tensor


@dataclass(frozen=True)
class UncertainTriple:
    """A probabilistic fact ``(h, r, t, s)`` over integer ids."""

    head: int
    relation: int
    tail: int
    confidence: float

    def __post_init__(self):
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(f"confidence must be in [0,1], got {self.confidence}")


class GTransE(TransE):
    """TransE with confidence-scaled margins."""

    def __init__(self, num_entities: int, num_relations: int, dim: int,
                 rng: np.random.Generator, margin: float = 1.0,
                 alpha: float = 1.0,
                 entity_init: np.ndarray | None = None):
        super().__init__(num_entities, num_relations, dim, rng,
                         entity_init=entity_init)
        self.margin = margin
        self.alpha = alpha

    def confidence_loss(self, positives: list[UncertainTriple],
                        negatives: np.ndarray) -> Tensor:
        """Eq. 24: ``[d(h,r,t) − d(h',r,t') + s^α·M]₊`` averaged.

        ``negatives`` is a (B, 3) index array aligned with ``positives``.
        """
        if not positives:
            raise ValueError("empty positive batch")
        negatives = np.asarray(negatives)
        if negatives.shape != (len(positives), 3):
            raise ValueError("negatives must be (B, 3) aligned with positives")
        heads = np.array([p.head for p in positives])
        relations = np.array([p.relation for p in positives])
        tails = np.array([p.tail for p in positives])
        confidences = np.array([p.confidence for p in positives])

        positive_distance = self.score(heads, relations, tails)
        negative_distance = self.score(negatives[:, 0], negatives[:, 1],
                                       negatives[:, 2])
        margins = Tensor((confidences ** self.alpha) * self.margin)
        raw = positive_distance - negative_distance + margins
        return raw.relu().mean()
