"""Generic KGE training harness (the NeuralKG role, Sec. V-D3).

One loop that trains any :class:`~repro.kge.models.KgeModel`-shaped scorer
(including :class:`~repro.kge.transe.TransE` and
:class:`~repro.kge.gtranse.GTransE`) with uniform negative sampling,
mini-batching, optional entity-norm projection, and validation-based model
selection — the machinery FCT and the KGE ablations share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.kge.gtranse import GTransE, UncertainTriple
from repro.kge.ranking import link_prediction_ranks
from repro.nn.optim import Adam


@dataclass
class KgeTrainingLog:
    """Per-epoch loss and validation history."""

    loss: list[float] = field(default_factory=list)
    valid_mrr: list[float] = field(default_factory=list)


class KgeTrainer:
    """Trains a KGE model on (possibly uncertain) triples.

    Parameters
    ----------
    model:
        Any scorer exposing ``score`` / ``margin_loss`` /
        ``normalize_entities`` (and ``confidence_loss`` when given
        :class:`UncertainTriple` facts and the model is a GTransE).
    triples:
        Either ``(h, r, t)`` integer tuples or :class:`UncertainTriple`s.
    """

    def __init__(self, model, triples: Sequence, num_entities: int,
                 rng: np.random.Generator, learning_rate: float = 0.05,
                 batch_size: int = 32, margin: float = 2.0,
                 negatives_per_positive: int = 4,
                 filtered: bool = True):
        if not triples:
            raise ValueError("no training triples")
        self.model = model
        self.triples = list(triples)
        self.num_entities = num_entities
        self.rng = rng
        self.batch_size = batch_size
        self.margin = margin
        self.negatives_per_positive = negatives_per_positive
        self.optimizer = Adam(model.parameters(), lr=learning_rate)
        self.uncertain = isinstance(self.triples[0], UncertainTriple)
        self._known = {self._as_tuple(t) for t in self.triples} \
            if filtered else set()
        self.log = KgeTrainingLog()

    @staticmethod
    def _as_tuple(triple) -> tuple[int, int, int]:
        if isinstance(triple, UncertainTriple):
            return (triple.head, triple.relation, triple.tail)
        return tuple(int(x) for x in triple)

    def _corrupt(self, triple) -> tuple[int, int, int]:
        head, relation, tail = self._as_tuple(triple)
        for _ in range(30):
            replacement = int(self.rng.integers(self.num_entities))
            candidate = ((replacement, relation, tail)
                         if self.rng.random() < 0.5
                         else (head, relation, replacement))
            if candidate not in self._known and candidate[0] != candidate[2]:
                return candidate
        return (head, relation, (tail + 1) % self.num_entities)

    def _batch_loss(self, batch):
        negatives = np.array([self._corrupt(t) for t in batch])
        if self.uncertain and isinstance(self.model, GTransE):
            return self.model.confidence_loss(batch, negatives)
        positives = np.array([self._as_tuple(t) for t in batch])
        return self.model.margin_loss(positives, negatives,
                                      margin=self.margin)

    def train_epoch(self) -> float:
        """One pass over the (replicated) triple list; returns mean loss."""
        replicated = self.triples * self.negatives_per_positive
        order = self.rng.permutation(len(replicated))
        losses: list[float] = []
        for start in range(0, len(order), self.batch_size):
            batch = [replicated[i] for i in order[start:start + self.batch_size]]
            self.optimizer.zero_grad()
            loss = self._batch_loss(batch)
            loss.backward()
            self.optimizer.step()
            losses.append(float(loss.data))
        self.model.normalize_entities()
        mean = float(np.mean(losses))
        self.log.loss.append(mean)
        return mean

    def validate(self, valid_triples: Sequence[tuple[int, int, int]],
                 known: set | None = None) -> float:
        """Filtered tail-prediction MRR on a validation split."""
        if not valid_triples:
            return 0.0
        ranks = link_prediction_ranks(
            self.model, list(valid_triples),
            known_triples=known if known is not None else self._known,
            predict="tail")
        mrr = float(np.mean([1.0 / r for r in ranks]))
        self.log.valid_mrr.append(mrr)
        return mrr

    def fit(self, epochs: int,
            valid_triples: Sequence[tuple[int, int, int]] = (),
            validate_every: int = 5,
            known: set | None = None) -> KgeTrainingLog:
        """Train with optional validation-based best-state selection."""
        best_state = self.model.state_dict()
        best_mrr = self.validate(valid_triples, known) if valid_triples else 0.0
        for epoch in range(epochs):
            self.train_epoch()
            is_checkpoint = ((epoch + 1) % validate_every == 0 or
                             epoch == epochs - 1)
            if valid_triples and is_checkpoint:
                mrr = self.validate(valid_triples, known)
                if mrr > best_mrr:
                    best_mrr = mrr
                    best_state = self.model.state_dict()
        if valid_triples:
            self.model.load_state_dict(best_state)
        return self.log
