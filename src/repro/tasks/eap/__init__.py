"""Event association prediction (Sec. V-C): pairwise trigger classification."""

from repro.tasks.eap.data import EapDataset, EventPair, build_eap_dataset
from repro.tasks.eap.model import EapModel
from repro.tasks.eap.experiment import EapExperiment, EapResult
from repro.tasks.eap.serve import EapAdapter

__all__ = [
    "EapAdapter",
    "EapDataset",
    "EapExperiment",
    "EapModel",
    "EapResult",
    "EventPair",
    "build_eap_dataset",
]
