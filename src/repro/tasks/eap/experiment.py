"""EAP experiment harness: 5-fold CV, Accuracy/P/R/F1 (Table VI protocol)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.classification import (
    ClassificationMetrics,
    classification_metrics,
)
from repro.evaluation.kfold import k_fold_splits
from repro.nn.optim import Adam
from repro.service.providers import EmbeddingProvider
from repro.tasks.eap.data import EapDataset
from repro.tasks.eap.model import EapModel


@dataclass
class EapResult:
    """Averaged cross-validation result for one method."""

    label: str
    metrics: ClassificationMetrics

    def as_table_row(self) -> dict[str, float]:
        return {
            "Accuracy": 100.0 * self.metrics.accuracy,
            "Precision": 100.0 * self.metrics.precision,
            "Recall": 100.0 * self.metrics.recall,
            "F1-score": 100.0 * self.metrics.f1,
        }


class EapExperiment:
    """Runs the full EAP protocol for one embedding provider."""

    def __init__(self, dataset: EapDataset, seed: int = 0,
                 num_folds: int = 5, epochs: int = 8, batch_size: int = 32,
                 learning_rate: float = 0.01, node_dim: int = 8):
        self.dataset = dataset
        self.seed = seed
        self.num_folds = num_folds
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.node_dim = node_dim

    def run(self, provider: EmbeddingProvider) -> EapResult:
        """5-fold CV over pairs; metrics pooled over all test folds."""
        pairs = self.dataset.pairs
        # Encode every distinct literal name once.
        names = sorted({p.name_i for p in pairs} | {p.name_j for p in pairs})
        name_vectors = provider.encode_names(names)
        # Level the feature scale across providers.
        name_vectors = name_vectors / np.maximum(
            np.linalg.norm(name_vectors, axis=1, keepdims=True), 1e-12)
        lookup = {n: name_vectors[i] for i, n in enumerate(names)}
        text_i = np.stack([lookup[p.name_i] for p in pairs])
        text_j = np.stack([lookup[p.name_j] for p in pairs])

        splits = k_fold_splits(len(pairs), self.num_folds,
                               rng=np.random.default_rng(self.seed))
        predictions = np.zeros(len(pairs), dtype=int)
        evaluated = np.zeros(len(pairs), dtype=bool)
        for fold_number, split in enumerate(splits):
            rng = np.random.default_rng(self.seed + 300 + fold_number)
            model = EapModel(self.dataset, text_i.shape[1], rng,
                             node_dim=self.node_dim)
            optimizer = Adam(model.parameters(), lr=self.learning_rate)
            train_index = np.concatenate([split.train, split.valid])
            for _ in range(self.epochs):
                order = rng.permutation(train_index)
                for start in range(0, len(order), self.batch_size):
                    batch_index = order[start:start + self.batch_size]
                    batch = [pairs[i] for i in batch_index]
                    optimizer.zero_grad()
                    loss = model.loss(batch, text_i[batch_index],
                                      text_j[batch_index])
                    loss.backward()
                    optimizer.step()
            test_batch = [pairs[i] for i in split.test]
            predictions[split.test] = model.predict(
                test_batch, text_i[split.test], text_j[split.test])
            evaluated[split.test] = True

        labels = np.array([p.label for p in pairs])
        metrics = classification_metrics(predictions[evaluated],
                                         labels[evaluated])
        return EapResult(label=provider.label, metrics=metrics)
