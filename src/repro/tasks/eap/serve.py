"""Thin EAP serving adapter: train once, score alarm-propagation pairs.

Mirrors :mod:`repro.tasks.rca.serve` for event association prediction —
fit the pairwise trigger classifier on every labelled pair, then answer
``propagate_alarms`` requests (does event *i* trigger event *j*?) with a
softmax confidence per queried pair.
"""

from __future__ import annotations

import numpy as np

from repro.nn.optim import Adam
from repro.tasks.eap.data import EapDataset, EventPair
from repro.tasks.eap.model import EapModel
from repro.tasks.retrieval import RetrievalCandidateMixin
from repro.tensor import no_grad


class EapAdapter(RetrievalCandidateMixin):
    """Fit the trigger classifier on all labelled pairs, serve predictions.

    With a retriever attached (:meth:`attach_retriever`),
    :meth:`candidate_events` proposes catalog events near a query surface
    — the hook callers use to build candidate pairs when the pair list is
    not handed to them.
    """

    def __init__(self, dataset: EapDataset, seed: int = 0, epochs: int = 6,
                 batch_size: int = 32, learning_rate: float = 0.01,
                 node_dim: int = 8):
        self.dataset = dataset
        self.seed = seed
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.node_dim = node_dim
        self._model: EapModel | None = None
        self._lookup: dict[str, np.ndarray] = {}

    @property
    def event_names(self) -> list[str]:
        """Distinct literal names the façade must embed before :meth:`fit`."""
        pairs = self.dataset.pairs
        return sorted({p.name_i for p in pairs} | {p.name_j for p in pairs})

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self._model is not None

    def fit(self, name_embeddings: np.ndarray) -> "EapAdapter":
        """Train on every labelled pair; ``name_embeddings`` aligns with
        :attr:`event_names`.  Returns ``self``."""
        names = self.event_names
        vectors = name_embeddings / np.maximum(
            np.linalg.norm(name_embeddings, axis=1, keepdims=True), 1e-12)
        self._lookup = {n: vectors[i] for i, n in enumerate(names)}
        pairs = self.dataset.pairs
        text_i = np.stack([self._lookup[p.name_i] for p in pairs])
        text_j = np.stack([self._lookup[p.name_j] for p in pairs])
        rng = np.random.default_rng(self.seed + 300)
        model = EapModel(self.dataset, text_i.shape[1], rng,
                         node_dim=self.node_dim)
        optimizer = Adam(model.parameters(), lr=self.learning_rate)
        for _ in range(self.epochs):
            order = rng.permutation(len(pairs))
            for start in range(0, len(order), self.batch_size):
                index = order[start:start + self.batch_size]
                batch = [pairs[i] for i in index]
                optimizer.zero_grad()
                loss = model.loss(batch, text_i[index], text_j[index])
                loss.backward()
                optimizer.step()
        self._model = model
        return self

    def predict(self, pairs: list[EventPair]) -> list[dict]:
        """Per-pair verdicts: ``{"triggers": bool, "confidence": float}``.

        Pairs must reference names seen at fit time (the adapter serves
        the closed event catalog; unknown names raise ``KeyError``).
        """
        if self._model is None:
            raise RuntimeError("EapAdapter.fit has not been called")
        text_i = np.stack([self._lookup[p.name_i] for p in pairs])
        text_j = np.stack([self._lookup[p.name_j] for p in pairs])
        with no_grad():
            logits = self._model(pairs, text_i, text_j).data
        shifted = logits - logits.max(axis=1, keepdims=True)
        probabilities = np.exp(shifted)
        probabilities /= probabilities.sum(axis=1, keepdims=True)
        return [{"triggers": bool(row.argmax() == 1),
                 "confidence": float(row[1])}
                for row in probabilities]
