"""EAP model (Fig. 8, Eqs. 17–21).

``s_ij = W₂ [E_i; E_j; n_i; n_j; d_ij]`` where ``E`` are fixed PLM service
embeddings of the literal names, ``n`` are learnable NE embeddings pooled
over one-hop topology neighbourhoods (Eq. 18), and ``d_ij = W₁ (t_i − t_j)``
encodes the occurrence-time difference (Eq. 19).  Trained with the softmax
binary cross-entropy of Eq. 21.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Embedding, Linear
from repro.nn.module import Module
from repro.tasks.eap.data import EapDataset, EventPair
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, concat


class EapModel(Module):
    """Pairwise trigger classifier over mixed text/topology/time features."""

    def __init__(self, dataset: EapDataset, text_dim: int,
                 rng: np.random.Generator, node_dim: int = 8,
                 time_dim: int = 2, time_scale: float = 100.0):
        super().__init__()
        self.node_index = {n: i for i, n in enumerate(dataset.node_names)}
        self.neighbor_lists = dataset.neighbor_lists
        self.node_embeddings = Embedding(len(dataset.node_names), node_dim,
                                         rng, scale=0.1)
        self.time_proj = Linear(1, time_dim, rng)          # W1 (Eq. 19)
        concat_dim = 2 * text_dim + 2 * node_dim + time_dim
        self.scorer = Linear(concat_dim, 2, rng)           # W2 (Eq. 20)
        self.time_scale = time_scale

    def _neighbourhood(self, nodes: list[str]) -> Tensor:
        """Eq. 18: mean of one-hop neighbour embeddings (incl. self)."""
        indices = []
        lengths = []
        for node in nodes:
            neighbours = self.neighbor_lists[node]
            indices.append([self.node_index[n] for n in neighbours])
            lengths.append(len(neighbours))
        max_len = max(lengths)
        padded = np.zeros((len(nodes), max_len), dtype=np.int64)
        mask = np.zeros((len(nodes), max_len))
        for row, idx in enumerate(indices):
            padded[row, :len(idx)] = idx
            mask[row, :len(idx)] = 1.0
        embedded = self.node_embeddings(padded)            # (B, L, d)
        return F.masked_mean(embedded, mask, axis=1)

    def forward(self, pairs: list[EventPair], text_i: np.ndarray,
                text_j: np.ndarray) -> Tensor:
        """Logits (B, 2) for a batch of pairs.

        ``text_i`` / ``text_j`` are the provider embeddings of the literal
        names, aligned with ``pairs``.
        """
        n_i = self._neighbourhood([p.node_i for p in pairs])
        n_j = self._neighbourhood([p.node_j for p in pairs])
        deltas = np.array([[(p.time_i - p.time_j) / self.time_scale]
                           for p in pairs])
        d_ij = self.time_proj(Tensor(deltas))
        features = concat([Tensor(text_i), Tensor(text_j), n_i, n_j, d_ij],
                          axis=1)
        return self.scorer(features)

    def loss(self, pairs: list[EventPair], text_i: np.ndarray,
             text_j: np.ndarray) -> Tensor:
        """Eq. 21: softmax binary cross-entropy."""
        logits = self(pairs, text_i, text_j)
        labels = np.array([p.label for p in pairs])
        return F.cross_entropy(logits, labels)

    def predict(self, pairs: list[EventPair], text_i: np.ndarray,
                text_j: np.ndarray) -> np.ndarray:
        """Hard 0/1 predictions."""
        from repro.tensor import no_grad
        with no_grad():
            logits = self(pairs, text_i, text_j).data
        return logits.argmax(axis=1)
