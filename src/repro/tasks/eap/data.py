"""EAP dataset: expert-validated trigger pairs with log/topology context.

Positive pairs come from trigger edges that actually fired in the simulated
episodes (the stand-in for expert-validated fault patterns); each positive is
matched by one negative pair obtained by replacing one side with a random
co-occurring event (Sec. V-C2).  Each pair carries its literal names, the NE
instances the events occurred on, and the occurrence-time difference drawn
from the episode's MDAF-package log records.  Table V's statistics come from
:meth:`EapDataset.describe`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.world.episodes import FaultEpisode
from repro.world.world import TelecomWorld


@dataclass(frozen=True)
class EventPair:
    """One labelled candidate pair."""

    event_i: str       # event uid
    event_j: str
    name_i: str        # literal names (inputs to the PLM)
    name_j: str
    node_i: str        # NE instances (topology feature)
    node_j: str
    time_i: float      # occurrence times (log feature)
    time_j: float
    label: int         # 1 = trigger relationship exists


@dataclass
class EapDataset:
    """Pairs plus the topology needed for the neighbourhood feature."""

    pairs: list[EventPair]
    node_names: list[str]
    neighbor_lists: dict[str, list[str]]
    num_events: int
    num_packages: int

    def describe(self) -> dict[str, int]:
        """Table V row."""
        positives = sum(1 for p in self.pairs if p.label == 1)
        return {
            "events": self.num_events,
            "event_pairs_positive": positives,
            "event_pairs_negative": len(self.pairs) - positives,
            "mdaf_packages": self.num_packages,
            "network_elements": len(self.node_names),
        }


def build_eap_dataset(world: TelecomWorld, episodes: list[FaultEpisode],
                      seed: int = 0) -> EapDataset:
    """Extract positive fired-trigger pairs and sample matched negatives."""
    rng = np.random.default_rng(seed + 5)
    events = {e.uid: e for e in world.ontology.events}

    # Per-episode event observations: uid -> (node, time).
    positive_keys: set[tuple[str, str]] = set()
    pairs: list[EventPair] = []
    observed_events: set[str] = set()

    for episode in episodes:
        occurrences: dict[str, tuple[str, float]] = {}
        for record in episode.records:
            if record.event_uid not in occurrences:
                occurrences[record.event_uid] = (record.node, record.timestamp)
        for source, target in episode.fired_edges:
            if source not in occurrences or target not in occurrences:
                continue
            node_i, time_i = occurrences[source]
            node_j, time_j = occurrences[target]
            positive_keys.add((source, target))
            observed_events.update((source, target))
            pairs.append(EventPair(
                event_i=source, event_j=target,
                name_i=events[source].name, name_j=events[target].name,
                node_i=node_i, node_j=node_j,
                time_i=time_i, time_j=time_j, label=1))

    # One negative per positive: corrupt one side with another observed
    # event such that the corrupted pair is not a known positive.
    positives = [p for p in pairs if p.label == 1]
    all_observed = sorted(observed_events)
    for positive in positives:
        for _ in range(50):
            corrupt_left = rng.random() < 0.5
            replacement = all_observed[int(rng.integers(len(all_observed)))]
            if corrupt_left:
                candidate = (replacement, positive.event_j)
            else:
                candidate = (positive.event_i, replacement)
            if candidate in positive_keys or candidate[0] == candidate[1]:
                continue
            source, target = candidate
            pairs.append(EventPair(
                event_i=source, event_j=target,
                name_i=events[source].name, name_j=events[target].name,
                node_i=positive.node_i if not corrupt_left else positive.node_j,
                node_j=positive.node_j if corrupt_left else positive.node_i,
                time_i=positive.time_i, time_j=positive.time_j, label=0))
            break

    nodes = world.topology.nodes
    neighbor_lists = {n: world.topology.neighbors(n) + [n] for n in nodes}
    return EapDataset(pairs=pairs, node_names=nodes,
                      neighbor_lists=neighbor_lists,
                      num_events=len(observed_events),
                      num_packages=len(episodes))
