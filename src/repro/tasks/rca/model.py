"""RCA model: KTeleBERT node initialisation → GCN → MLP scorer (Fig. 7)."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.tasks.rca.data import RcaState
from repro.tensor.tensor import Tensor


class GcnLayer(Module):
    """One graph convolution: ``σ(D̃^{-1/2} Ã D̃^{-1/2} H Ω)`` (Eq. 14)."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator,
                 activation: bool = True):
        super().__init__()
        self.linear = Linear(in_dim, out_dim, rng)
        self.activation = activation

    def forward(self, hidden: Tensor, normalized_adjacency: np.ndarray) -> Tensor:
        out = Tensor(normalized_adjacency) @ self.linear(hidden)
        return out.relu() if self.activation else out


class RcaModel(Module):
    """GCN stack + 2-layer MLP node scorer, trained with logistic loss (Eq. 16).

    Event representations come from a service-embedding provider and stay
    fixed; the GCN/MLP parameters are learned.
    """

    def __init__(self, feature_dim: int, rng: np.random.Generator,
                 gcn_hidden: int = 32, gcn_out: int = 16, mlp_hidden: int = 8):
        super().__init__()
        self.gcn1 = GcnLayer(feature_dim, gcn_hidden, rng)
        self.gcn2 = GcnLayer(gcn_hidden, gcn_out, rng)
        self.mlp_in = Linear(gcn_out, mlp_hidden, rng)
        self.mlp_out = Linear(mlp_hidden, 1, rng)

    @staticmethod
    def node_initialisation(state: RcaState,
                            event_embeddings: np.ndarray) -> np.ndarray:
        """Eq. 13: ``H_j = x_j E / Σ x_j`` (zero rows stay zero)."""
        totals = state.features.sum(axis=1, keepdims=True)
        safe = np.maximum(totals, 1.0)
        return (state.features @ event_embeddings) / safe

    def forward(self, state: RcaState,
                event_embeddings: np.ndarray) -> Tensor:
        """Score every node of one state; (V,) tensor, higher = more likely root."""
        h0 = Tensor(self.node_initialisation(state, event_embeddings))
        norm_adj = state.normalized_adjacency()
        h1 = self.gcn1(h0, norm_adj)
        h2 = self.gcn2(h1, norm_adj)
        scores = self.mlp_out(self.mlp_in(h2).relu())
        return scores.reshape(state.num_nodes)

    def loss(self, state: RcaState, event_embeddings: np.ndarray) -> Tensor:
        """Eq. 16: ``Σ_j log(1 + exp(−y_j s_j))`` with y=+1 for the root."""
        scores = self(state, event_embeddings)
        y = -np.ones(state.num_nodes)
        y[state.root_index] = 1.0
        margins = scores * Tensor(-y)
        # log(1 + exp(m)) computed stably: max(m,0) + log(1+exp(-|m|))
        zeros = Tensor(np.zeros(state.num_nodes))
        from repro.tensor.tensor import stack
        positive_part = stack([margins, zeros], axis=0).max(axis=0)
        log_term = ((-(margins.abs())).exp() + 1.0).log()
        return (positive_part + log_term).sum()
