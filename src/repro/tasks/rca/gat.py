"""Graph attention layer (Veličković et al.) — RCA architecture ablation.

The paper's RCA model uses GCN (Eq. 14); GAT is the canonical attention-based
alternative, implemented here so the ablation bench can ask whether the
aggregation scheme matters at this scale.  Single-head additive attention on
the adjacency (with self-loops), matching the GCN layer's interface so
:class:`RcaModel`-style stacks can swap layers.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class GraphAttentionLayer(Module):
    """One GAT layer: ``h'_i = σ( Σ_j α_ij W h_j )`` over graph neighbours."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator,
                 activation: bool = True, leaky_slope: float = 0.2):
        super().__init__()
        self.linear = Linear(in_dim, out_dim, rng, bias=False)
        self.attn_source = Parameter(rng.normal(0, 0.1, size=(out_dim, 1)))
        self.attn_target = Parameter(rng.normal(0, 0.1, size=(out_dim, 1)))
        self.activation = activation
        self.leaky_slope = leaky_slope

    def _leaky_relu(self, x: Tensor) -> Tensor:
        positive = x.relu()
        negative = (-((-x).relu())) * self.leaky_slope
        return positive + negative

    def forward(self, hidden: Tensor, adjacency: np.ndarray) -> Tensor:
        """``hidden`` is (V, in_dim); ``adjacency`` a 0/1 matrix (V, V)."""
        adjacency = np.asarray(adjacency)
        num_nodes = adjacency.shape[0]
        transformed = self.linear(hidden)                       # (V, D)
        source_score = transformed @ self.attn_source            # (V, 1)
        target_score = transformed @ self.attn_target            # (V, 1)
        # e_ij = leaky_relu(a_s·Wh_i + a_t·Wh_j), masked to edges + self.
        scores = self._leaky_relu(source_score + target_score.transpose())
        mask = adjacency + np.eye(num_nodes)
        bias = np.where(mask > 0, 0.0, -1e9)
        attention = F.softmax(scores + Tensor(bias), axis=-1)    # (V, V)
        out = attention @ transformed
        return out.relu() if self.activation else out


class GatRcaModel(Module):
    """RCA scorer with GAT aggregation (drop-in ablation for RcaModel)."""

    def __init__(self, feature_dim: int, rng: np.random.Generator,
                 hidden: int = 32, out: int = 16, mlp_hidden: int = 8):
        super().__init__()
        self.gat1 = GraphAttentionLayer(feature_dim, hidden, rng)
        self.gat2 = GraphAttentionLayer(hidden, out, rng)
        self.mlp_in = Linear(out, mlp_hidden, rng)
        self.mlp_out = Linear(mlp_hidden, 1, rng)

    def forward(self, state, event_embeddings: np.ndarray) -> Tensor:
        from repro.tasks.rca.model import RcaModel

        h0 = Tensor(RcaModel.node_initialisation(state, event_embeddings))
        h1 = self.gat1(h0, state.adjacency)
        h2 = self.gat2(h1, state.adjacency)
        scores = self.mlp_out(self.mlp_in(h2).relu())
        return scores.reshape(state.num_nodes)

    def loss(self, state, event_embeddings: np.ndarray) -> Tensor:
        from repro.tensor.tensor import stack

        scores = self(state, event_embeddings)
        y = -np.ones(state.num_nodes)
        y[state.root_index] = 1.0
        margins = scores * Tensor(-y)
        zeros = Tensor(np.zeros(state.num_nodes))
        positive_part = stack([margins, zeros], axis=0).max(axis=0)
        log_term = ((-(margins.abs())).exp() + 1.0).log()
        return (positive_part + log_term).sum()
