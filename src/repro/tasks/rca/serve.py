"""Thin RCA serving adapter: train once, rank root causes online.

The experiment harness (:mod:`repro.tasks.rca.experiment`) exists to fill
Table IV — 5-fold CV, metrics over held-out folds.  A *serving* deployment
wants the opposite shape: fit one scorer on every labelled state, then
answer ``rank_root_causes`` requests for new states with a single forward
pass.  :class:`RcaAdapter` is that shape, consumed by
:class:`repro.serving.FaultAnalysisService`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.optim import Adam
from repro.tasks.rca.data import RcaDataset, RcaState
from repro.tasks.rca.model import RcaModel
from repro.tasks.retrieval import RetrievalCandidateMixin
from repro.tensor import no_grad


def state_for_inference(node_names: list[str], adjacency: np.ndarray,
                        features: np.ndarray) -> RcaState:
    """Build an :class:`RcaState` for an *unlabelled* online request.

    ``RcaState`` carries a ground-truth ``root_index`` for training; at
    inference time there is none, so a placeholder of 0 is stored and
    never read by :meth:`RcaAdapter.rank`.
    """
    return RcaState(node_names=node_names,
                    adjacency=np.asarray(adjacency, dtype=float),
                    features=np.asarray(features, dtype=float),
                    root_index=0)


class RcaAdapter(RetrievalCandidateMixin):
    """Fit a GCN root-cause scorer on all labelled states, serve rankings.

    With a retriever attached (:meth:`attach_retriever`),
    :meth:`candidate_events` proposes catalog events near an arbitrary
    query surface — the hook callers use to assemble an inference state
    when the alarm set is not handed to them.
    """

    def __init__(self, dataset: RcaDataset, seed: int = 0, epochs: int = 8,
                 learning_rate: float = 5e-3):
        self.dataset = dataset
        self.seed = seed
        self.epochs = epochs
        self.learning_rate = learning_rate
        self._model: RcaModel | None = None
        self._embeddings: np.ndarray | None = None

    @property
    def event_names(self) -> list[str]:
        """Names the façade must embed before :meth:`fit`."""
        return self.dataset.event_names

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self._model is not None

    def fit(self, event_embeddings: np.ndarray) -> "RcaAdapter":
        """Train the scorer on every labelled state; returns ``self``."""
        embeddings = _unit_rows(event_embeddings)
        rng = np.random.default_rng(self.seed + 100)
        model = RcaModel(embeddings.shape[1], rng)
        optimizer = Adam(model.parameters(), lr=self.learning_rate)
        for _ in range(self.epochs):
            for index in rng.permutation(len(self.dataset.states)):
                state = self.dataset.states[index]
                optimizer.zero_grad()
                loss = model.loss(state, embeddings)
                loss.backward()
                optimizer.step()
        self._model = model
        self._embeddings = embeddings
        return self

    def rank(self, state: RcaState) -> list[tuple[str, float]]:
        """Nodes of ``state`` sorted by root-cause score, best first."""
        if self._model is None:
            raise RuntimeError("RcaAdapter.fit has not been called")
        with no_grad():
            scores = self._model(state, self._embeddings).data
        order = np.argsort(-scores)
        return [(state.node_names[i], float(scores[i])) for i in order]


def _unit_rows(matrix: np.ndarray) -> np.ndarray:
    """Row-normalise provider embeddings (levels scale across providers)."""
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.maximum(norms, 1e-12)
