"""RCA experiment harness: 5-fold CV, MR / Hits@{1,3,5} (Table IV protocol)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.kfold import k_fold_splits
from repro.evaluation.ranking import RankingMetrics, rank_of, ranking_metrics
from repro.nn.optim import Adam
from repro.service.providers import EmbeddingProvider
from repro.tasks.rca.data import RcaDataset
from repro.tasks.rca.model import RcaModel
from repro.tensor import no_grad


@dataclass
class RcaResult:
    """Averaged cross-validation result for one method."""

    label: str
    metrics: RankingMetrics

    def as_table_row(self) -> dict[str, float]:
        return {
            "MR": self.metrics.mean_rank,
            "Hits@1": 100.0 * self.metrics.hits[1],
            "Hits@3": 100.0 * self.metrics.hits[3],
            "Hits@5": 100.0 * self.metrics.hits[5],
        }


class RcaExperiment:
    """Runs the full RCA protocol for one embedding provider."""

    def __init__(self, dataset: RcaDataset, seed: int = 0,
                 num_folds: int = 5, epochs: int = 15,
                 learning_rate: float = 5e-3,
                 gcn_hidden: int = 32, gcn_out: int = 16, mlp_hidden: int = 8,
                 model_factory=None):
        """``model_factory(feature_dim, rng)`` overrides the scorer model
        (e.g. :class:`~repro.tasks.rca.GatRcaModel` for the architecture
        ablation); the default builds the paper's GCN model."""
        self.dataset = dataset
        self.seed = seed
        self.num_folds = num_folds
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.gcn_hidden = gcn_hidden
        self.gcn_out = gcn_out
        self.mlp_hidden = mlp_hidden
        self.model_factory = model_factory or self._default_model

    def _default_model(self, feature_dim: int,
                       rng: np.random.Generator) -> RcaModel:
        return RcaModel(feature_dim, rng, gcn_hidden=self.gcn_hidden,
                        gcn_out=self.gcn_out, mlp_hidden=self.mlp_hidden)

    def _train_fold(self, model: RcaModel, embeddings: np.ndarray,
                    train_index: np.ndarray, valid_index: np.ndarray,
                    rng: np.random.Generator) -> dict:
        """Train with early selection on validation mean rank."""
        optimizer = Adam(model.parameters(), lr=self.learning_rate)
        best_state = model.state_dict()
        best_valid = np.inf
        for _ in range(self.epochs):
            order = rng.permutation(train_index)
            for index in order:
                state = self.dataset.states[index]
                optimizer.zero_grad()
                loss = model.loss(state, embeddings)
                loss.backward()
                optimizer.step()
            valid_mr = np.mean(
                [self._rank(model, embeddings, i) for i in valid_index])
            if valid_mr < best_valid:
                best_valid = valid_mr
                best_state = model.state_dict()
        return best_state

    def _rank(self, model: RcaModel, embeddings: np.ndarray,
              state_index: int) -> int:
        state = self.dataset.states[state_index]
        with no_grad():
            scores = model(state, embeddings).data
        return rank_of(scores, state.root_index, higher_is_better=True)

    def run(self, provider: EmbeddingProvider) -> RcaResult:
        """5-fold CV; returns metrics averaged over all test folds."""
        embeddings = provider.encode_names(self.dataset.event_names)
        # Level the feature scale across providers (PLM [CLS] vectors and
        # random baselines have very different norms).
        embeddings = embeddings / np.maximum(
            np.linalg.norm(embeddings, axis=1, keepdims=True), 1e-12)
        splits = k_fold_splits(len(self.dataset.states), self.num_folds,
                               rng=np.random.default_rng(self.seed))
        all_ranks: list[int] = []
        for fold_number, split in enumerate(splits):
            rng = np.random.default_rng(self.seed + 100 + fold_number)
            model = self.model_factory(embeddings.shape[1], rng)
            best_state = self._train_fold(model, embeddings, split.train,
                                          split.valid, rng)
            model.load_state_dict(best_state)
            all_ranks.extend(self._rank(model, embeddings, i)
                             for i in split.test)
        return RcaResult(label=provider.label,
                         metrics=ranking_metrics(all_ranks,
                                                 hit_levels=(1, 3, 5)))
