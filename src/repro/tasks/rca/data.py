"""RCA dataset: system states with abnormal-event features and root labels.

Each fault episode yields one *state* (Sec. V-B1): the telecom system as a
graph ``G = (V, E, X)`` where ``X[i, j]`` counts occurrences of abnormal
event ``j`` on network element ``i`` during the state's time slot, labelled
with the ground-truth root-cause node.  Table III's statistics (#Graphs,
#Features, avg #Nodes, avg #Edges) come from :meth:`RcaDataset.describe`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.world.episodes import FaultEpisode
from repro.world.world import TelecomWorld


@dataclass
class RcaState:
    """One system state (graph + features + root label)."""

    node_names: list[str]
    adjacency: np.ndarray       # (V, V) symmetric 0/1
    features: np.ndarray        # (V, n) abnormal-event counts
    root_index: int

    def __post_init__(self):
        v = len(self.node_names)
        if self.adjacency.shape != (v, v):
            raise ValueError("adjacency shape mismatch")
        if self.features.shape[0] != v:
            raise ValueError("features row count mismatch")
        if not 0 <= self.root_index < v:
            raise ValueError("root index outside node range")

    @property
    def num_nodes(self) -> int:
        return len(self.node_names)

    @property
    def num_edges(self) -> int:
        return int(self.adjacency.sum() // 2)

    def normalized_adjacency(self) -> np.ndarray:
        """``D̃^{-1/2} Ã D̃^{-1/2}`` with self-loops (Eq. 14)."""
        a_tilde = self.adjacency + np.eye(self.num_nodes)
        degree = a_tilde.sum(axis=1)
        d_inv_sqrt = 1.0 / np.sqrt(degree)
        return a_tilde * d_inv_sqrt[:, None] * d_inv_sqrt[None, :]


@dataclass
class RcaDataset:
    """All states plus the shared abnormal-event catalog."""

    states: list[RcaState]
    event_names: list[str]   # feature column j <-> this event surface

    @property
    def num_features(self) -> int:
        return len(self.event_names)

    def describe(self) -> dict[str, float]:
        """Table III row: #Graphs, #Features, avg #Nodes, avg #Edges."""
        return {
            "graphs": len(self.states),
            "features": self.num_features,
            "avg_nodes": float(np.mean([s.num_nodes for s in self.states])),
            "avg_edges": float(np.mean([s.num_edges for s in self.states])),
        }


def build_rca_dataset(world: TelecomWorld,
                      episodes: list[FaultEpisode]) -> RcaDataset:
    """Convert fault episodes into RCA states.

    The feature set is the full event catalog (alarms + KPIs); counts include
    every abnormal record of the episode.  Only episodes whose root node
    carries at least one record become states (mirrors how real states are
    collected when abnormal events occur).
    """
    events = world.ontology.events
    event_index = {e.uid: j for j, e in enumerate(events)}
    nodes = world.topology.nodes
    node_index = {n: i for i, n in enumerate(nodes)}
    adjacency = world.topology.adjacency_matrix(nodes)

    states: list[RcaState] = []
    for episode in episodes:
        features = np.zeros((len(nodes), len(events)))
        for record in episode.records:
            if record.kind == "kpi" and record.event_uid not in \
                    {u for pair in episode.fired_edges for u in pair}:
                continue  # background normal KPI readings are not abnormal
            row = node_index.get(record.node)
            col = event_index.get(record.event_uid)
            if row is None or col is None:
                continue
            features[row, col] += 1.0
        root = node_index.get(episode.root_node)
        if root is None or features[root].sum() == 0:
            continue
        states.append(RcaState(node_names=list(nodes), adjacency=adjacency,
                               features=features, root_index=root))
    return RcaDataset(states=states, event_names=[e.name for e in events])
