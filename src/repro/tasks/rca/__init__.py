"""Root-cause analysis (Sec. V-B): node ranking on system-state graphs."""

from repro.tasks.rca.data import RcaDataset, RcaState, build_rca_dataset
from repro.tasks.rca.model import GcnLayer, RcaModel
from repro.tasks.rca.gat import GatRcaModel, GraphAttentionLayer
from repro.tasks.rca.experiment import RcaExperiment, RcaResult
from repro.tasks.rca.serve import RcaAdapter, state_for_inference

__all__ = [
    "GatRcaModel",
    "GcnLayer",
    "GraphAttentionLayer",
    "RcaDataset",
    "RcaExperiment",
    "RcaModel",
    "RcaResult",
    "RcaAdapter",
    "RcaState",
    "build_rca_dataset",
    "state_for_inference",
]
