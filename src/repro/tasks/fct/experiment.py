"""FCT experiment harness: GTransE training + MRR / Hits@{1,3,10} (Table VIII)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.ranking import RankingMetrics, ranking_metrics
from repro.kge.gtranse import GTransE
from repro.kge.ranking import link_prediction_ranks
from repro.kge.trainer import KgeTrainer
from repro.service.providers import EmbeddingProvider
from repro.tasks.fct.data import FctDataset


@dataclass
class FctResult:
    """Link-prediction result for one method."""

    label: str
    metrics: RankingMetrics

    def as_table_row(self) -> dict[str, float]:
        return {
            "MRR": 100.0 * self.metrics.mrr,
            "Hits@1": 100.0 * self.metrics.hits[1],
            "Hits@3": 100.0 * self.metrics.hits[3],
            "Hits@10": 100.0 * self.metrics.hits[10],
        }


class FctExperiment:
    """Runs the FCT protocol for one embedding provider.

    The provider initialises the alarm-entity embeddings
    ("Initialization of Pre-training Knowledge", Sec. V-D3); GTransE then
    learns on the uncertain fact set and is evaluated by recovering the
    masked first hops.
    """

    def __init__(self, dataset: FctDataset, seed: int = 0, epochs: int = 60,
                 batch_size: int = 32, learning_rate: float = 0.02,
                 margin: float = 2.0, alpha: float = 1.0,
                 negatives_per_positive: int = 4):
        # lr default 0.02: higher rates wash out the provider initialisation
        # (measured: at 0.05 the KTeleBERT advantage over Random disappears;
        # the paper's dim-2000 setting is likewise init-dominated).
        if not dataset.quadruples:
            raise ValueError("FCT dataset has no training facts")
        self.dataset = dataset
        self.seed = seed
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.margin = margin
        self.alpha = alpha
        self.negatives_per_positive = negatives_per_positive

    def run(self, provider: EmbeddingProvider) -> FctResult:
        """Train GTransE with provider-initialised entities, rank test hops."""
        rng = np.random.default_rng(self.seed + 700)
        entity_init = provider.encode_names(self.dataset.entity_names)
        # Scale the initialisation to the unit ball expected by TransE.
        norms = np.linalg.norm(entity_init, axis=1, keepdims=True)
        entity_init = entity_init / np.maximum(norms, 1e-9)

        model = GTransE(self.dataset.num_entities,
                        self.dataset.num_relations,
                        dim=entity_init.shape[1], rng=rng,
                        margin=self.margin, alpha=self.alpha,
                        entity_init=entity_init)
        known = self.dataset.all_known()
        trainer = KgeTrainer(
            model, self.dataset.quadruples, self.dataset.num_entities,
            rng=rng, learning_rate=self.learning_rate,
            batch_size=self.batch_size, margin=self.margin,
            negatives_per_positive=self.negatives_per_positive)
        trainer.fit(self.epochs, valid_triples=self.dataset.valid,
                    known=known)

        # Tail prediction, as in the paper's completion protocol (the chain
        # is traced forward; head prediction is ill-posed for root alarms).
        ranks = link_prediction_ranks(model, self.dataset.test,
                                      known_triples=known,
                                      predict="tail")
        return FctResult(label=provider.label,
                         metrics=ranking_metrics(ranks,
                                                 hit_levels=(1, 3, 10)))
