"""Fault chain tracing (Sec. V-D): uncertain-KG link prediction over alarms."""

from repro.tasks.fct.data import FctDataset, build_fct_dataset
from repro.tasks.fct.experiment import FctExperiment, FctResult
from repro.tasks.fct.serve import FctAdapter

__all__ = [
    "FctAdapter",
    "FctDataset",
    "FctExperiment",
    "FctResult",
    "build_fct_dataset",
]
