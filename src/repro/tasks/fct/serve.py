"""Thin FCT serving adapter: train GTransE once, trace fault chains online.

Serving shape of fault chain tracing: fit the uncertain-KG model on every
observed propagation hop (entities initialised from the provider's service
embeddings, as in Sec. V-D3), then answer ``classify_fault`` requests —
"given this alarm, which alarms does the fault propagate to next?" — by
scoring ``(alarm, r, *)`` over the alarm catalog and every relation.
"""

from __future__ import annotations

import numpy as np

from repro.kge.gtranse import GTransE, UncertainTriple
from repro.kge.trainer import KgeTrainer
from repro.tasks.fct.data import FctDataset
from repro.tasks.retrieval import RetrievalCandidateMixin


class FctAdapter(RetrievalCandidateMixin):
    """Fit GTransE on the alarm-propagation graph, serve next-hop rankings."""

    def __init__(self, dataset: FctDataset, seed: int = 0, epochs: int = 30,
                 batch_size: int = 32, learning_rate: float = 0.02,
                 margin: float = 2.0, alpha: float = 1.0,
                 negatives_per_positive: int = 4):
        if not dataset.quadruples:
            raise ValueError("FCT dataset has no training facts")
        self.dataset = dataset
        self.seed = seed
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.margin = margin
        self.alpha = alpha
        self.negatives_per_positive = negatives_per_positive
        self._model: GTransE | None = None
        self._entity_index = {name: i
                              for i, name in enumerate(dataset.entity_names)}

    @property
    def event_names(self) -> list[str]:
        """Alarm surfaces the façade must embed before :meth:`fit`."""
        return self.dataset.entity_names

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self._model is not None

    def fit(self, entity_embeddings: np.ndarray) -> "FctAdapter":
        """Train on every known hop with provider-initialised entities."""
        rng = np.random.default_rng(self.seed + 700)
        norms = np.linalg.norm(entity_embeddings, axis=1, keepdims=True)
        entity_init = entity_embeddings / np.maximum(norms, 1e-9)
        model = GTransE(self.dataset.num_entities,
                        self.dataset.num_relations,
                        dim=entity_init.shape[1], rng=rng,
                        margin=self.margin, alpha=self.alpha,
                        entity_init=entity_init)
        # Serving fits on *all* facts: the masked-hop hold-out protocol
        # belongs to the evaluation harness, not the service.  Training
        # hops already live in ``quadruples``; only the masked valid/test
        # hops need restoring (no hop-count evidence → full confidence).
        facts = self.dataset.quadruples + [
            UncertainTriple(head=h, relation=r, tail=t, confidence=1.0)
            for h, r, t in self.dataset.valid + self.dataset.test]
        trainer = KgeTrainer(
            model, facts, self.dataset.num_entities, rng=rng,
            learning_rate=self.learning_rate, batch_size=self.batch_size,
            margin=self.margin,
            negatives_per_positive=self.negatives_per_positive)
        trainer.fit(self.epochs)
        self._model = model
        return self

    def trace(self, alarm_name: str, top_k: int = 5,
              candidates: list[str] | None = None) -> list[dict]:
        """Most plausible next-hop alarms for ``alarm_name``.

        Scores (relation, tail) completions and keeps each tail's best
        relation; returns up to ``top_k`` entries of the form ``{"alarm",
        "relation", "score"}`` with higher score = more plausible (the
        negated TransE distance).

        ``candidates`` restricts the tails considered.  When omitted and
        a retriever is attached (:meth:`attach_retriever`), candidates
        come from the ANN index (the alarm's embedding-space neighbours
        within the catalog); otherwise every catalog alarm is scored.
        """
        if self._model is None:
            raise RuntimeError("FctAdapter.fit has not been called")
        head = self._entity_index.get(alarm_name)
        if head is None:
            raise KeyError(f"unknown alarm: {alarm_name!r}")
        if candidates is None and self.retriever is not None:
            candidates = self.candidate_events(alarm_name,
                                               k=max(4 * top_k, 16))
        allowed: set[int] | None = None
        if candidates:
            allowed = {self._entity_index[name] for name in candidates
                       if name in self._entity_index}
            allowed.discard(head)
            if not allowed:  # nothing retrievable — full scan, not empty
                allowed = None
        best: dict[int, tuple[float, int]] = {}
        for relation in range(self.dataset.num_relations):
            distances = self._model.score_all_tails(head, relation)
            for tail, distance in enumerate(distances):
                if tail == head:
                    continue
                if allowed is not None and tail not in allowed:
                    continue
                score = -float(distance)
                if tail not in best or score > best[tail][0]:
                    best[tail] = (score, relation)
        ranked = sorted(best.items(), key=lambda item: -item[1][0])[:top_k]
        return [{"alarm": self.dataset.entity_names[tail],
                 "relation": self.dataset.relation_names[relation],
                 "score": score}
                for tail, (score, relation) in ranked]
