"""FCT dataset: probabilistic alarm-propagation facts from fault chains.

The telecom failure network is the heterogeneous graph ``G = (V, E, Q, P)``
(Sec. V-D2): nodes are alarms, edges are relations between alarms *in network
element instances* (edges connecting the same NE-type pair share a relation
embedding), facts are quadruples ``(h, r, t, s)`` with confidence ``s``
estimated from how often the hop appeared across chains, and ``P`` is the set
of propagation chains.  The evaluation masks the *first hop* of held-out
chains and asks the model to recover the target alarm (link prediction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kge.gtranse import UncertainTriple
from repro.world.episodes import FaultEpisode
from repro.world.world import TelecomWorld


@dataclass
class FctDataset:
    """Entities, relations, quadruples, and the masked-hop splits."""

    entity_names: list[str]          # alarm surfaces, index = entity id
    entity_uids: list[str]
    relation_names: list[str]        # NE-type-pair relation labels
    quadruples: list[UncertainTriple]
    train: list[tuple[int, int, int]]
    valid: list[tuple[int, int, int]]
    test: list[tuple[int, int, int]]

    @property
    def num_entities(self) -> int:
        return len(self.entity_names)

    @property
    def num_relations(self) -> int:
        return len(self.relation_names)

    def describe(self) -> dict[str, int]:
        """Table VII row."""
        return {
            "nodes": self.num_entities,
            "edges": len(self.quadruples),
            "train": len(self.train),
            "valid": len(self.valid),
            "test": len(self.test),
        }

    def all_known(self) -> set[tuple[int, int, int]]:
        """Every fact (for filtered ranking)."""
        return {(q.head, q.relation, q.tail) for q in self.quadruples} | \
            set(self.train) | set(self.valid) | set(self.test)


def _rules_filter(chains: list[list[str]], min_length: int = 2) -> list[list[str]]:
    """Rules Lightning (Eq. 22): drop irrelevant/degenerate chains."""
    return [c for c in chains if len(c) >= min_length]


def build_fct_dataset(world: TelecomWorld, episodes: list[FaultEpisode],
                      seed: int = 0, valid_fraction: float = 0.12,
                      test_fraction: float = 0.15,
                      mask_hop: str = "any") -> FctDataset:
    """Build the uncertain alarm graph and the masked-hop splits.

    ``mask_hop="first"`` masks only chains' first hops (the paper's exact
    protocol); ``"any"`` (default) draws eval candidates from every distinct
    hop, which keeps the held-out splits usable at our much smaller scale
    (the paper has 232/33/32 chains; synthetic worlds produce far fewer
    *distinct* first hops).
    """
    if mask_hop not in ("first", "any"):
        raise ValueError("mask_hop must be 'first' or 'any'")
    rng = np.random.default_rng(seed + 23)
    alarms = {a.uid: a for a in world.ontology.alarms}

    chains = _rules_filter([e.chain for e in episodes])
    if not chains:
        raise ValueError("no usable fault chains in the episodes")

    # Entities: every alarm that appears in some chain.
    uids = sorted({uid for chain in chains for uid in chain})
    entity_index = {uid: i for i, uid in enumerate(uids)}

    # Hop counting -> confidence estimation.
    hop_counts: dict[tuple[str, str], int] = {}
    for chain in chains:
        for a, b in zip(chain, chain[1:]):
            hop_counts[(a, b)] = hop_counts.get((a, b), 0) + 1
    max_count = max(hop_counts.values())

    def relation_label(source: str, target: str) -> str:
        # Hops propagating into the same NE type share one relation embedding
        # ("some edges ... share the same embedding since they connect the
        # same network element type", Sec. V-D3).
        return f"into-{alarms[target].ne_type}"

    relation_names = sorted({relation_label(a, b) for a, b in hop_counts})
    relation_index = {r: i for i, r in enumerate(relation_names)}

    # Masked hops: distinct candidate triples drawn per chain.
    first_hops: list[tuple[int, int, int]] = []
    seen: set[tuple[int, int, int]] = set()
    for chain in chains:
        if mask_hop == "first":
            hops = [(chain[0], chain[1])]
        else:
            hops = list(zip(chain, chain[1:]))
        for a, b in hops:
            triple = (entity_index[a],
                      relation_index[relation_label(a, b)],
                      entity_index[b])
            if triple not in seen:
                seen.add(triple)
                first_hops.append(triple)
    rng.shuffle(first_hops)
    n = len(first_hops)
    n_test = max(1, int(round(n * test_fraction)))
    n_valid = max(1, int(round(n * valid_fraction)))
    test = first_hops[:n_test]
    valid = first_hops[n_test:n_test + n_valid]
    train = first_hops[n_test + n_valid:]

    # The training graph holds every observed hop EXCEPT the masked
    # valid/test first hops (they are what the model must recover).
    held_out = set(test) | set(valid)
    quadruples = []
    for (a, b), count in sorted(hop_counts.items()):
        triple = (entity_index[a],
                  relation_index[relation_label(a, b)],
                  entity_index[b])
        if triple in held_out:
            continue
        quadruples.append(UncertainTriple(
            head=triple[0], relation=triple[1], tail=triple[2],
            confidence=count / max_count))

    return FctDataset(
        entity_names=[alarms[u].name for u in uids],
        entity_uids=uids,
        relation_names=relation_names,
        quadruples=quadruples,
        train=train, valid=valid, test=test)
