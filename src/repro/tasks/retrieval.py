"""Retrieval-backed candidate generation for the serve adapters.

Before the ANN tier (:mod:`repro.index`), the RCA/EAP/FCT serve adapters
had to be *handed* their candidate entities — the request carried every
node/pair/alarm to score.  With a retriever attached
(:class:`~repro.index.IndexedEmbeddingProvider`, wired by
:class:`~repro.serving.FaultAnalysisService` when it is built with an
index), an adapter can instead *generate* candidates: embed the query
surface, pull its nearest stored entities, and keep the ones inside the
adapter's own catalog.

The hook is strictly opt-in — an adapter without a retriever behaves
exactly as before (``candidate_events`` returns ``[]``, full-catalog
scans stay full), so checkpoint-free deployments and the experiment
harness are untouched.
"""

from __future__ import annotations


class RetrievalCandidateMixin:
    """Mixin giving a serve adapter ANN-backed candidate generation.

    Host classes must expose ``event_names`` (their closed catalog).
    """

    _retriever = None

    def attach_retriever(self, retriever) -> None:
        """Wire an object with ``retrieve_names(names, k, nprobe)``."""
        self._retriever = retriever

    @property
    def retriever(self):
        """The attached retriever, or ``None``."""
        return self._retriever

    def candidate_events(self, name: str, k: int = 10,
                         nprobe: int | None = None) -> list[str]:
        """Catalog entities nearest ``name`` in embedding space.

        Returns up to ``k`` retrieved names filtered to this adapter's
        ``event_names`` (the index may hold far more entities than one
        adapter serves), nearest first, the query itself excluded.
        Without a retriever the answer is ``[]`` — callers fall back to
        their full-catalog behaviour.
        """
        if self._retriever is None:
            return []
        known = set(self.event_names)
        [hits] = self._retriever.retrieve_names([name], k=k, nprobe=nprobe)
        return [hit for hit, _ in hits if hit in known and hit != name]


__all__ = ["RetrievalCandidateMixin"]
