"""The three fault-analysis tasks (Sec. V): RCA, EAP, FCT."""

from repro.tasks import eap, fct, rca

__all__ = ["eap", "fct", "rca"]
