"""Tele-product Knowledge Graph (Tele-KG) substrate (Sec. II-A3, Fig. 2).

* :mod:`repro.kg.schema` — the hierarchical tele-schema: ``Event`` and
  ``Resource`` root superclasses, concept inheritance via ``subclassOf``.
* :mod:`repro.kg.graph` — the triple store: typed entities, relation triples,
  attribute triples (string or numeric values).
* :mod:`repro.kg.builder` — constructs the Tele-KG from a
  :class:`~repro.world.TelecomWorld` (trigger relations from the causal
  ground truth, topology relations, attributes from the catalogs).
* :mod:`repro.kg.query` — a small SPARQL-style basic-graph-pattern engine
  (experts query Tele-KG with SPARQL in the paper's workflow).
* :mod:`repro.kg.serialize` — triple→sentence serialisation through the
  prompt templates (implicit knowledge injection, Sec. IV-A1).
* :mod:`repro.kg.sampling` — negative sampling for the KE objective.
"""

from repro.kg.schema import TeleSchema
from repro.kg.graph import AttributeTriple, Entity, TeleKG, Triple
from repro.kg.builder import build_tele_kg
from repro.kg.query import Pattern, Variable, query
from repro.kg.serialize import serialize_attribute_triple, serialize_kg, serialize_triple
from repro.kg.sampling import NegativeSampler
from repro.kg.io import export_json, export_ntriples, import_json

__all__ = [
    "AttributeTriple",
    "Entity",
    "NegativeSampler",
    "Pattern",
    "TeleKG",
    "TeleSchema",
    "Triple",
    "Variable",
    "build_tele_kg",
    "export_json",
    "export_ntriples",
    "import_json",
    "query",
    "serialize_attribute_triple",
    "serialize_kg",
    "serialize_triple",
]
