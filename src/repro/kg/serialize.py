"""Triple → sentence serialisation (Sec. IV-A1(ii)).

Relational triples and *significant* attribute triples are serialised by
concatenating entity/relation surfaces through the prompt templates, turning
structured knowledge into sentences the language model can consume (implicit
knowledge injection).
"""

from __future__ import annotations

from repro.kg.graph import AttributeTriple, TeleKG, Triple
from repro.prompts.templates import wrap_attribute, wrap_triple

#: Attributes judged significant enough to serialise (the paper evaluates and
#: keeps only part of the attribute triples).
SIGNIFICANT_ATTRIBUTES: frozenset[str] = frozenset(
    {"severity", "unit", "normal low", "normal high"})


def serialize_triple(kg: TeleKG, triple: Triple) -> str:
    """Render one relational triple using entity surfaces."""
    head = kg.entity(triple.head).surface
    tail = kg.entity(triple.tail).surface
    return wrap_triple(head, triple.relation, tail)


def serialize_attribute_triple(kg: TeleKG, fact: AttributeTriple) -> str:
    """Render one attribute triple using the entity surface."""
    surface = kg.entity(fact.entity).surface
    return wrap_attribute(surface, fact.attribute, fact.value)


def serialize_kg(kg: TeleKG, include_attributes: bool = True,
                 significant_only: bool = True) -> list[str]:
    """Serialise the whole KG to prompt-wrapped sentences.

    Relational triples are always included; attribute triples only when
    ``include_attributes`` and (optionally) when their attribute name is in
    :data:`SIGNIFICANT_ATTRIBUTES`.
    """
    sentences = [serialize_triple(kg, t) for t in kg.triples]
    if include_attributes:
        for fact in kg.attributes:
            if significant_only and fact.attribute not in SIGNIFICANT_ATTRIBUTES:
                continue
            sentences.append(serialize_attribute_triple(kg, fact))
    return sentences
