"""A small SPARQL-style basic-graph-pattern query engine.

The paper's experts retrieve background knowledge from Tele-KG with SPARQL
queries.  This module supports the conjunctive core of SPARQL: a list of
triple patterns with shared variables, evaluated by backtracking join; enough
to express queries like *"which KPIs are triggered by alarms occurring on the
SMF"*:

>>> from repro.kg import Pattern, Variable, query
>>> a, k = Variable("a"), Variable("k")
>>> rows = query(kg, [Pattern(a, "occursOn", "NET-SMF"),
...                   Pattern(a, "trigger", k)])            # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.kg.graph import TeleKG, Triple


@dataclass(frozen=True)
class Variable:
    """A query variable; equality is by name."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


Term = "Variable | str"


@dataclass(frozen=True)
class Pattern:
    """One triple pattern: each slot is an entity uid / relation or a Variable."""

    head: object
    relation: object
    tail: object


def _candidate_triples(kg: TeleKG, pattern: Pattern,
                       binding: dict[str, str]) -> Iterable[Triple]:
    """Pick the most selective index for a pattern under current bindings."""
    head = _resolve(pattern.head, binding)
    relation = _resolve(pattern.relation, binding)
    tail = _resolve(pattern.tail, binding)
    if isinstance(head, str):
        return kg.triples_from(head)
    if isinstance(tail, str):
        return kg.triples_to(tail)
    if isinstance(relation, str):
        return kg.triples_with_relation(relation)
    return kg.triples


def _resolve(term, binding: dict[str, str]):
    if isinstance(term, Variable):
        return binding.get(term.name, term)
    return term


def _match(pattern: Pattern, triple: Triple,
           binding: dict[str, str]) -> dict[str, str] | None:
    """Try to extend ``binding`` so ``pattern`` matches ``triple``."""
    new = dict(binding)
    for term, value in ((pattern.head, triple.head),
                        (pattern.relation, triple.relation),
                        (pattern.tail, triple.tail)):
        term = _resolve(term, new)
        if isinstance(term, Variable):
            new[term.name] = value
        elif term != value:
            return None
    return new


def query(kg: TeleKG, patterns: Sequence[Pattern],
          limit: int | None = None,
          where=None) -> list[dict[str, str]]:
    """Evaluate a basic graph pattern; returns variable bindings.

    Patterns are joined left-to-right with backtracking; each result is a
    dict mapping variable names to entity uids / relation names.  ``where``
    is an optional predicate over complete bindings (the FILTER clause of
    SPARQL's conjunctive core).
    """
    if not patterns:
        return []
    results: list[dict[str, str]] = []

    def backtrack(index: int, binding: dict[str, str]) -> bool:
        """Returns True when the result limit has been reached."""
        if index == len(patterns):
            if where is not None and not where(binding):
                return False
            results.append(binding)
            return limit is not None and len(results) >= limit
        pattern = patterns[index]
        for triple in _candidate_triples(kg, pattern, binding):
            extended = _match(pattern, triple, binding)
            if extended is not None:
                if backtrack(index + 1, extended):
                    return True
        return False

    backtrack(0, {})
    return results


def ask(kg: TeleKG, patterns: Sequence[Pattern]) -> bool:
    """SPARQL ASK: does at least one binding satisfy the pattern?"""
    return bool(query(kg, patterns, limit=1))
