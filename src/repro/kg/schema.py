"""Hierarchical tele-schema (Sec. II-A3).

Two root superclasses, ``Event`` and ``Resource``, anchor the concept
hierarchy; concept classes inherit across levels via ``subclassOf`` (top-down
modelling).  The schema validates entity typing during KG construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default class hierarchy: child -> parent.
DEFAULT_HIERARCHY: dict[str, str | None] = {
    "Event": None,
    "Resource": None,
    "Alarm": "Event",
    "KPIAnomaly": "Event",
    "KPI": "KPIAnomaly",
    "NetworkElement": "Resource",
    "NetworkElementType": "NetworkElement",
    "NetworkElementInstance": "NetworkElement",
    "Interface": "Resource",
    "Board": "Resource",
    "License": "Resource",
    "Location": "Resource",
    "Vendor": "Resource",
    "Document": "Resource",
}


@dataclass
class TeleSchema:
    """Concept hierarchy with ``subclassOf`` reasoning."""

    parents: dict[str, str | None] = field(
        default_factory=lambda: dict(DEFAULT_HIERARCHY))

    def __post_init__(self):
        for child, parent in self.parents.items():
            if parent is not None and parent not in self.parents:
                raise ValueError(f"class {child} has unknown parent {parent}")
        if self._has_cycle():
            raise ValueError("schema hierarchy contains a cycle")

    def _has_cycle(self) -> bool:
        for start in self.parents:
            seen = set()
            node: str | None = start
            while node is not None:
                if node in seen:
                    return True
                seen.add(node)
                node = self.parents.get(node)
        return False

    @property
    def classes(self) -> set[str]:
        return set(self.parents)

    @property
    def roots(self) -> set[str]:
        return {c for c, p in self.parents.items() if p is None}

    def add_class(self, name: str, parent: str) -> None:
        """Register a new concept class under an existing parent."""
        if name in self.parents:
            raise ValueError(f"class {name} already exists")
        if parent not in self.parents:
            raise ValueError(f"unknown parent class {parent}")
        self.parents[name] = parent

    def parent_of(self, cls: str) -> str | None:
        if cls not in self.parents:
            raise KeyError(cls)
        return self.parents[cls]

    def ancestors(self, cls: str) -> list[str]:
        """All superclasses of ``cls`` from nearest to root (exclusive of cls)."""
        out: list[str] = []
        node = self.parent_of(cls)
        while node is not None:
            out.append(node)
            node = self.parents.get(node)
        return out

    def is_subclass(self, child: str, ancestor: str) -> bool:
        """True when ``child`` equals or transitively inherits ``ancestor``."""
        return child == ancestor or ancestor in self.ancestors(child)

    def root_of(self, cls: str) -> str:
        """The top superclass (``Event`` or ``Resource``) of a class."""
        chain = [cls] + self.ancestors(cls)
        return chain[-1]

    def subclass_triples(self) -> list[tuple[str, str, str]]:
        """The ``(child, subclassOf, parent)`` triples of the hierarchy."""
        return [(c, "subclassOf", p) for c, p in self.parents.items()
                if p is not None]
