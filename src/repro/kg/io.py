"""Tele-KG import/export: N-Triples-style text and JSON.

Real platforms exchange KG snapshots between the construction pipeline and
consumers; these serializers give the Tele-KG a stable on-disk form.  The
N-Triples flavour writes one ``<head> <relation> <tail> .`` line per fact
with a simple URI scheme (``tele:`` prefix, percent-free underscore
escaping); the JSON form is lossless (entities with classes + surfaces,
relation triples, attribute triples with typed literals).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.kg.graph import TeleKG
from repro.kg.schema import TeleSchema

_PREFIX = "tele:"


def _encode_uri(value: str) -> str:
    return _PREFIX + value.replace(" ", "_")


def _decode_uri(value: str) -> str:
    if not value.startswith(_PREFIX):
        raise ValueError(f"not a tele URI: {value!r}")
    return value[len(_PREFIX):].replace("_", " ")


def export_ntriples(kg: TeleKG, path: str | Path) -> Path:
    """Write relation triples as N-Triples-style lines.

    Entity classes are emitted as ``rdf:type`` facts and surfaces as
    ``rdfs:label`` literal facts, so the export is self-describing.
    """
    path = Path(path)
    lines: list[str] = []
    for entity in kg.entities():
        lines.append(f"{_encode_uri(entity.uid)} rdf:type "
                     f"{_encode_uri(entity.cls)} .")
        lines.append(f'{_encode_uri(entity.uid)} rdfs:label '
                     f'"{entity.surface}" .')
    for triple in kg.triples:
        lines.append(f"{_encode_uri(triple.head)} "
                     f"{_encode_uri(triple.relation)} "
                     f"{_encode_uri(triple.tail)} .")
    for fact in kg.attributes:
        rendered = (f'"{fact.value}"' if not fact.is_numeric
                    else f'"{fact.value}"^^xsd:double')
        lines.append(f"{_encode_uri(fact.entity)} "
                     f"{_encode_uri('attr ' + fact.attribute)} {rendered} .")
    path.write_text("\n".join(lines) + "\n")
    return path


def export_json(kg: TeleKG, path: str | Path) -> Path:
    """Lossless JSON export."""
    payload = {
        "entities": [{"uid": e.uid, "surface": e.surface, "cls": e.cls}
                     for e in kg.entities()],
        "triples": [{"head": t.head, "relation": t.relation, "tail": t.tail}
                    for t in kg.triples],
        "attributes": [{"entity": a.entity, "attribute": a.attribute,
                        "value": a.value,
                        "numeric": a.is_numeric}
                       for a in kg.attributes],
        "schema": {child: parent for child, parent
                   in kg.schema.parents.items()},
    }
    path = Path(path)
    path.write_text(json.dumps(payload, ensure_ascii=False))
    return path


def import_json(path: str | Path) -> TeleKG:
    """Rebuild a :class:`TeleKG` from :func:`export_json` output."""
    payload = json.loads(Path(path).read_text())
    schema = TeleSchema(parents=dict(payload["schema"]))
    kg = TeleKG(schema)
    for entity in payload["entities"]:
        kg.add_entity(entity["uid"], entity["surface"], entity["cls"])
    for triple in payload["triples"]:
        kg.add_triple(triple["head"], triple["relation"], triple["tail"])
    for fact in payload["attributes"]:
        value = fact["value"]
        if fact["numeric"]:
            value = float(value)
        kg.add_attribute(fact["entity"], fact["attribute"], value)
    return kg
