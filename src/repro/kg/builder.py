"""Builds the Tele-KG from a :class:`~repro.world.TelecomWorld`.

Knowledge sources mirror the paper's platform:

* expert trigger knowledge — every edge of the ground-truth causal graph
  becomes a ``trigger`` triple (this is the ``(Alm ..., trigger, KPI ...)``
  example from the introduction);
* product structure — alarms ``occursOn`` their NE type, KPIs ``measuredOn``
  theirs, NE types ``provide`` interfaces;
* deployment — NE instances ``instanceOf`` their type, ``connectedTo``
  topology neighbours, ``locatedAt`` sites, ``providedBy`` vendors;
* attributes — alarm severity, KPI unit and normal range (numeric!), node
  metadata.
"""

from __future__ import annotations

from repro.kg.graph import TeleKG
from repro.kg.schema import TeleSchema
from repro.world.world import TelecomWorld


def build_tele_kg(world: TelecomWorld) -> TeleKG:
    """Construct the Tele-KG for a generated world."""
    kg = TeleKG(TeleSchema())

    # --- catalog entities -------------------------------------------------
    for alarm in world.ontology.alarms:
        kg.add_entity(alarm.uid, alarm.name, "Alarm")
        kg.add_attribute(alarm.uid, "severity", alarm.severity)
        kg.add_attribute(alarm.uid, "theme", alarm.theme)
    for kpi in world.ontology.kpis:
        kg.add_entity(kpi.uid, kpi.name, "KPI")
        kg.add_attribute(kpi.uid, "unit", kpi.unit)
        kg.add_attribute(kpi.uid, "normal low", kpi.normal_low)
        kg.add_attribute(kpi.uid, "normal high", kpi.normal_high)
        kg.add_attribute(kpi.uid, "theme", kpi.theme)

    for name, ne_type in world.ontology.ne_types.items():
        kg.add_entity(f"NET-{name}", f"{name} network element",
                      "NetworkElementType")
        for iface in ne_type.interfaces:
            iface_uid = f"IF-{iface}"
            if not kg.has_entity(iface_uid):
                kg.add_entity(iface_uid, f"{iface} interface", "Interface")
            kg.add_triple(f"NET-{name}", "provide", iface_uid)

    # --- expert trigger knowledge -----------------------------------------
    for edge in world.causal_graph.edges:
        kg.add_triple(edge.source, "trigger", edge.target)

    # --- catalog → product links -------------------------------------------
    for alarm in world.ontology.alarms:
        kg.add_triple(alarm.uid, "occursOn", f"NET-{alarm.ne_type}")
        kg.add_triple(alarm.uid, "raisedVia", f"IF-{alarm.interface}")
    for kpi in world.ontology.kpis:
        kg.add_triple(kpi.uid, "measuredOn", f"NET-{kpi.ne_type}")

    # --- deployment ---------------------------------------------------------
    seen_locations: set[str] = set()
    seen_vendors: set[str] = set()
    topo = world.topology
    for node in topo.nodes:
        attrs = topo.graph.nodes[node]
        node_uid = f"NEI-{node}"
        kg.add_entity(node_uid, node, "NetworkElementInstance")
        kg.add_triple(node_uid, "instanceOf", f"NET-{attrs['ne_type']}")
        location = attrs["location"]
        loc_uid = f"LOC-{location}"
        if location not in seen_locations:
            kg.add_entity(loc_uid, location, "Location")
            seen_locations.add(location)
        kg.add_triple(node_uid, "locatedAt", loc_uid)
        vendor = attrs["vendor"]
        vendor_uid = f"VEN-{vendor}"
        if vendor not in seen_vendors:
            kg.add_entity(vendor_uid, vendor, "Vendor")
            seen_vendors.add(vendor)
        kg.add_triple(node_uid, "providedBy", vendor_uid)
    for u, v in topo.graph.edges:
        kg.add_triple(f"NEI-{u}", "connectedTo", f"NEI-{v}")

    return kg
