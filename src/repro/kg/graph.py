"""The Tele-KG triple store.

Entities are typed against the :class:`~repro.kg.schema.TeleSchema`; facts
are relation triples between entities, plus attribute triples carrying string
or numeric literals (numeric attribute values feed the ANEnc during
re-training, Sec. IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.kg.schema import TeleSchema


@dataclass(frozen=True)
class Entity:
    """A KG entity: stable id, human surface, schema class."""

    uid: str
    surface: str
    cls: str


@dataclass(frozen=True)
class Triple:
    """A relational fact ``(head, relation, tail)`` over entity uids."""

    head: str
    relation: str
    tail: str


@dataclass(frozen=True)
class AttributeTriple:
    """An attribute fact ``(entity, attribute, literal value)``."""

    entity: str
    attribute: str
    value: object

    @property
    def is_numeric(self) -> bool:
        return isinstance(self.value, (int, float)) and not isinstance(self.value, bool)


class TeleKG:
    """In-memory Tele-KG with typed entities and indexed triples."""

    def __init__(self, schema: TeleSchema | None = None):
        self.schema = schema or TeleSchema()
        self._entities: dict[str, Entity] = {}
        self._triples: list[Triple] = []
        self._triple_set: set[Triple] = set()
        self._attributes: list[AttributeTriple] = []
        self._by_head: dict[str, list[Triple]] = {}
        self._by_tail: dict[str, list[Triple]] = {}
        self._by_relation: dict[str, list[Triple]] = {}
        self._attrs_by_entity: dict[str, list[AttributeTriple]] = {}

    # ------------------------------------------------------------------
    # Entities
    # ------------------------------------------------------------------
    def add_entity(self, uid: str, surface: str, cls: str) -> Entity:
        """Register an entity; idempotent for identical re-registration."""
        if cls not in self.schema.classes:
            raise ValueError(f"unknown schema class: {cls}")
        if uid in self._entities:
            existing = self._entities[uid]
            if existing.surface != surface or existing.cls != cls:
                raise ValueError(f"entity {uid} already registered differently")
            return existing
        entity = Entity(uid=uid, surface=surface, cls=cls)
        self._entities[uid] = entity
        return entity

    def entity(self, uid: str) -> Entity:
        return self._entities[uid]

    def has_entity(self, uid: str) -> bool:
        return uid in self._entities

    def entities(self, cls: str | None = None) -> list[Entity]:
        """All entities, optionally restricted to a class (incl. subclasses)."""
        if cls is None:
            return list(self._entities.values())
        return [e for e in self._entities.values()
                if self.schema.is_subclass(e.cls, cls)]

    def entity_by_surface(self, surface: str) -> Entity | None:
        """Exact-surface entity lookup (the paper's entity-mapping service)."""
        for entity in self._entities.values():
            if entity.surface == surface:
                return entity
        return None

    # ------------------------------------------------------------------
    # Triples
    # ------------------------------------------------------------------
    def add_triple(self, head: str, relation: str, tail: str) -> Triple:
        """Add a relational fact; both ends must be registered entities."""
        for uid in (head, tail):
            if uid not in self._entities:
                raise KeyError(f"unknown entity: {uid}")
        triple = Triple(head, relation, tail)
        if triple in self._triple_set:
            return triple
        self._triple_set.add(triple)
        self._triples.append(triple)
        self._by_head.setdefault(head, []).append(triple)
        self._by_tail.setdefault(tail, []).append(triple)
        self._by_relation.setdefault(relation, []).append(triple)
        return triple

    def add_attribute(self, entity: str, attribute: str, value) -> AttributeTriple:
        """Add an attribute fact on a registered entity."""
        if entity not in self._entities:
            raise KeyError(f"unknown entity: {entity}")
        fact = AttributeTriple(entity, attribute, value)
        self._attributes.append(fact)
        self._attrs_by_entity.setdefault(entity, []).append(fact)
        return fact

    @property
    def triples(self) -> list[Triple]:
        return list(self._triples)

    @property
    def attributes(self) -> list[AttributeTriple]:
        return list(self._attributes)

    def has_triple(self, head: str, relation: str, tail: str) -> bool:
        return Triple(head, relation, tail) in self._triple_set

    def triples_from(self, head: str) -> list[Triple]:
        return list(self._by_head.get(head, []))

    def triples_to(self, tail: str) -> list[Triple]:
        return list(self._by_tail.get(tail, []))

    def triples_with_relation(self, relation: str) -> list[Triple]:
        return list(self._by_relation.get(relation, []))

    def attributes_of(self, entity: str) -> list[AttributeTriple]:
        return list(self._attrs_by_entity.get(entity, []))

    def neighbors(self, uid: str) -> set[str]:
        """Entity uids one hop away (either direction)."""
        out = {t.tail for t in self._by_head.get(uid, [])}
        out |= {t.head for t in self._by_tail.get(uid, [])}
        return out

    @property
    def relations(self) -> list[str]:
        return sorted(self._by_relation)

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    @property
    def num_entities(self) -> int:
        return len(self._entities)

    @property
    def num_triples(self) -> int:
        return len(self._triples)

    @property
    def num_attributes(self) -> int:
        return len(self._attributes)

    def describe(self) -> dict[str, int]:
        """Summary statistics used by the experiment harnesses."""
        return {
            "entities": self.num_entities,
            "relations": len(self._by_relation),
            "triples": self.num_triples,
            "attributes": self.num_attributes,
        }
