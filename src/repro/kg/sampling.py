"""Negative sampling for the knowledge-embedding objective (Sec. IV-D).

The paper's policy: fix the head entity and randomly sample a tail, and vice
versa; sampled corruptions must not collide with observed triples (filtered
sampling keeps the training signal clean).
"""

from __future__ import annotations

import numpy as np

from repro.kg.graph import TeleKG, Triple


class NegativeSampler:
    """Generates corrupted triples for margin-based KE training."""

    def __init__(self, kg: TeleKG, rng: np.random.Generator,
                 filtered: bool = True):
        self.kg = kg
        self.rng = rng
        self.filtered = filtered
        self._entity_uids = [e.uid for e in kg.entities()]
        self._known = {(t.head, t.relation, t.tail) for t in kg.triples}

    def corrupt(self, triple: Triple, num_samples: int,
                max_attempts: int = 50) -> list[Triple]:
        """Return ``num_samples`` corruptions of ``triple``.

        Head and tail corruption alternate; with ``filtered`` set, corruptions
        that reproduce a known fact are rejected (bounded retries keep this
        total even for dense graphs).
        """
        negatives: list[Triple] = []
        for i in range(num_samples):
            corrupt_head = (i % 2 == 0)
            for _ in range(max_attempts):
                replacement = self._entity_uids[
                    int(self.rng.integers(len(self._entity_uids)))]
                if corrupt_head:
                    candidate = Triple(replacement, triple.relation, triple.tail)
                else:
                    candidate = Triple(triple.head, triple.relation, replacement)
                key = (candidate.head, candidate.relation, candidate.tail)
                if candidate.head == candidate.tail:
                    continue
                if self.filtered and key in self._known:
                    continue
                negatives.append(candidate)
                break
            else:
                # Dense corner case: accept an unfiltered corruption.
                negatives.append(Triple(triple.head, triple.relation,
                                        triple.tail))
        return negatives

    def batch(self, triples: list[Triple],
              num_samples: int) -> list[list[Triple]]:
        """Corrupt every triple in a batch."""
        return [self.corrupt(t, num_samples) for t in triples]
