"""TelecomWorld: one-call construction of the full synthetic universe."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.world.causality import CausalGraph
from repro.world.episodes import EpisodeSimulator, FaultEpisode
from repro.world.ontology import TeleOntology
from repro.world.topology import NetworkInstance, generate_topology


@dataclass
class TelecomWorld:
    """Bundle of ontology, causal ground truth, and a deployed topology.

    Everything downstream — Tele-Corpus, Tele-KG, machine logs, and the three
    task datasets — is generated from one instance of this class so they stay
    mutually consistent.
    """

    ontology: TeleOntology
    causal_graph: CausalGraph
    topology: NetworkInstance
    seed: int

    @classmethod
    def generate(cls, seed: int = 0, alarms_per_theme: int = 4,
                 kpis_per_theme: int = 3, topology_nodes: int = 14,
                 cross_theme_edges: int = 6) -> "TelecomWorld":
        """Deterministically generate a world from ``seed``."""
        rng = np.random.default_rng(seed)
        ontology = TeleOntology.generate(rng, alarms_per_theme=alarms_per_theme,
                                         kpis_per_theme=kpis_per_theme)
        causal_graph = CausalGraph.generate(ontology, rng,
                                            cross_theme_edges=cross_theme_edges)
        topology = generate_topology(rng, num_nodes=topology_nodes)
        return cls(ontology=ontology, causal_graph=causal_graph,
                   topology=topology, seed=seed)

    def simulator(self, seed_offset: int = 1) -> EpisodeSimulator:
        """Create a fresh episode simulator (independent RNG stream)."""
        rng = np.random.default_rng(self.seed + 1000 + seed_offset)
        return EpisodeSimulator(self.ontology, self.causal_graph,
                                self.topology, rng)

    def simulate_episodes(self, count: int, seed_offset: int = 1,
                          background_kpi_count: int = 5,
                          noise_alarm_count: int = 0) -> list[FaultEpisode]:
        """Convenience wrapper: simulate ``count`` fault episodes."""
        return self.simulator(seed_offset).simulate_many(
            count, background_kpi_count=background_kpi_count,
            noise_alarm_count=noise_alarm_count)
