"""Telecom ontology: NE types, interfaces, and generated alarm/KPI catalogs.

Event names are composed from *theme* phrase pools (registration, session,
handover, ...).  Events that belong to the same theme share surface words, so
a language model pre-trained on documents about these events can infer that
they are related — mirroring how real alarm names ("NF destination service is
unreachable") textually overlap with the KPIs they disturb ("number of initial
registration requests increases abnormally").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: 5G core / EPC network-element types with the interfaces they terminate.
NE_TYPES: dict[str, tuple[str, ...]] = {
    "AMF": ("N1", "N2", "N11", "N14"),
    "SMF": ("N4", "N7", "N10", "N11"),
    "UPF": ("N3", "N4", "N6", "N9"),
    "UDM": ("N8", "N10", "N13"),
    "PCF": ("N7", "N15"),
    "NRF": ("N27",),
    "AUSF": ("N12", "N13"),
    "NSSF": ("N22",),
    "MME": ("S1-MME", "S6a", "S11"),
    "SGW": ("S1-U", "S5", "S11"),
    "PGW": ("S5", "S8", "SGi", "Gx"),
    "HSS": ("S6a", "Cx"),
    "gNodeB": ("N2", "N3", "Xn"),
    "eNodeB": ("S1-MME", "S1-U", "X2"),
    "CSCF": ("Cx", "Mw"),
    "DNS": ("SGi",),
}

#: All interface names, flattened.
INTERFACES: tuple[str, ...] = tuple(sorted({
    iface for ifaces in NE_TYPES.values() for iface in ifaces}))

VENDORS: tuple[str, ...] = ("HuaXin", "NordTel", "Ericsound", "ZTEE", "Nokira")

LOCATIONS: tuple[str, ...] = (
    "Xian-DC1", "Hangzhou-DC2", "Shenzhen-POP3", "Beijing-Core1",
    "Shanghai-Edge4", "Chengdu-DC5", "Guangzhou-POP6", "Nanjing-Core7",
)

#: Fault themes.  Each theme maps to (subject phrases, alarm faults, kpi metrics).
THEMES: dict[str, dict[str, tuple[str, ...]]] = {
    "registration": {
        "subjects": ("initial registration procedure", "registration request channel",
                     "subscriber registration service", "registration update flow"),
        "faults": ("is unreachable", "rejects incoming requests",
                   "times out repeatedly", "fails authentication check"),
        "metrics": ("number of initial registration requests",
                    "registration success rate",
                    "registration retry count",
                    "average registration latency"),
    },
    "session": {
        "subjects": ("PDU session establishment service", "session management function",
                     "bearer session context", "session anchor path"),
        "faults": ("is interrupted unexpectedly", "exceeds resource quota",
                   "drops active contexts", "rejects establishment messages"),
        "metrics": ("5G SA session establishment success rate",
                    "number of PDU session establishment reject messages",
                    "active session count",
                    "session setup delay"),
    },
    "handover": {
        "subjects": ("inter-cell handover procedure", "Xn handover coordination",
                     "handover preparation channel", "target cell admission"),
        "faults": ("fails on target side", "is aborted by source",
                   "loses coordination messages", "exceeds admission threshold"),
        "metrics": ("handover success rate", "number of handover failures",
                    "handover interruption time", "ping-pong handover count"),
    },
    "paging": {
        "subjects": ("paging broadcast service", "paging occasion scheduler",
                     "downlink paging channel", "paging retransmission logic"),
        "faults": ("discards paging records", "is overloaded",
                   "misses paging occasions", "duplicates paging messages"),
        "metrics": ("paging success rate", "number of discarded paging messages",
                    "paging response delay", "paging load ratio"),
    },
    "routing": {
        "subjects": ("NF destination service", "signalling route set",
                     "service discovery endpoint", "route selection policy"),
        "faults": ("is unreachable", "returns stale endpoints",
                   "flaps between peers", "advertises invalid prefixes"),
        "metrics": ("route lookup failure count", "signalling route availability",
                    "NF discovery latency", "number of misrouted messages"),
    },
    "link": {
        "subjects": ("SCTP association link", "optical transport link",
                     "inter-office trunk group", "control plane link set"),
        "faults": ("is down", "experiences severe jitter",
                   "reports CRC errors", "oscillates rapidly"),
        "metrics": ("link availability ratio", "number of link flaps",
                    "packet loss rate on link", "link utilisation peak"),
    },
    "license": {
        "subjects": ("capacity license pool", "feature license server",
                     "license heartbeat channel", "license usage monitor"),
        "faults": ("has expired", "rejects activation requests",
                   "loses server connection", "reports usage overflow"),
        "metrics": ("license utilisation percentage", "number of license denials",
                    "remaining license capacity", "license check latency"),
    },
    "hardware": {
        "subjects": ("main processing board", "fan tray assembly",
                     "power supply module", "line card slot"),
        "faults": ("reports overtemperature", "has failed self-test",
                   "is not seated correctly", "suffers voltage drop"),
        "metrics": ("board temperature reading", "number of hardware resets",
                    "fan rotation speed", "power draw level"),
    },
    "synchronisation": {
        "subjects": ("clock synchronisation source", "PTP grandmaster session",
                     "frequency reference input", "time alignment service"),
        "faults": ("is lost", "drifts beyond tolerance",
                   "switches to holdover", "reports phase jumps"),
        "metrics": ("clock drift magnitude", "number of sync source switches",
                    "holdover duration", "phase error measurement"),
    },
    "configuration": {
        "subjects": ("MML configuration channel", "parameter audit service",
                     "network slice template", "neighbour relation table"),
        "faults": ("contains inconsistent entries", "fails validation",
                   "was rolled back unexpectedly", "is locked by another session"),
        "metrics": ("number of configuration conflicts", "audit failure count",
                    "rollback frequency", "pending change backlog"),
    },
    "security": {
        "subjects": ("subscriber authentication vector", "IPsec tunnel endpoint",
                     "certificate validation service", "integrity protection layer"),
        "faults": ("rejects legitimate requests", "has expired credentials",
                   "detects replay attempts", "fails key negotiation"),
        "metrics": ("authentication failure count", "number of rejected tunnels",
                    "certificate expiry backlog", "integrity check latency"),
    },
    "charging": {
        "subjects": ("online charging gateway", "usage record collector",
                     "credit control session", "billing mediation stream"),
        "faults": ("drops charging events", "is overloaded by records",
                   "times out on quota requests", "duplicates usage records"),
        "metrics": ("number of lost charging records", "charging latency",
                    "quota request failure rate", "mediation queue depth"),
    },
    "roaming": {
        "subjects": ("inbound roaming gateway", "inter-operator signalling link",
                     "visited network selection logic", "roaming steering policy"),
        "faults": ("misroutes subscriber traffic", "loses partner connectivity",
                   "applies stale agreements", "rejects inbound registrations"),
        "metrics": ("roaming registration success rate", "number of misrouted roamers",
                    "partner link availability", "steering override count"),
    },
    "slicing": {
        "subjects": ("network slice orchestrator", "slice admission controller",
                     "slice isolation boundary", "slice resource scheduler"),
        "faults": ("exceeds isolation budget", "starves low-priority slices",
                   "fails slice instantiation", "leaks traffic between slices"),
        "metrics": ("slice instantiation success rate", "number of slice SLA breaches",
                    "inter-slice interference level", "slice resource utilisation"),
    },
}

SEVERITIES: tuple[str, ...] = ("critical", "major", "minor", "warning")


@dataclass(frozen=True)
class NetworkElementType:
    """A type of network element (e.g. SMF) with its interfaces."""

    name: str
    interfaces: tuple[str, ...]


@dataclass(frozen=True)
class Alarm:
    """An alarm definition in the catalog.

    ``uid`` is the stable identifier (e.g. ``ALM-10007``); ``name`` is the
    human surface used by documents, prompts, and the KG.
    """

    uid: str
    name: str
    theme: str
    ne_type: str
    severity: str
    interface: str

    @property
    def kind(self) -> str:
        return "alarm"


@dataclass(frozen=True)
class Kpi:
    """A KPI definition with the normal operating range of its value."""

    uid: str
    name: str
    theme: str
    ne_type: str
    unit: str
    normal_low: float
    normal_high: float
    #: direction the value moves when the KPI is disturbed ("up" or "down")
    anomaly_direction: str

    @property
    def kind(self) -> str:
        return "kpi"


UNITS: tuple[str, ...] = ("percent", "count", "milliseconds", "ratio")


@dataclass
class TeleOntology:
    """Complete generated catalog of NE types, alarms, and KPIs."""

    ne_types: dict[str, NetworkElementType]
    alarms: list[Alarm]
    kpis: list[Kpi]

    @property
    def events(self) -> list:
        """All events (alarms then KPIs) — the node set of the causal graph."""
        return list(self.alarms) + list(self.kpis)

    def event_by_uid(self, uid: str):
        for event in self.events:
            if event.uid == uid:
                return event
        raise KeyError(uid)

    @classmethod
    def generate(cls, rng: np.random.Generator, alarms_per_theme: int = 4,
                 kpis_per_theme: int = 3) -> "TeleOntology":
        """Generate an alarm/KPI catalog across all themes.

        Within a theme, alarm and KPI names draw from the same phrase pools so
        surface text correlates with causal structure.
        """
        ne_names = list(NE_TYPES)
        alarms: list[Alarm] = []
        kpis: list[Kpi] = []
        alarm_seq = 10001
        kpi_seq = 19001
        for theme, pools in THEMES.items():
            subjects = pools["subjects"]
            faults = pools["faults"]
            metrics = pools["metrics"]
            for i in range(alarms_per_theme):
                subject = subjects[i % len(subjects)]
                fault = faults[(i // len(subjects) + i) % len(faults)]
                ne_type = ne_names[int(rng.integers(len(ne_names)))]
                interface = NE_TYPES[ne_type][int(rng.integers(len(NE_TYPES[ne_type])))]
                alarms.append(Alarm(
                    uid=f"ALM-{alarm_seq}",
                    name=f"The {subject} {fault}",
                    theme=theme,
                    ne_type=ne_type,
                    severity=SEVERITIES[int(rng.integers(len(SEVERITIES)))],
                    interface=interface,
                ))
                alarm_seq += 1
            for i in range(kpis_per_theme):
                metric = metrics[i % len(metrics)]
                ne_type = ne_names[int(rng.integers(len(ne_names)))]
                direction = "up" if rng.random() < 0.5 else "down"
                low = float(rng.uniform(10, 40))
                high = low + float(rng.uniform(20, 50))
                kpis.append(Kpi(
                    uid=f"KPI-{kpi_seq}",
                    name=f"The {metric}",
                    theme=theme,
                    ne_type=ne_type,
                    unit=UNITS[int(rng.integers(len(UNITS)))],
                    normal_low=low,
                    normal_high=high,
                    anomaly_direction=direction,
                ))
                kpi_seq += 1
        ne_types = {name: NetworkElementType(name, ifaces)
                    for name, ifaces in NE_TYPES.items()}
        return cls(ne_types=ne_types, alarms=alarms, kpis=kpis)
