"""Fault-episode simulator: the source of all machine log data.

Each episode injects one root-cause alarm on an NE instance and propagates it
through the ground-truth causal graph.  The emitted
:class:`LogRecord` stream is what the paper calls machine (log) data
(Sec. II-A1): abnormal events (alarms), disturbed KPI measurements, plus
cyclical *normal* KPI readings that dominate real logs.  Episodes also retain
their generation ground truth (root cause, fired trigger pairs, propagation
chain) so downstream task datasets (RCA, EAP, FCT) can be labelled without
expert annotation — the labels play the role of the paper's expert-validated
fault cases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.world.causality import CausalGraph
from repro.world.ontology import Alarm, Kpi, TeleOntology
from repro.world.topology import NetworkInstance


@dataclass(frozen=True)
class LogRecord:
    """One machine log line."""

    timestamp: float
    kind: str          # "alarm" | "kpi"
    event_uid: str
    node: str          # NE instance the record was raised on
    tag: str           # event surface name (the "tag name" for numerics)
    value: float | None  # KPI value; None for alarms
    severity: str | None = None
    interface: str | None = None


@dataclass
class FaultEpisode:
    """A simulated fault with full ground truth."""

    episode_id: int
    root_uid: str
    root_node: str
    records: list[LogRecord]
    #: trigger pairs that actually fired: (source uid, target uid)
    fired_edges: list[tuple[str, str]]
    #: alarm propagation chain in firing order (uids), starting at the root
    chain: list[str]

    @property
    def alarm_records(self) -> list[LogRecord]:
        return [r for r in self.records if r.kind == "alarm"]

    @property
    def kpi_records(self) -> list[LogRecord]:
        return [r for r in self.records if r.kind == "kpi"]

    def occurrence_time(self, uid: str) -> float | None:
        """First time an event uid appears in this episode's records."""
        for record in self.records:
            if record.event_uid == uid:
                return record.timestamp
        return None


class EpisodeSimulator:
    """Generates fault episodes on a topology from the causal ground truth."""

    def __init__(self, ontology: TeleOntology, causal_graph: CausalGraph,
                 topology: NetworkInstance, rng: np.random.Generator):
        self.ontology = ontology
        self.causal_graph = causal_graph
        self.topology = topology
        self.rng = rng
        self._events = {e.uid: e for e in ontology.events}

    # ------------------------------------------------------------------
    def _place_event(self, event, parent_node: str | None) -> str:
        """Choose the NE instance an event occurs on.

        Prefers a neighbour of the parent's node with the right NE type, so
        fault propagation follows the topology (the basis of the EAP/RCA
        topological features).
        """
        candidates = self.topology.nodes_of_type(event.ne_type)
        if parent_node is not None:
            neighbours = set(self.topology.neighbors(parent_node)) | {parent_node}
            local = [n for n in candidates if n in neighbours]
            if local:
                return local[int(self.rng.integers(len(local)))]
        if candidates:
            return candidates[int(self.rng.integers(len(candidates)))]
        if parent_node is not None:
            return parent_node
        nodes = self.topology.nodes
        return nodes[int(self.rng.integers(len(nodes)))]

    def _kpi_value(self, kpi: Kpi, anomalous: bool) -> float:
        """Sample a KPI reading, outside the normal range when anomalous."""
        span = kpi.normal_high - kpi.normal_low
        if not anomalous:
            return float(self.rng.uniform(kpi.normal_low, kpi.normal_high))
        magnitude = float(self.rng.uniform(0.3, 1.5)) * span
        if kpi.anomaly_direction == "up":
            return kpi.normal_high + magnitude
        return max(kpi.normal_low - magnitude, 0.0)

    def _alarm_record(self, alarm: Alarm, node: str, timestamp: float) -> LogRecord:
        return LogRecord(timestamp=timestamp, kind="alarm", event_uid=alarm.uid,
                         node=node, tag=alarm.name, value=None,
                         severity=alarm.severity, interface=alarm.interface)

    def _kpi_record(self, kpi: Kpi, node: str, timestamp: float,
                    anomalous: bool) -> LogRecord:
        return LogRecord(timestamp=timestamp, kind="kpi", event_uid=kpi.uid,
                         node=node, tag=kpi.name,
                         value=self._kpi_value(kpi, anomalous))

    # ------------------------------------------------------------------
    def simulate(self, episode_id: int, root_uid: str | None = None,
                 start_time: float = 0.0,
                 background_kpi_count: int = 5,
                 noise_alarm_count: int = 0) -> FaultEpisode:
        """Run one fault episode.

        ``root_uid`` picks the injected root alarm (random root of the causal
        DAG by default).  ``background_kpi_count`` normal KPI readings are
        interleaved to mimic the dominance of normal indicators in real logs;
        ``noise_alarm_count`` unrelated false alarms are raised on random
        nodes (real states contain observation noise — Sec. V-B3 notes that
        features describe *all* abnormal events in the time slot).
        """
        # Any alarm with outgoing trigger edges can be injected as the root
        # cause — real fault episodes do not only start at the global sources
        # of the trigger knowledge.
        roots = sorted({e.source for e in self.causal_graph.edges
                        if self._events[e.source].kind == "alarm"})
        if not roots:
            raise RuntimeError("causal graph has no alarm roots")
        if root_uid is None:
            root_uid = roots[int(self.rng.integers(len(roots)))]
        root = self._events[root_uid]
        if root.kind != "alarm":
            raise ValueError(f"root {root_uid} is not an alarm")

        records: list[LogRecord] = []
        fired: list[tuple[str, str]] = []
        chain: list[str] = [root_uid]
        root_node = self._place_event(root, None)
        records.append(self._alarm_record(root, root_node, start_time))

        # BFS propagation with per-edge probability and exponential delays.
        frontier: list[tuple[str, str, float]] = [(root_uid, root_node, start_time)]
        activated: set[str] = {root_uid}
        while frontier:
            uid, node, t = frontier.pop(0)
            for edge in self.causal_graph.successors(uid):
                if edge.target in activated:
                    continue
                if self.rng.random() > edge.probability:
                    continue
                target = self._events[edge.target]
                delay = float(self.rng.exponential(edge.delay))
                t_target = t + max(delay, 0.5)
                target_node = self._place_event(target, node)
                fired.append((uid, edge.target))
                activated.add(edge.target)
                if target.kind == "alarm":
                    records.append(self._alarm_record(target, target_node, t_target))
                    chain.append(edge.target)
                    frontier.append((edge.target, target_node, t_target))
                else:
                    records.append(self._kpi_record(target, target_node,
                                                    t_target, anomalous=True))

        # Unrelated false alarms (observation noise in the state).
        alarms = self.ontology.alarms
        for _ in range(noise_alarm_count):
            alarm = alarms[int(self.rng.integers(len(alarms)))]
            if alarm.uid in activated:
                continue
            node = self._place_event(alarm, None)
            timestamp = start_time + float(self.rng.uniform(0, 300))
            records.append(self._alarm_record(alarm, node, timestamp))

        # Background normal KPI readings.
        kpis = self.ontology.kpis
        for _ in range(background_kpi_count):
            kpi = kpis[int(self.rng.integers(len(kpis)))]
            if kpi.uid in activated:
                continue
            node = self._place_event(kpi, None)
            timestamp = start_time + float(self.rng.uniform(0, 300))
            records.append(self._kpi_record(kpi, node, timestamp, anomalous=False))

        records.sort(key=lambda r: r.timestamp)
        return FaultEpisode(episode_id=episode_id, root_uid=root_uid,
                            root_node=root_node, records=records,
                            fired_edges=fired, chain=chain)

    def simulate_many(self, count: int, background_kpi_count: int = 5,
                      noise_alarm_count: int = 0) -> list[FaultEpisode]:
        """Simulate ``count`` episodes with staggered start times."""
        episodes = []
        for i in range(count):
            episodes.append(self.simulate(
                episode_id=i, start_time=i * 3600.0,
                background_kpi_count=background_kpi_count,
                noise_alarm_count=noise_alarm_count))
        return episodes
