"""Ground-truth causal graph over catalog events.

The simulator, the Tele-KG trigger relations, the product-document fault
cases, and the downstream task labels are all views of this one graph — which
is what makes domain pre-training transfer to the tasks.

Structure: within each theme the alarms form a small DAG (root alarms trigger
secondary alarms) and alarms disturb the theme's KPIs; a few low-probability
cross-theme edges model faults that spill over subsystems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.world.ontology import Alarm, Kpi, TeleOntology


@dataclass(frozen=True)
class CausalEdge:
    """Directed edge ``source triggers target`` with propagation probability."""

    source: str  # event uid
    target: str  # event uid
    probability: float
    #: expected propagation delay in seconds (exponential scale)
    delay: float


@dataclass
class CausalGraph:
    """The ground-truth trigger structure of the synthetic world."""

    edges: list[CausalEdge]
    _by_source: dict[str, list[CausalEdge]] = field(default_factory=dict, repr=False)

    def __post_init__(self):
        self._by_source = {}
        for edge in self.edges:
            self._by_source.setdefault(edge.source, []).append(edge)

    def successors(self, uid: str) -> list[CausalEdge]:
        """Outgoing trigger edges of an event."""
        return self._by_source.get(uid, [])

    def edge_set(self) -> set[tuple[str, str]]:
        return {(e.source, e.target) for e in self.edges}

    def has_edge(self, source: str, target: str) -> bool:
        return (source, target) in self.edge_set()

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def roots(self) -> list[str]:
        """Events with outgoing but no incoming edges — root-cause candidates."""
        targets = {e.target for e in self.edges}
        sources = {e.source for e in self.edges}
        return sorted(sources - targets)

    def is_acyclic(self) -> bool:
        """Kahn's algorithm check; the generator must always produce a DAG."""
        nodes = {e.source for e in self.edges} | {e.target for e in self.edges}
        indegree = {n: 0 for n in nodes}
        for edge in self.edges:
            indegree[edge.target] += 1
        queue = [n for n, d in indegree.items() if d == 0]
        seen = 0
        while queue:
            node = queue.pop()
            seen += 1
            for edge in self.successors(node):
                indegree[edge.target] -= 1
                if indegree[edge.target] == 0:
                    queue.append(edge.target)
        return seen == len(nodes)

    @classmethod
    def generate(cls, ontology: TeleOntology, rng: np.random.Generator,
                 cross_theme_edges: int = 6) -> "CausalGraph":
        """Build the theme-structured trigger DAG.

        Within a theme, alarms are ordered and each alarm may trigger later
        alarms (probability drawn in [0.5, 0.95]) and each alarm disturbs a
        subset of the theme's KPIs.  ``cross_theme_edges`` random alarm→alarm
        edges connect distinct themes, always oriented from the lower theme
        index to the higher so acyclicity is preserved.
        """
        theme_names = sorted({a.theme for a in ontology.alarms})
        theme_alarms: dict[str, list[Alarm]] = {t: [] for t in theme_names}
        theme_kpis: dict[str, list[Kpi]] = {t: [] for t in theme_names}
        for alarm in ontology.alarms:
            theme_alarms[alarm.theme].append(alarm)
        for kpi in ontology.kpis:
            theme_kpis.setdefault(kpi.theme, []).append(kpi)

        edges: list[CausalEdge] = []
        for theme in theme_names:
            alarms = theme_alarms[theme]
            kpis = theme_kpis.get(theme, [])
            # Alarm chain: i -> j for j > i, denser for adjacent ranks.
            for i, src in enumerate(alarms):
                for j in range(i + 1, len(alarms)):
                    gap = j - i
                    if rng.random() < (0.8 if gap == 1 else 0.25):
                        edges.append(CausalEdge(
                            source=src.uid, target=alarms[j].uid,
                            probability=float(rng.uniform(0.5, 0.95)),
                            delay=float(rng.uniform(5, 60))))
                # Alarms disturb theme KPIs.
                for kpi in kpis:
                    if rng.random() < 0.6:
                        edges.append(CausalEdge(
                            source=src.uid, target=kpi.uid,
                            probability=float(rng.uniform(0.6, 0.95)),
                            delay=float(rng.uniform(1, 30))))

        # Cross-theme spill-over edges, lower theme index -> higher.
        for _ in range(cross_theme_edges):
            ti, tj = sorted(rng.choice(len(theme_names), size=2, replace=False))
            src_pool = theme_alarms[theme_names[ti]]
            dst_pool = theme_alarms[theme_names[tj]]
            if not src_pool or not dst_pool:
                continue
            src = src_pool[int(rng.integers(len(src_pool)))]
            dst = dst_pool[int(rng.integers(len(dst_pool)))]
            if src.uid == dst.uid:
                continue
            edges.append(CausalEdge(
                source=src.uid, target=dst.uid,
                probability=float(rng.uniform(0.3, 0.6)),
                delay=float(rng.uniform(20, 120))))

        # De-duplicate keeping the first occurrence.
        seen: set[tuple[str, str]] = set()
        unique: list[CausalEdge] = []
        for edge in edges:
            key = (edge.source, edge.target)
            if key not in seen:
                seen.add(key)
                unique.append(edge)
        return cls(edges=unique)
