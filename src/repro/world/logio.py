"""Machine-log persistence: JSONL export/import of fault episodes.

Real platforms ship machine log data as files (the paper's MDAF packages);
this module round-trips :class:`~repro.world.episodes.FaultEpisode` streams
through one-JSON-object-per-line files so datasets can be regenerated once
and consumed by many experiments, or inspected with standard log tooling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.world.episodes import FaultEpisode, LogRecord

_FORMAT = "repro-fault-episodes-v1"


def _record_to_dict(record: LogRecord) -> dict:
    return {
        "timestamp": record.timestamp,
        "kind": record.kind,
        "event_uid": record.event_uid,
        "node": record.node,
        "tag": record.tag,
        "value": record.value,
        "severity": record.severity,
        "interface": record.interface,
    }


def export_episodes(episodes: Iterable[FaultEpisode],
                    path: str | Path) -> Path:
    """Write episodes as JSONL: a header line, then one line per episode."""
    path = Path(path)
    lines = [json.dumps({"format": _FORMAT})]
    for episode in episodes:
        lines.append(json.dumps({
            "episode_id": episode.episode_id,
            "root_uid": episode.root_uid,
            "root_node": episode.root_node,
            "fired_edges": [list(pair) for pair in episode.fired_edges],
            "chain": episode.chain,
            "records": [_record_to_dict(r) for r in episode.records],
        }, ensure_ascii=False))
    path.write_text("\n".join(lines) + "\n")
    return path


def import_episodes(path: str | Path) -> list[FaultEpisode]:
    """Read a file produced by :func:`export_episodes`."""
    lines = Path(path).read_text().strip().splitlines()
    if not lines:
        raise ValueError("empty episode file")
    header = json.loads(lines[0])
    if header.get("format") != _FORMAT:
        raise ValueError(f"unsupported episode file format: "
                         f"{header.get('format')!r}")
    episodes: list[FaultEpisode] = []
    for line in lines[1:]:
        payload = json.loads(line)
        records = [LogRecord(**record) for record in payload["records"]]
        episodes.append(FaultEpisode(
            episode_id=payload["episode_id"],
            root_uid=payload["root_uid"],
            root_node=payload["root_node"],
            records=records,
            fired_edges=[tuple(pair) for pair in payload["fired_edges"]],
            chain=list(payload["chain"])))
    return episodes
