"""Signaling-flow simulation — the paper's declared future work.

Sec. IV-B: "Other data sources like signaling flow and configuration data are
temporarily not considered in this paper. We leave it as the future work."
This module implements that extension: standard 3GPP-style procedures as
ordered message sequences between NE types, and a simulator that emits
per-episode signaling flows — completing successfully in healthy episodes and
aborting mid-procedure when the episode's fault theme touches the procedure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.world.episodes import FaultEpisode
from repro.world.ontology import TeleOntology

#: Procedure catalog: name -> (related fault themes, message steps).
#: Each step is (message, source NE type, destination NE type, interface).
PROCEDURES: dict[str, dict] = {
    "initial registration": {
        "themes": ("registration",),
        "steps": (
            ("Registration Request", "gNodeB", "AMF", "N2"),
            ("Authentication Request", "AMF", "AUSF", "N12"),
            ("Authentication Response", "AUSF", "AMF", "N12"),
            ("Registration Accept", "AMF", "gNodeB", "N2"),
        ),
    },
    "pdu session establishment": {
        "themes": ("session",),
        "steps": (
            ("PDU Session Establishment Request", "AMF", "SMF", "N11"),
            ("Session Context Create", "SMF", "UPF", "N4"),
            ("Session Context Response", "UPF", "SMF", "N4"),
            ("PDU Session Establishment Accept", "SMF", "AMF", "N11"),
        ),
    },
    "xn handover": {
        "themes": ("handover",),
        "steps": (
            ("Handover Request", "gNodeB", "gNodeB", "Xn"),
            ("Handover Request Acknowledge", "gNodeB", "gNodeB", "Xn"),
            ("Path Switch Request", "gNodeB", "AMF", "N2"),
            ("Path Switch Request Acknowledge", "AMF", "gNodeB", "N2"),
        ),
    },
    "paging": {
        "themes": ("paging",),
        "steps": (
            ("Paging", "AMF", "gNodeB", "N2"),
            ("Service Request", "gNodeB", "AMF", "N2"),
            ("Service Accept", "AMF", "gNodeB", "N2"),
        ),
    },
    "nf discovery": {
        "themes": ("routing",),
        "steps": (
            ("NF Discovery Request", "SMF", "NRF", "N27"),
            ("NF Discovery Response", "NRF", "SMF", "N27"),
        ),
    },
}


@dataclass(frozen=True)
class SignalingRecord:
    """One signaling message observation."""

    timestamp: float
    procedure: str
    message: str
    source: str       # NE type
    destination: str  # NE type
    interface: str
    status: str       # "ok" | "timeout" | "reject"

    def render(self) -> str:
        """Human surface used by the prompt template."""
        return (f"{self.message} from {self.source} to {self.destination} "
                f"over {self.interface} {self.status}")


@dataclass
class SignalingFlow:
    """A procedure instance: completed or aborted message sequence."""

    procedure: str
    records: list[SignalingRecord]
    completed: bool

    def __len__(self) -> int:
        return len(self.records)


class SignalingSimulator:
    """Emits signaling flows consistent with fault episodes.

    Healthy procedures complete; when the episode's fault themes intersect a
    procedure's themes, the flow aborts at a random step with a timeout or
    reject — planting the correlation between signaling anomalies and fault
    themes that a pre-trained model can pick up.
    """

    def __init__(self, ontology: TeleOntology, rng: np.random.Generator):
        self.ontology = ontology
        self.rng = rng
        self._themes = {e.uid: e.theme for e in ontology.events}

    def episode_themes(self, episode: FaultEpisode) -> set[str]:
        """Fault themes active in an episode (root + propagated events)."""
        uids = {episode.root_uid}
        uids.update(u for pair in episode.fired_edges for u in pair)
        return {self._themes[u] for u in uids if u in self._themes}

    def simulate_flow(self, procedure: str, start_time: float,
                      disturbed: bool) -> SignalingFlow:
        """One procedure instance; aborts mid-sequence when disturbed."""
        if procedure not in PROCEDURES:
            raise KeyError(f"unknown procedure: {procedure}")
        steps = PROCEDURES[procedure]["steps"]
        abort_at = len(steps)
        failure = "ok"
        if disturbed:
            abort_at = int(self.rng.integers(1, len(steps) + 1))
            failure = "timeout" if self.rng.random() < 0.5 else "reject"
        records: list[SignalingRecord] = []
        t = start_time
        for index, (message, src, dst, iface) in enumerate(steps):
            if index >= abort_at:
                break
            t += float(self.rng.exponential(0.05))
            status = failure if index == abort_at - 1 and disturbed else "ok"
            records.append(SignalingRecord(
                timestamp=t, procedure=procedure, message=message,
                source=src, destination=dst, interface=iface, status=status))
        return SignalingFlow(procedure=procedure, records=records,
                             completed=abort_at == len(steps) and not disturbed)

    def simulate_episode(self, episode: FaultEpisode,
                         flows_per_procedure: int = 2) -> list[SignalingFlow]:
        """Signaling traffic during one episode."""
        themes = self.episode_themes(episode)
        start = min(r.timestamp for r in episode.records)
        flows: list[SignalingFlow] = []
        for procedure, spec in PROCEDURES.items():
            related = bool(themes & set(spec["themes"]))
            for i in range(flows_per_procedure):
                disturbed = related and self.rng.random() < 0.8
                flows.append(self.simulate_flow(
                    procedure, start + i * 10.0, disturbed))
        return flows
