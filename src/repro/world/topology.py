"""Network topology instances: typed NE nodes with connections."""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.world.ontology import LOCATIONS, NE_TYPES, VENDORS


@dataclass
class NetworkInstance:
    """One deployed network: NE instances and the links between them.

    ``graph`` is an undirected :class:`networkx.Graph`; node attributes are
    ``ne_type``, ``vendor``, ``location``; edge attributes carry ``interface``.
    """

    graph: nx.Graph
    name: str = "network"

    @property
    def nodes(self) -> list[str]:
        return list(self.graph.nodes)

    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    def ne_type(self, node: str) -> str:
        return self.graph.nodes[node]["ne_type"]

    def nodes_of_type(self, ne_type: str) -> list[str]:
        return [n for n in self.graph.nodes
                if self.graph.nodes[n]["ne_type"] == ne_type]

    def neighbors(self, node: str) -> list[str]:
        return list(self.graph.neighbors(node))

    def adjacency_matrix(self, order: list[str] | None = None) -> np.ndarray:
        """Dense symmetric adjacency over ``order`` (defaults to node order)."""
        order = order or self.nodes
        index = {n: i for i, n in enumerate(order)}
        mat = np.zeros((len(order), len(order)))
        for u, v in self.graph.edges:
            if u in index and v in index:
                mat[index[u], index[v]] = 1.0
                mat[index[v], index[u]] = 1.0
        return mat


def _shared_interface(type_a: str, type_b: str) -> str | None:
    shared = set(NE_TYPES[type_a]) & set(NE_TYPES[type_b])
    return sorted(shared)[0] if shared else None


def generate_topology(rng: np.random.Generator, num_nodes: int = 12,
                      extra_link_probability: float = 0.25,
                      name: str = "network") -> NetworkInstance:
    """Generate a connected NE topology.

    NE instances get types sampled from the catalog; a random spanning tree
    guarantees connectivity, then extra links are added preferentially between
    NE types that share an interface (as real networks do).
    """
    if num_nodes < 2:
        raise ValueError("topology needs at least 2 nodes")
    type_names = list(NE_TYPES)
    graph = nx.Graph()
    counters: dict[str, int] = {}
    nodes: list[str] = []
    for _ in range(num_nodes):
        ne_type = type_names[int(rng.integers(len(type_names)))]
        counters[ne_type] = counters.get(ne_type, 0) + 1
        node = f"{ne_type}-{counters[ne_type]:02d}"
        graph.add_node(node, ne_type=ne_type,
                       vendor=VENDORS[int(rng.integers(len(VENDORS)))],
                       location=LOCATIONS[int(rng.integers(len(LOCATIONS)))])
        nodes.append(node)

    # Random spanning tree for connectivity.
    shuffled = list(nodes)
    rng.shuffle(shuffled)
    for i in range(1, len(shuffled)):
        j = int(rng.integers(i))
        u, v = shuffled[i], shuffled[j]
        iface = _shared_interface(graph.nodes[u]["ne_type"],
                                  graph.nodes[v]["ne_type"]) or "internal"
        graph.add_edge(u, v, interface=iface)

    # Extra links, biased towards interface-compatible pairs.
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            if graph.has_edge(u, v):
                continue
            iface = _shared_interface(graph.nodes[u]["ne_type"],
                                      graph.nodes[v]["ne_type"])
            p = extra_link_probability if iface else extra_link_probability / 4
            if rng.random() < p:
                graph.add_edge(u, v, interface=iface or "internal")

    return NetworkInstance(graph=graph, name=name)
