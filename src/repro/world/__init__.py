"""Synthetic telecom universe — the stand-in for Huawei's proprietary data.

The paper's corpus, Tele-KG, machine logs, and fault-case labels all come from
a production platform we cannot access (repro band 2).  This package builds a
*self-consistent* synthetic replacement:

* :mod:`repro.world.ontology` — network-element types, interfaces, vendors,
  and generated alarm/KPI catalogs whose surface names carry fault "themes".
* :mod:`repro.world.causality` — a ground-truth directed causal graph over
  events (alarm→alarm, alarm→KPI) organised around those themes.
* :mod:`repro.world.topology` — network instances (typed NE nodes + links).
* :mod:`repro.world.episodes` — a fault-episode simulator that injects a root
  cause and propagates it through the causal graph, emitting timestamped
  alarm/KPI log records (the machine log data of Sec. II-A1).

Because documents, KG triples, logs, and task labels are all derived from the
*same* causal ground truth, domain pre-training on the documents genuinely
helps the downstream tasks — which is the paper's central claim and the
behaviour the substitution must preserve.
"""

from repro.world.ontology import (
    Alarm,
    Kpi,
    NetworkElementType,
    TeleOntology,
    INTERFACES,
    NE_TYPES,
    THEMES,
)
from repro.world.causality import CausalGraph, CausalEdge
from repro.world.topology import NetworkInstance, generate_topology
from repro.world.episodes import EpisodeSimulator, FaultEpisode, LogRecord
from repro.world.signaling import (
    PROCEDURES,
    SignalingFlow,
    SignalingRecord,
    SignalingSimulator,
)
from repro.world.configuration import (
    PARAMETER_CATALOG,
    ConfigRecord,
    ConfigurationGenerator,
)
from repro.world.logio import export_episodes, import_episodes
from repro.world.timeseries import (
    KpiSeries,
    KpiSeriesGenerator,
    detect_anomalies,
    detection_f1,
    rolling_zscore,
)
from repro.world.world import TelecomWorld

__all__ = [
    "Alarm",
    "CausalEdge",
    "CausalGraph",
    "ConfigRecord",
    "ConfigurationGenerator",
    "EpisodeSimulator",
    "FaultEpisode",
    "INTERFACES",
    "Kpi",
    "KpiSeries",
    "KpiSeriesGenerator",
    "LogRecord",
    "NE_TYPES",
    "NetworkElementType",
    "NetworkInstance",
    "PARAMETER_CATALOG",
    "PROCEDURES",
    "SignalingFlow",
    "SignalingRecord",
    "SignalingSimulator",
    "TeleOntology",
    "TelecomWorld",
    "THEMES",
    "detect_anomalies",
    "detection_f1",
    "export_episodes",
    "generate_topology",
    "import_episodes",
    "rolling_zscore",
]
