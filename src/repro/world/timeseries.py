"""Cyclical KPI time-series generation and anomaly scoring.

Sec. II-A1: "The normal indicators are cyclical and persistent in character,
which accounts for the vast majority of all automatically generated machine
data."  This module generates that majority: per-KPI daily-cycle series with
noise, plus fault-window distortions, and a simple rolling z-score detector
that turns raw series back into abnormal-KPI observations (the automatic
counterpart of expert-labelled anomalies).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.world.ontology import Kpi

SECONDS_PER_DAY = 86_400.0


@dataclass
class KpiSeries:
    """A sampled KPI series."""

    kpi_uid: str
    tag: str
    timestamps: np.ndarray  # (T,)
    values: np.ndarray      # (T,)
    #: boolean ground-truth anomaly mask (True inside injected fault windows)
    anomaly_mask: np.ndarray

    def __len__(self) -> int:
        return len(self.timestamps)


class KpiSeriesGenerator:
    """Daily-cycle KPI series with optional fault-window distortion."""

    def __init__(self, rng: np.random.Generator, noise_scale: float = 0.03,
                 cycle_amplitude: float = 0.25):
        self.rng = rng
        self.noise_scale = noise_scale
        self.cycle_amplitude = cycle_amplitude

    def generate(self, kpi: Kpi, start_time: float, duration: float,
                 interval: float = 300.0,
                 fault_windows: list[tuple[float, float]] | None = None
                 ) -> KpiSeries:
        """Sample a series for ``kpi`` over ``[start_time, start_time+duration]``.

        The baseline sits mid-range and oscillates with a daily cycle inside
        the normal band; inside each fault window the value is pushed out of
        the band in the KPI's anomaly direction with a saw-tooth ramp.
        """
        if duration <= 0 or interval <= 0:
            raise ValueError("duration and interval must be positive")
        timestamps = np.arange(start_time, start_time + duration, interval)
        span = kpi.normal_high - kpi.normal_low
        midpoint = (kpi.normal_high + kpi.normal_low) / 2.0
        phase = self.rng.uniform(0, 2 * np.pi)
        cycle = np.sin(2 * np.pi * timestamps / SECONDS_PER_DAY + phase)
        values = midpoint + cycle * (span / 2.0) * self.cycle_amplitude
        values = values + self.rng.normal(0, self.noise_scale * span,
                                          size=len(timestamps))

        anomaly_mask = np.zeros(len(timestamps), dtype=bool)
        for window_start, window_end in fault_windows or []:
            inside = (timestamps >= window_start) & (timestamps <= window_end)
            if not inside.any():
                continue
            anomaly_mask |= inside
            # Saw-tooth ramp up to ~1 normal-band width out of range.
            count = int(inside.sum())
            ramp = np.linspace(0.4, 1.2, count) * span
            if kpi.anomaly_direction == "up":
                values[inside] = kpi.normal_high + ramp
            else:
                values[inside] = np.maximum(kpi.normal_low - ramp, 0.0)
        return KpiSeries(kpi_uid=kpi.uid, tag=kpi.name,
                         timestamps=timestamps, values=values,
                         anomaly_mask=anomaly_mask)


def rolling_zscore(values: np.ndarray, window: int = 12) -> np.ndarray:
    """Rolling z-score of each point against the preceding ``window`` points.

    The first ``window`` points score 0 (insufficient history).
    """
    values = np.asarray(values, dtype=float)
    if window < 2:
        raise ValueError("window must be >= 2")
    scores = np.zeros(len(values))
    for index in range(window, len(values)):
        history = values[index - window:index]
        std = history.std()
        if std < 1e-12:
            continue
        scores[index] = (values[index] - history.mean()) / std
    return scores


def detect_anomalies(series: KpiSeries, window: int = 12,
                     threshold: float = 4.0) -> np.ndarray:
    """Boolean anomaly predictions from the rolling z-score detector."""
    scores = rolling_zscore(series.values, window=window)
    return np.abs(scores) > threshold


def detection_f1(series: KpiSeries, window: int = 12,
                 threshold: float = 4.0) -> float:
    """F1 of the detector against the injected ground truth."""
    predicted = detect_anomalies(series, window=window, threshold=threshold)
    truth = series.anomaly_mask
    true_positive = int((predicted & truth).sum())
    if true_positive == 0:
        return 0.0
    precision = true_positive / predicted.sum()
    recall = true_positive / truth.sum()
    return float(2 * precision * recall / (precision + recall))
