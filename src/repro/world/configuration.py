"""Configuration-data generation — the paper's declared future work.

Companion of :mod:`repro.world.signaling`: per-NE configuration parameter
records (numeric thresholds and enum settings), with fault injection for the
``configuration`` theme (inconsistent or out-of-range entries on the broken
node).  Numeric parameters flow into the ANEnc pipeline like KPI readings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.world.episodes import FaultEpisode
from repro.world.topology import NetworkInstance

#: Parameter catalog: name -> (kind, spec).
#: Numeric spec: (low, high) sane range; enum spec: allowed values.
PARAMETER_CATALOG: dict[str, tuple[str, tuple]] = {
    "max session count": ("numeric", (1000.0, 50000.0)),
    "paging retry limit": ("numeric", (2.0, 8.0)),
    "heartbeat interval seconds": ("numeric", (1.0, 30.0)),
    "cpu overload threshold percent": ("numeric", (60.0, 95.0)),
    "license grace period hours": ("numeric", (1.0, 72.0)),
    "transport mtu bytes": ("numeric", (1200.0, 9000.0)),
    "cipher suite": ("enum", ("aes-128", "aes-256", "snow3g", "zuc")),
    "redundancy mode": ("enum", ("active-standby", "active-active", "none")),
    "sctp bundling": ("enum", ("on", "off")),
}


@dataclass(frozen=True)
class ConfigRecord:
    """One configuration parameter observation on an NE instance."""

    node: str
    parameter: str
    value: object
    kind: str             # "numeric" | "enum"
    consistent: bool      # False when fault-injected

    @property
    def is_numeric(self) -> bool:
        return self.kind == "numeric"


class ConfigurationGenerator:
    """Generates per-node configuration snapshots, with fault injection."""

    def __init__(self, topology: NetworkInstance, rng: np.random.Generator):
        self.topology = topology
        self.rng = rng

    def _baseline_value(self, kind: str, spec: tuple):
        if kind == "numeric":
            low, high = spec
            return float(self.rng.uniform(low, high))
        return spec[int(self.rng.integers(len(spec)))]

    def _corrupt_value(self, kind: str, spec: tuple):
        if kind == "numeric":
            low, high = spec
            span = high - low
            # Out-of-range in either direction.
            if self.rng.random() < 0.5:
                return float(high + self.rng.uniform(0.5, 2.0) * span)
            return float(max(low - self.rng.uniform(0.5, 2.0) * span, 0.0))
        return "invalid-" + str(spec[int(self.rng.integers(len(spec)))])

    def snapshot(self, faulty_nodes: set[str] | None = None,
                 corruption_probability: float = 0.5) -> list[ConfigRecord]:
        """Full configuration of the network.

        Parameters on ``faulty_nodes`` are corrupted with
        ``corruption_probability`` each; all other records stay consistent.
        """
        faulty_nodes = faulty_nodes or set()
        records: list[ConfigRecord] = []
        for node in self.topology.nodes:
            for parameter, (kind, spec) in PARAMETER_CATALOG.items():
                corrupt = (node in faulty_nodes and
                           self.rng.random() < corruption_probability)
                value = (self._corrupt_value(kind, spec) if corrupt
                         else self._baseline_value(kind, spec))
                records.append(ConfigRecord(node=node, parameter=parameter,
                                            value=value, kind=kind,
                                            consistent=not corrupt))
        return records

    def snapshot_for_episode(self, episode: FaultEpisode,
                             corruption_probability: float = 0.5
                             ) -> list[ConfigRecord]:
        """Configuration as collected during an episode's time slot."""
        return self.snapshot(faulty_nodes={episode.root_node},
                             corruption_probability=corruption_probability)
