"""JSON-lines request loop for ``python -m repro serve``.

One request per input line, one JSON response per output line — the
simplest transport that exercises the full serving stack (batching,
persistent store, metrics) and is scriptable from a shell pipe or a
supervisor.  Protocol::

    {"op": "ping"}
    {"op": "embed", "names": ["link failure", ...]}
    {"op": "classify_fault", "alarm": "...", "top_k": 3}
    {"op": "rca", "nodes": [...], "adjacency": [[...]],
     "features": [[...]], "top_k": 3}
    {"op": "eap", "pairs": [{"name_i": ..., "name_j": ...,
     "node_i": ..., "node_j": ..., "time_i": 0.0, "time_j": 1.0}, ...]}
    {"op": "stats"}

Responses always carry ``"ok"``; failures answer ``{"ok": false,
"error": ...}`` on that line and the loop keeps serving — a malformed
request must never take the service down.
"""

from __future__ import annotations

import json
from typing import IO

from repro.serving import metric_names as mn
from repro.serving.service import FaultAnalysisService


def _parse_rca_state(request: dict):
    """Validate and build the RCA inference state from a request dict."""
    import numpy as np

    from repro.tasks.rca.serve import state_for_inference

    nodes = request.get("nodes")
    if not isinstance(nodes, list) or not nodes or \
            not all(isinstance(n, str) for n in nodes):
        raise ValueError("rca needs a non-empty 'nodes' string list")
    try:
        adjacency = np.asarray(request.get("adjacency"), dtype=float)
        features = np.asarray(request.get("features"), dtype=float)
    except (TypeError, ValueError):
        raise ValueError("rca 'adjacency'/'features' must be numeric "
                         "matrices") from None
    v = len(nodes)
    if adjacency.shape != (v, v):
        raise ValueError(f"rca 'adjacency' must be {v}x{v}")
    if features.ndim != 2 or features.shape[0] != v:
        raise ValueError(f"rca 'features' must have {v} rows")
    return state_for_inference(nodes, adjacency, features)


def _parse_eap_pairs(request: dict):
    """Validate and build EventPair objects from a request dict."""
    from repro.tasks.eap.data import EventPair

    raw_pairs = request.get("pairs")
    if not isinstance(raw_pairs, list) or not raw_pairs or \
            not all(isinstance(p, dict) for p in raw_pairs):
        raise ValueError("eap needs a non-empty 'pairs' list of objects")
    pairs = []
    for number, raw in enumerate(raw_pairs):
        try:
            pairs.append(EventPair(
                event_i=str(raw.get("event_i", raw["name_i"])),
                event_j=str(raw.get("event_j", raw["name_j"])),
                name_i=str(raw["name_i"]), name_j=str(raw["name_j"]),
                node_i=str(raw["node_i"]), node_j=str(raw["node_j"]),
                time_i=float(raw["time_i"]), time_j=float(raw["time_j"]),
                label=0))  # placeholder; never read at inference time
        except KeyError as missing:
            raise ValueError(
                f"eap pair {number} lacks required field {missing}"
            ) from None
        except (TypeError, ValueError):
            raise ValueError(
                f"eap pair {number} has non-numeric time_i/time_j"
            ) from None
    return pairs


def handle_request(service: FaultAnalysisService, request: dict) -> dict:
    """Dispatch one request dict to the service; returns the response."""
    op = request.get("op")
    if op == "ping":
        return {"ok": True, "op": "ping"}
    if op == "embed":
        names = request.get("names")
        if not isinstance(names, list) or not names or \
                not all(isinstance(n, str) for n in names):
            raise ValueError("embed needs a non-empty 'names' string list")
        vectors = service.embed(names)
        return {"ok": True, "op": "embed",
                "embeddings": [[round(float(x), 6) for x in row]
                               for row in vectors]}
    if op == "classify_fault":
        alarm = request.get("alarm")
        if not isinstance(alarm, str):
            raise ValueError("classify_fault needs an 'alarm' string")
        chain = service.classify_fault(alarm,
                                       top_k=int(request.get("top_k", 5)))
        return {"ok": True, "op": "classify_fault", "next_hops": chain}
    if op == "rca":
        state = _parse_rca_state(request)
        top_k = request.get("top_k")
        if top_k is not None:
            top_k = int(top_k)
        ranking = service.rank_root_causes(state, top_k=top_k)
        return {"ok": True, "op": "rca",
                "ranking": [{"node": node, "score": round(float(score), 6)}
                            for node, score in ranking]}
    if op == "eap":
        verdicts = service.propagate_alarms(_parse_eap_pairs(request))
        return {"ok": True, "op": "eap",
                "verdicts": [{"triggers": v["triggers"],
                              "confidence": round(float(v["confidence"]), 6)}
                             for v in verdicts]}
    if op == "stats":
        stats = service.stats()
        return {"ok": True, "op": "stats",
                "requests": stats["requests"],
                "cache": stats["cache"],
                "latency": stats["latency"],
                "batcher": stats["batcher"]}
    raise ValueError(f"unknown op: {op!r}")


def serve_loop(service: FaultAnalysisService, input_stream: IO[str],
               output_stream: IO[str]) -> int:
    """Run requests from ``input_stream`` until EOF; returns served count."""
    served = 0
    for line in input_stream:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            response = handle_request(service, request)
        except Exception as error:  # noqa: BLE001 — reported, loop survives
            service.metrics.counter(mn.SERVING_BAD_REQUESTS).inc()
            service.metrics.emit("bad_request", error=repr(error))
            response = {"ok": False, "error": repr(error)}
        served += 1
        output_stream.write(json.dumps(response, ensure_ascii=False) + "\n")
        output_stream.flush()
    return served
