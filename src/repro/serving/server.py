"""JSON-lines request loop for ``python -m repro serve``.

One request per input line, one JSON response per output line — the
simplest transport that exercises the full serving stack (batching,
persistent store, metrics) and is scriptable from a shell pipe or a
supervisor.  Protocol::

    {"op": "ping"}
    {"op": "embed", "names": ["link failure", ...]}
    {"op": "classify_fault", "alarm": "...", "top_k": 3}
    {"op": "rca", "nodes": [...], "adjacency": [[...]],
     "features": [[...]], "top_k": 3}
    {"op": "eap", "pairs": [{"name_i": ..., "name_j": ...,
     "node_i": ..., "node_j": ..., "time_i": 0.0, "time_j": 1.0}, ...]}
    {"op": "stats"}

Responses always carry ``"ok"``; failures answer ``{"ok": false,
"error": ...}`` on that line and the loop keeps serving — a malformed
request must never take the service down.

The dispatch logic itself lives in :mod:`repro.netserve.protocol`, the
request-language core shared with the TCP socket frontend
(``python -m repro serve-net``), so the two transports answer every op
identically.  This module re-exports the stdin-loop surface under its
historical names.
"""

from __future__ import annotations

from repro.netserve.protocol import (
    dispatch_line,
    error_envelope,
    handle_request,
    serve_loop,
)

__all__ = [
    "dispatch_line",
    "error_envelope",
    "handle_request",
    "serve_loop",
]
