"""JSON-lines request loop for ``python -m repro serve``.

One request per input line, one JSON response per output line — the
simplest transport that exercises the full serving stack (batching,
persistent store, metrics) and is scriptable from a shell pipe or a
supervisor.  Protocol::

    {"op": "ping"}
    {"op": "embed", "names": ["link failure", ...]}
    {"op": "classify_fault", "alarm": "...", "top_k": 3}
    {"op": "stats"}

Responses always carry ``"ok"``; failures answer ``{"ok": false,
"error": ...}`` on that line and the loop keeps serving — a malformed
request must never take the service down.
"""

from __future__ import annotations

import json
from typing import IO

from repro.serving.service import FaultAnalysisService


def handle_request(service: FaultAnalysisService, request: dict) -> dict:
    """Dispatch one request dict to the service; returns the response."""
    op = request.get("op")
    if op == "ping":
        return {"ok": True, "op": "ping"}
    if op == "embed":
        names = request.get("names")
        if not isinstance(names, list) or not names or \
                not all(isinstance(n, str) for n in names):
            raise ValueError("embed needs a non-empty 'names' string list")
        vectors = service.embed(names)
        return {"ok": True, "op": "embed",
                "embeddings": [[round(float(x), 6) for x in row]
                               for row in vectors]}
    if op == "classify_fault":
        alarm = request.get("alarm")
        if not isinstance(alarm, str):
            raise ValueError("classify_fault needs an 'alarm' string")
        chain = service.classify_fault(alarm,
                                       top_k=int(request.get("top_k", 5)))
        return {"ok": True, "op": "classify_fault", "next_hops": chain}
    if op == "stats":
        stats = service.stats()
        return {"ok": True, "op": "stats",
                "requests": stats["requests"],
                "cache": stats["cache"],
                "latency": stats["latency"],
                "batcher": stats["batcher"]}
    raise ValueError(f"unknown op: {op!r}")


def serve_loop(service: FaultAnalysisService, input_stream: IO[str],
               output_stream: IO[str]) -> int:
    """Run requests from ``input_stream`` until EOF; returns served count."""
    served = 0
    for line in input_stream:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            response = handle_request(service, request)
        except Exception as error:  # noqa: BLE001 — reported, loop survives
            service.metrics.counter("serving.bad_requests").inc()
            service.metrics.emit("bad_request", error=repr(error))
            response = {"ok": False, "error": repr(error)}
        served += 1
        output_stream.write(json.dumps(response, ensure_ascii=False) + "\n")
        output_stream.flush()
    return served
