"""Dynamic micro-batcher: coalesce concurrent encode requests into batches.

Online traffic arrives as many small requests (often a single name each),
but the encoder's cost is dominated by per-call overhead — the transformer
forward amortises well over a batch.  :class:`MicroBatcher` sits between
caller threads and one :class:`~repro.service.providers.EmbeddingProvider`:
callers block in :meth:`encode` while their names join a shared pending
set; a background worker flushes the set to the provider whenever it
reaches ``max_batch_size`` *or* the oldest pending name has waited
``max_wait_ms`` — the classic size-or-deadline policy of production
inference servers.

Names are deduplicated **across requests**: if four threads concurrently
ask for ``"link failure"``, the provider sees it once and all four callers
share the resulting vector.

Two mechanisms keep a hung or slow provider from wedging the batcher:

* **Deadline-aware waits** — :meth:`encode` accepts a
  :class:`~repro.serving.deadline.Deadline`; a caller whose budget runs
  out deregisters from its pending entries (counted in
  ``serving.abandoned_waits``) and raises
  :class:`~repro.serving.deadline.DeadlineExceeded`.  Entries with no
  remaining waiters leave the queue, so they neither hold the flush
  deadline open nor ride a future batch nobody wants.
* **Flush watchdog** — each provider flush runs on a disposable daemon
  thread bounded by ``flush_timeout_s``; a flush that blows the bound is
  abandoned, its entries fail with a typed
  :class:`~repro.serving.deadline.FlushTimeout` (waking every waiter so
  retry/fallback policy can engage), and the worker moves on to the next
  batch.  Hung flush threads are tracked in the
  ``serving.batcher.hung_flush_threads`` gauge; if one eventually
  returns, the gauge comes back down and its late result is discarded.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.serving import metric_names as mn
from repro.serving.deadline import Deadline, DeadlineExceeded, FlushTimeout
from repro.serving.metrics import MetricsRegistry
from repro.service.providers import EmbeddingProvider

#: Idle-worker wake interval.  The worker parks on the condition variable
#: when the queue is empty; waking every ``_IDLE_WAKE_S`` bounds the wait
#: so shutdown (or a missed notify) can never wedge it forever.
_IDLE_WAKE_S = 0.5


class _Pending:
    """One in-flight unique name, shared by every request that wants it."""

    __slots__ = ("done", "vector", "error", "enqueued_at", "waiters")

    def __init__(self, enqueued_at: float):
        self.done = threading.Event()
        self.vector: np.ndarray | None = None
        self.error: BaseException | None = None
        self.enqueued_at = enqueued_at
        self.waiters = 0


class _Flush:
    """State shared between the worker and one disposable flush thread."""

    __slots__ = ("names", "vectors", "error", "done", "outcome", "lock")

    def __init__(self, names: list[str]):
        self.names = names
        self.vectors: np.ndarray | None = None
        self.error: BaseException | None = None
        self.done = threading.Event()
        self.outcome: str | None = None   # None -> "completed"/"abandoned"
        self.lock = threading.Lock()


class MicroBatcher:
    """Size-or-deadline request coalescer over an embedding provider.

    Thread-safe; usable as a context manager (``with MicroBatcher(...)``)
    so the worker thread is always joined.  The batcher itself implements
    the provider interface, so it can wrap — and be wrapped by — the cache
    decorators.

    ``flush_timeout_s`` bounds each provider call (``None`` keeps the
    legacy unbounded behaviour — only safe for providers that cannot
    hang).
    """

    def __init__(self, provider: EmbeddingProvider, max_batch_size: int = 32,
                 max_wait_ms: float = 5.0,
                 flush_timeout_s: float | None = None,
                 max_hung_flushes: int = 8,
                 metrics: MetricsRegistry | None = None):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if flush_timeout_s is not None and flush_timeout_s <= 0:
            raise ValueError("flush_timeout_s must be positive")
        if max_hung_flushes < 1:
            raise ValueError("max_hung_flushes must be positive")
        self.provider = provider
        self.label = provider.label
        self.dim = provider.dim
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.flush_timeout_s = flush_timeout_s
        self.max_hung_flushes = max_hung_flushes
        self.metrics = metrics or MetricsRegistry()
        self._cond = threading.Condition()
        self._pending: dict[str, _Pending] = {}
        self._closed = False
        self._hung_flushes = 0
        self.batches_flushed = 0
        self.names_encoded = 0
        self._worker = threading.Thread(target=self._run,
                                        name="repro-microbatcher",
                                        daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------
    # Caller side
    # ------------------------------------------------------------------
    def encode(self, names: list[str],
               deadline: Deadline | None = None) -> np.ndarray:
        """Blocking encode through the shared batch queue.

        Returns a ``(len(names), dim)`` matrix aligned with ``names``.
        Raises whatever the provider raised if the flush that carried one
        of these names failed.  With a ``deadline``, waits are bounded:
        expiry deregisters this caller from its pending entries and
        raises :class:`DeadlineExceeded`.
        """
        if not names:
            return np.zeros((0, self.dim))
        deadline = deadline or Deadline.never()
        now = time.monotonic()
        with self._cond:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            entries: dict[str, _Pending] = {}
            for name in names:
                if name in entries:
                    continue
                entry = self._pending.get(name)
                if entry is None:
                    entry = _Pending(now)
                    self._pending[name] = entry
                entry.waiters += 1
                entries[name] = entry
            self.metrics.counter(mn.BATCHER_REQUESTS).inc()
            self.metrics.gauge(mn.BATCHER_QUEUE_DEPTH).set(
                len(self._pending))
            self._cond.notify_all()
        try:
            for entry in entries.values():
                if not entry.done.wait(timeout=deadline.wait_timeout()):
                    raise DeadlineExceeded(
                        f"encode of {len(names)} name(s) exceeded its "
                        f"deadline while waiting for a flush")
        except DeadlineExceeded:
            self._abandon(entries)
            raise
        rows = []
        for name in names:
            entry = entries[name]
            if entry.error is not None:
                raise entry.error
            rows.append(entry.vector)
        return np.stack(rows)

    def _abandon(self, entries: dict[str, _Pending]) -> None:
        """Deregister a timed-out caller from its pending entries.

        Entries left with zero waiters that are still queued (the worker
        has not taken them) are dropped, so abandoned names do not hold
        the flush deadline open or occupy future batches.  Entries
        already riding an in-flight flush are left to the watchdog.
        """
        dropped = 0
        with self._cond:
            for name, entry in entries.items():
                if entry.done.is_set():
                    continue
                entry.waiters -= 1
                if entry.waiters <= 0 and self._pending.get(name) is entry:
                    del self._pending[name]
                    dropped += 1
            if dropped:
                self.metrics.gauge(mn.BATCHER_QUEUE_DEPTH).set(
                    len(self._pending))
        self.metrics.counter(mn.SERVING_ABANDONED_WAITS).inc()
        if dropped:
            self.metrics.counter(mn.BATCHER_DROPPED_NAMES).inc(
                dropped)

    # Provider-interface alias so the batcher composes with decorators.
    encode_names = encode

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _take_batch(self) -> dict[str, _Pending] | None:
        """Block until a flush is due; returns the batch (None = closed)."""
        with self._cond:
            while True:
                if self._pending:
                    oldest = min(e.enqueued_at
                                 for e in self._pending.values())
                    deadline = oldest + self.max_wait_ms / 1000.0
                    now = time.monotonic()
                    if (len(self._pending) >= self.max_batch_size
                            or now >= deadline or self._closed):
                        batch = {}
                        for name in list(self._pending)[:self.max_batch_size]:
                            batch[name] = self._pending.pop(name)
                        self.metrics.gauge(
                            mn.BATCHER_QUEUE_DEPTH).set(
                            len(self._pending))
                        return batch
                    self._cond.wait(timeout=deadline - now)
                elif self._closed:
                    return None
                else:
                    # Bounded idle park: a periodic wake costs one loop
                    # re-check; an unbounded wait() would rely on every
                    # state change remembering to notify.
                    self._cond.wait(timeout=_IDLE_WAKE_S)

    def _run(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            self._flush(batch)

    def _flush(self, batch: dict[str, _Pending]) -> None:
        """One provider call, bounded by the watchdog when configured."""
        names = list(batch)
        flush = _Flush(names)
        if self.flush_timeout_s is None:
            self._call_provider(flush)
        else:
            # Circuit breaker on the leak: with max_hung_flushes provider
            # calls already wedged, submitting another can only stack one
            # more hung thread on a dead encoder — fail fast instead.
            # Recovery of any hung call (or none ever recovering but
            # callers degrading via fallback) closes the breaker.
            with self._cond:
                saturated = self._hung_flushes >= self.max_hung_flushes
            if saturated:
                self._fail_batch(batch, FlushTimeout(
                    f"provider has {self.max_hung_flushes} hung flush(es) "
                    f"outstanding; failing fast"))
                self.metrics.counter(mn.BATCHER_FAST_FAILS).inc()
                self.metrics.emit("flush_fast_fail", names=len(names))
                return
            thread = threading.Thread(target=self._call_provider,
                                      args=(flush,),
                                      name="repro-batcher-flush",
                                      daemon=True)
            thread.start()
            if not flush.done.wait(self.flush_timeout_s):
                with flush.lock:
                    if flush.outcome is None:
                        flush.outcome = "abandoned"
                if flush.outcome == "abandoned":
                    self._fail_batch(batch, FlushTimeout(
                        f"provider flush of {len(names)} name(s) exceeded "
                        f"{self.flush_timeout_s:g}s"))
                    with self._cond:
                        self._hung_flushes += 1
                        hung = self._hung_flushes
                    self.metrics.counter(mn.SERVING_HUNG_FLUSHES).inc()
                    self.metrics.gauge(
                        mn.BATCHER_HUNG_FLUSH_THREADS).set(hung)
                    self.metrics.emit("hung_flush", names=len(names),
                                      timeout_s=self.flush_timeout_s)
                    return
                # Completed in the race window: fall through and apply.
        if flush.error is not None:
            self._fail_batch(batch, flush.error)
            self.metrics.counter(mn.BATCHER_ERRORS).inc()
            self.metrics.emit("batch_error", names=len(names),
                              error=repr(flush.error))
            return
        for name, vector in zip(names, flush.vectors):
            batch[name].vector = vector
            batch[name].done.set()
        self.batches_flushed += 1
        self.names_encoded += len(names)
        self.metrics.counter(mn.BATCHER_BATCHES).inc()
        self.metrics.counter(mn.BATCHER_NAMES).inc(len(names))
        self.metrics.histogram(mn.BATCHER_BATCH_SIZE).observe(
            len(names))

    def _call_provider(self, flush: _Flush) -> None:
        """Run the provider call; first of worker/watchdog claims the
        outcome, so a late result after abandonment is discarded."""
        try:
            with self.metrics.time(mn.BATCHER_FLUSH_LATENCY):
                vectors = self.provider.encode_names(flush.names)
            error = None
        except BaseException as caught:  # propagate to every waiter
            vectors, error = None, caught
        with flush.lock:
            if flush.outcome == "abandoned":
                recovered = True
            else:
                flush.outcome = "completed"
                flush.vectors = vectors
                flush.error = error
                recovered = False
        flush.done.set()
        if recovered:
            with self._cond:
                self._hung_flushes = max(0, self._hung_flushes - 1)
                hung = self._hung_flushes
            self.metrics.gauge(
                mn.BATCHER_HUNG_FLUSH_THREADS).set(hung)
            self.metrics.counter(mn.BATCHER_RECOVERED_FLUSHES).inc()

    @staticmethod
    def _fail_batch(batch: dict[str, _Pending],
                    error: BaseException) -> None:
        for entry in batch.values():
            entry.error = error
            entry.done.set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float | None = None) -> bool:
        """Flush remaining names and stop the worker (idempotent).

        Returns True when the worker exited within ``timeout`` (always,
        when the watchdog is armed — every flush wait is bounded).  A
        worker stuck in a legacy unbounded flush is left behind as a
        daemon rather than blocking shutdown.
        """
        with self._cond:
            if not self._closed:
                self._closed = True
                self._cond.notify_all()
        self._worker.join(timeout)
        stopped = not self._worker.is_alive()
        if not stopped:
            self.metrics.emit("close_timeout", timeout_s=timeout)
        return stopped

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        """Flush counters for the metrics dump."""
        with self._cond:
            return {
                "batches_flushed": self.batches_flushed,
                "names_encoded": self.names_encoded,
                "mean_batch_size": (self.names_encoded / self.batches_flushed
                                    if self.batches_flushed else 0.0),
                "pending": len(self._pending),
                "hung_flush_threads": self._hung_flushes,
            }
