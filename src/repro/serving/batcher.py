"""Dynamic micro-batcher: coalesce concurrent encode requests into batches.

Online traffic arrives as many small requests (often a single name each),
but the encoder's cost is dominated by per-call overhead — the transformer
forward amortises well over a batch.  :class:`MicroBatcher` sits between
caller threads and one :class:`~repro.service.providers.EmbeddingProvider`:
callers block in :meth:`encode` while their names join a shared pending
set; a background worker flushes the set to the provider whenever it
reaches ``max_batch_size`` *or* the oldest pending name has waited
``max_wait_ms`` — the classic size-or-deadline policy of production
inference servers.

Names are deduplicated **across requests**: if four threads concurrently
ask for ``"link failure"``, the provider sees it once and all four callers
share the resulting vector.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.serving.metrics import MetricsRegistry
from repro.service.providers import EmbeddingProvider


class _Pending:
    """One in-flight unique name, shared by every request that wants it."""

    __slots__ = ("done", "vector", "error", "enqueued_at")

    def __init__(self, enqueued_at: float):
        self.done = threading.Event()
        self.vector: np.ndarray | None = None
        self.error: BaseException | None = None
        self.enqueued_at = enqueued_at


class MicroBatcher:
    """Size-or-deadline request coalescer over an embedding provider.

    Thread-safe; usable as a context manager (``with MicroBatcher(...)``)
    so the worker thread is always joined.  The batcher itself implements
    the provider interface, so it can wrap — and be wrapped by — the cache
    decorators.
    """

    def __init__(self, provider: EmbeddingProvider, max_batch_size: int = 32,
                 max_wait_ms: float = 5.0,
                 metrics: MetricsRegistry | None = None):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self.provider = provider
        self.label = provider.label
        self.dim = provider.dim
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.metrics = metrics or MetricsRegistry()
        self._cond = threading.Condition()
        self._pending: dict[str, _Pending] = {}
        self._closed = False
        self.batches_flushed = 0
        self.names_encoded = 0
        self._worker = threading.Thread(target=self._run,
                                        name="repro-microbatcher",
                                        daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------
    # Caller side
    # ------------------------------------------------------------------
    def encode(self, names: list[str]) -> np.ndarray:
        """Blocking encode through the shared batch queue.

        Returns a ``(len(names), dim)`` matrix aligned with ``names``.
        Raises whatever the provider raised if the flush that carried one
        of these names failed.
        """
        if not names:
            return np.zeros((0, self.dim))
        now = time.monotonic()
        with self._cond:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            entries = {}
            for name in names:
                entry = self._pending.get(name)
                if entry is None or entry.done.is_set():
                    entry = _Pending(now)
                    self._pending[name] = entry
                entries[name] = entry
            self.metrics.counter("serving.batcher.requests").inc()
            self.metrics.gauge("serving.batcher.queue_depth").set(
                len(self._pending))
            self._cond.notify_all()
        for entry in entries.values():
            entry.done.wait()
        rows = []
        for name in names:
            entry = entries[name]
            if entry.error is not None:
                raise entry.error
            rows.append(entry.vector)
        return np.stack(rows)

    # Provider-interface alias so the batcher composes with decorators.
    encode_names = encode

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _take_batch(self) -> dict[str, _Pending] | None:
        """Block until a flush is due; returns the batch (None = closed)."""
        with self._cond:
            while True:
                if self._pending:
                    oldest = min(e.enqueued_at
                                 for e in self._pending.values())
                    deadline = oldest + self.max_wait_ms / 1000.0
                    now = time.monotonic()
                    if (len(self._pending) >= self.max_batch_size
                            or now >= deadline or self._closed):
                        batch = {}
                        for name in list(self._pending)[:self.max_batch_size]:
                            batch[name] = self._pending.pop(name)
                        self.metrics.gauge(
                            "serving.batcher.queue_depth").set(
                            len(self._pending))
                        return batch
                    self._cond.wait(timeout=deadline - now)
                elif self._closed:
                    return None
                else:
                    self._cond.wait()

    def _run(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            names = list(batch)
            try:
                with self.metrics.time("serving.batcher.flush_latency"):
                    vectors = self.provider.encode_names(names)
            except BaseException as error:  # propagate to every waiter
                for entry in batch.values():
                    entry.error = error
                    entry.done.set()
                self.metrics.counter("serving.batcher.errors").inc()
                self.metrics.emit("batch_error", names=len(names),
                                  error=repr(error))
                continue
            for name, vector in zip(names, vectors):
                batch[name].vector = vector
                batch[name].done.set()
            self.batches_flushed += 1
            self.names_encoded += len(names)
            self.metrics.counter("serving.batcher.batches").inc()
            self.metrics.counter("serving.batcher.names").inc(len(names))
            self.metrics.histogram("serving.batcher.batch_size").observe(
                len(names))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush remaining names and stop the worker (idempotent)."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._worker.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        """Flush counters for the metrics dump."""
        with self._cond:
            return {
                "batches_flushed": self.batches_flushed,
                "names_encoded": self.names_encoded,
                "mean_batch_size": (self.names_encoded / self.batches_flushed
                                    if self.batches_flushed else 0.0),
                "pending": len(self._pending),
            }
