"""Persistent embedding store: append-only disk log + in-memory LRU tier.

Every embedding consumer in the repo re-encodes the same target names on
every process start (the per-process :class:`~repro.service.CachedProvider`
memo dies with the interpreter).  :class:`EmbeddingStore` makes the cache
survive: vectors live in an append-only JSON-lines log on disk, keyed by
``(fingerprint, provider label, mode, name)``, with a bounded LRU dict in
front so hot names never touch the disk twice.

*Versioned invalidation* falls out of the key: the fingerprint component
comes from :func:`repro.models.checkpoint.checkpoint_fingerprint` (or
:func:`~repro.models.checkpoint.model_fingerprint`), so re-training the
encoder changes the namespace and stale vectors are simply never matched
again.  ``compact()`` rewrites the log keeping only the live namespace.

The append-only format is crash-tolerant by construction: a torn final
line (killed process) is detected and skipped on the next open.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.service.providers import EmbeddingProvider

_LOG_NAME = "embeddings.jsonl"


class EmbeddingStore:
    """Two-tier (LRU memory / append-only disk) per-name embedding cache.

    One store instance binds one namespace — ``(fingerprint, label,
    mode)`` — and maps names to vectors within it.  Entries written under
    other namespaces coexist in the same log file but are invisible, which
    is what makes checkpoint-fingerprint invalidation free.
    """

    def __init__(self, directory: str | Path, fingerprint: str = "unversioned",
                 label: str = "provider", mode: str = "name",
                 lru_capacity: int = 4096):
        if lru_capacity < 1:
            raise ValueError("lru_capacity must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fingerprint = fingerprint
        self.label = label
        self.mode = mode
        self.lru_capacity = lru_capacity
        self.path = self.directory / _LOG_NAME
        self._lock = threading.RLock()
        self._lru: OrderedDict[str, np.ndarray] = OrderedDict()
        # name -> byte offset of its newest record in the log (this
        # namespace only); vectors are re-read lazily on LRU miss.
        self._offsets: dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self._scan()

    # ------------------------------------------------------------------
    # Disk log
    # ------------------------------------------------------------------
    def _matches(self, record: dict) -> bool:
        return (record.get("v") == self.fingerprint
                and record.get("p") == self.label
                and record.get("m") == self.mode)

    def _scan(self) -> None:
        """Index the log: newest offset per name in this namespace."""
        if not self.path.exists():
            return
        with open(self.path, "rb") as handle:
            offset = 0
            for raw in handle:
                line = raw.decode("utf-8", errors="replace").strip()
                start, offset = offset, offset + len(raw)
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn trailing write from a killed process
                if self._matches(record):
                    self._offsets[record["n"]] = start

    def _read_at(self, offset: int) -> np.ndarray | None:
        """Decode the record at ``offset``; ``None`` if torn/unreadable.

        A record that indexed cleanly can still fail to read later (the
        file truncated or corrupted underneath a live store).  That must
        degrade to a cache miss — the provider re-encodes — never to a
        ``JSONDecodeError`` escaping ``get()``.
        """
        try:
            with open(self.path, "rb") as handle:
                handle.seek(offset)
                record = json.loads(handle.readline().decode("utf-8"))
            return np.asarray(record["e"], dtype=np.float64)
        except (OSError, json.JSONDecodeError, KeyError, UnicodeDecodeError,
                TypeError, ValueError):
            return None

    # ------------------------------------------------------------------
    # LRU tier
    # ------------------------------------------------------------------
    def _lru_get(self, name: str) -> np.ndarray | None:
        vector = self._lru.get(name)
        if vector is not None:
            self._lru.move_to_end(name)
        return vector

    def _lru_put(self, name: str, vector: np.ndarray) -> None:
        self._lru[name] = vector
        self._lru.move_to_end(name)
        while len(self._lru) > self.lru_capacity:
            self._lru.popitem(last=False)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def get(self, name: str) -> np.ndarray | None:
        """The stored vector for ``name``, or ``None`` on a full miss."""
        with self._lock:
            vector = self._lru_get(name)
            if vector is None and name in self._offsets:
                vector = self._read_at(self._offsets[name])
                if vector is None:
                    # Torn/unreadable record: forget the offset so the
                    # miss is permanent rather than re-read every call.
                    del self._offsets[name]
                else:
                    self._lru_put(name, vector)
            if vector is None:
                self.misses += 1
            else:
                self.hits += 1
            return vector

    def get_many(self, names: list[str]) -> dict[str, np.ndarray]:
        """Vectors for every known name (missing names are absent)."""
        found: dict[str, np.ndarray] = {}
        for name in names:
            vector = self.get(name)
            if vector is not None:
                found[name] = vector
        return found

    def _ensure_newline_terminated(self) -> None:
        """Repair a torn trailing write so appends start on a fresh line."""
        if not self.path.exists() or not self.path.stat().st_size:
            return
        with open(self.path, "rb") as handle:
            handle.seek(-1, 2)
            torn = handle.read(1) != b"\n"
        if torn:
            with open(self.path, "ab") as handle:
                handle.write(b"\n")

    def put_many(self, vectors: dict[str, np.ndarray]) -> None:
        """Append vectors to the log and refresh both tiers."""
        if not vectors:
            return
        with self._lock:
            self._ensure_newline_terminated()
            with open(self.path, "ab") as handle:
                for name, vector in vectors.items():
                    record = {"v": self.fingerprint, "p": self.label,
                              "m": self.mode, "n": name,
                              "e": [float(x) for x in np.asarray(vector)]}
                    start = handle.tell()
                    handle.write(json.dumps(record,
                                            ensure_ascii=False).encode())
                    handle.write(b"\n")
                    self._offsets[name] = start
                    self._lru_put(name, np.asarray(vector, dtype=np.float64))

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._lru or name in self._offsets

    def __len__(self) -> int:
        with self._lock:
            return len(set(self._offsets) | set(self._lru))

    def compact(self) -> int:
        """Rewrite the log keeping only this namespace; returns kept count.

        Garbage-collects entries from superseded fingerprints (and other
        providers/modes).  Safe to call while the store is live.
        """
        from repro.models.checkpoint import atomic_write_bytes

        with self._lock:
            live: dict[str, np.ndarray] = {}
            for name, offset in self._offsets.items():
                vector = self._read_at(offset)
                if vector is not None:  # torn records fall out of the log
                    live[name] = vector
            chunks: list[bytes] = []
            offsets: dict[str, int] = {}
            position = 0
            for name, vector in live.items():
                record = {"v": self.fingerprint, "p": self.label,
                          "m": self.mode, "n": name,
                          "e": [float(x) for x in vector]}
                line = json.dumps(record, ensure_ascii=False).encode() + b"\n"
                offsets[name] = position
                position += len(line)
                chunks.append(line)
            # Same temp+fsync+rename discipline as SnapshotStore: a crash
            # mid-compaction leaves the previous complete log, never a
            # partial one.
            atomic_write_bytes(self.path, b"".join(chunks))
            self._offsets = offsets
            return len(offsets)

    def stats(self) -> dict:
        """Hit/miss counters and tier sizes (feeds the metrics registry)."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
                "memory_entries": len(self._lru),
                "disk_entries": len(self._offsets),
            }


class PersistentProvider(EmbeddingProvider):
    """Provider decorator backed by an :class:`EmbeddingStore`.

    Drop-in for any :class:`~repro.service.providers.EmbeddingProvider`:
    names found in the store (from *any* earlier process with the same
    fingerprint) skip the inner encoder entirely; fresh names are encoded
    once, persisted, and served from memory afterwards.
    """

    def __init__(self, inner: EmbeddingProvider, store: EmbeddingStore):
        self.inner = inner
        self.store = store
        self.label = inner.label
        self.dim = inner.dim
        self._lock = threading.Lock()

    def encode_names(self, names: list[str]) -> np.ndarray:
        # The lock guards only the store read and write — never the inner
        # encode.  A slow (or hung) encoder therefore cannot serialize
        # traffic that the disk/LRU tiers can already answer.  Two threads
        # racing on the same missing name may both encode it; the second
        # put_many wins and each caller returns a self-consistent matrix
        # (duplicate names within one request always share one vector,
        # drawn from this call's ``found`` map).
        with self._lock:
            found = self.store.get_many(names)
        missing = [n for n in dict.fromkeys(names) if n not in found]
        if missing:
            vectors = self.inner.encode_names(missing)
            fresh = {name: vector
                     for name, vector in zip(missing, vectors)}
            with self._lock:
                self.store.put_many(fresh)
            found.update(fresh)
        return np.stack([found[n] for n in names])

    def stats(self) -> dict:
        """The underlying store's counters."""
        return self.store.stats()
