"""Persistent embedding store: append-only disk log + in-memory LRU tier.

Every embedding consumer in the repo re-encodes the same target names on
every process start (the per-process :class:`~repro.service.CachedProvider`
memo dies with the interpreter).  :class:`EmbeddingStore` makes the cache
survive: vectors live in an append-only JSON-lines log on disk, keyed by
``(fingerprint, provider label, mode, name)``, with a bounded LRU dict in
front so hot names never touch the disk twice.

*Versioned invalidation* falls out of the key: the fingerprint component
comes from :func:`repro.models.checkpoint.checkpoint_fingerprint` (or
:func:`~repro.models.checkpoint.model_fingerprint`), so re-training the
encoder changes the namespace and stale vectors are simply never matched
again.  ``compact()`` rewrites the log keeping only the live namespace.

The append-only format is crash-tolerant by construction: a torn final
line (killed process) is detected and skipped on the next open.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.ioutil import atomic_writer
from repro.service.providers import EmbeddingProvider

_LOG_NAME = "embeddings.jsonl"


class ProviderShapeError(ValueError):
    """An inner provider returned a matrix misaligned with its names.

    Raised by :meth:`PersistentProvider.encode_names` when the wrapped
    encoder yields a different number of rows than names requested.
    Persisting such a batch would zip names onto the wrong vectors and
    poison the store for every later process sharing the fingerprint, so
    the batch is rejected before anything is written.
    """


class EmbeddingStore:
    """Two-tier (LRU memory / append-only disk) per-name embedding cache.

    One store instance binds one namespace — ``(fingerprint, label,
    mode)`` — and maps names to vectors within it.  Entries written under
    other namespaces coexist in the same log file but are invisible, which
    is what makes checkpoint-fingerprint invalidation free.
    """

    def __init__(self, directory: str | Path, fingerprint: str = "unversioned",
                 label: str = "provider", mode: str = "name",
                 lru_capacity: int = 4096):
        if lru_capacity < 1:
            raise ValueError("lru_capacity must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fingerprint = fingerprint
        self.label = label
        self.mode = mode
        self.lru_capacity = lru_capacity
        self.path = self.directory / _LOG_NAME
        self._lock = threading.RLock()
        self._lru: OrderedDict[str, np.ndarray] = OrderedDict()
        # name -> byte offset of its newest record in the log (this
        # namespace only); vectors are re-read lazily on LRU miss.
        self._offsets: dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self._scan()

    # ------------------------------------------------------------------
    # Disk log
    # ------------------------------------------------------------------
    def _matches(self, record: dict) -> bool:
        return (record.get("v") == self.fingerprint
                and record.get("p") == self.label
                and record.get("m") == self.mode)

    def _scan(self) -> None:
        """Index the log: newest offset per name in this namespace."""
        if not self.path.exists():
            return
        with open(self.path, "rb") as handle:
            offset = 0
            for raw in handle:
                line = raw.decode("utf-8", errors="replace").strip()
                start, offset = offset, offset + len(raw)
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn trailing write from a killed process
                if self._matches(record):
                    self._offsets[record["n"]] = start

    def _read_at(self, offset: int) -> np.ndarray | None:
        """Decode the record at ``offset``; ``None`` if torn/unreadable.

        A record that indexed cleanly can still fail to read later (the
        file truncated or corrupted underneath a live store).  That must
        degrade to a cache miss — the provider re-encodes — never to a
        ``JSONDecodeError`` escaping ``get()``.
        """
        try:
            with open(self.path, "rb") as handle:
                return self._decode_at(handle, offset)
        except OSError:
            return None

    @staticmethod
    def _decode_at(handle, offset: int) -> np.ndarray | None:
        """Decode one record from an already-open handle; ``None`` if torn."""
        try:
            handle.seek(offset)
            record = json.loads(handle.readline().decode("utf-8"))
            return np.asarray(record["e"], dtype=np.float64)
        except (OSError, json.JSONDecodeError, KeyError, UnicodeDecodeError,
                TypeError, ValueError):
            return None

    # ------------------------------------------------------------------
    # LRU tier
    # ------------------------------------------------------------------
    def _lru_get(self, name: str) -> np.ndarray | None:
        vector = self._lru.get(name)
        if vector is not None:
            self._lru.move_to_end(name)
        return vector

    def _lru_put(self, name: str, vector: np.ndarray) -> None:
        self._lru[name] = vector
        self._lru.move_to_end(name)
        while len(self._lru) > self.lru_capacity:
            self._lru.popitem(last=False)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def get(self, name: str) -> np.ndarray | None:
        """The stored vector for ``name``, or ``None`` on a full miss."""
        with self._lock:
            vector = self._lru_get(name)
            if vector is None and name in self._offsets:
                vector = self._read_at(self._offsets[name])
                if vector is None:
                    # Torn/unreadable record: forget the offset so the
                    # miss is permanent rather than re-read every call.
                    del self._offsets[name]
                else:
                    self._lru_put(name, vector)
            if vector is None:
                self.misses += 1
            else:
                self.hits += 1
            return vector

    def get_many(self, names: list[str]) -> dict[str, np.ndarray]:
        """Vectors for every known name (missing names are absent).

        One lock acquisition and at most one ``open()`` for the whole
        batch: LRU hits are collected first, then every missing-offset
        record is read through a single file handle.  This is the index
        build ingestion path, where per-name opens dominate wall time.
        """
        found: dict[str, np.ndarray] = {}
        with self._lock:
            to_read: dict[str, int] = {}
            for name in dict.fromkeys(names):
                vector = self._lru_get(name)
                if vector is not None:
                    found[name] = vector
                    self.hits += 1
                elif name in self._offsets:
                    to_read[name] = self._offsets[name]
                else:
                    self.misses += 1
            if to_read:
                try:
                    handle = open(self.path, "rb")
                except OSError:
                    handle = None
                try:
                    for name, offset in to_read.items():
                        vector = (self._decode_at(handle, offset)
                                  if handle is not None else None)
                        if vector is None:
                            # Torn/unreadable record: same permanent-miss
                            # policy as get().
                            del self._offsets[name]
                            self.misses += 1
                        else:
                            self._lru_put(name, vector)
                            found[name] = vector
                            self.hits += 1
                finally:
                    if handle is not None:
                        handle.close()
        return found

    def _ensure_newline_terminated(self) -> None:
        """Repair a torn trailing write so appends start on a fresh line."""
        if not self.path.exists() or not self.path.stat().st_size:
            return
        with open(self.path, "rb") as handle:
            handle.seek(-1, 2)
            torn = handle.read(1) != b"\n"
        if torn:
            with open(self.path, "ab") as handle:
                handle.write(b"\n")

    def put_many(self, vectors: dict[str, np.ndarray]) -> None:
        """Append vectors to the log and refresh both tiers."""
        if not vectors:
            return
        with self._lock:
            self._ensure_newline_terminated()
            with open(self.path, "ab") as handle:
                for name, vector in vectors.items():
                    record = {"v": self.fingerprint, "p": self.label,
                              "m": self.mode, "n": name,
                              "e": [float(x) for x in np.asarray(vector)]}
                    start = handle.tell()
                    handle.write(json.dumps(record,
                                            ensure_ascii=False).encode())
                    handle.write(b"\n")
                    self._offsets[name] = start
                    self._lru_put(name, np.asarray(vector, dtype=np.float64))

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._lru or name in self._offsets

    def __len__(self) -> int:
        """Distinct live names across both tiers.

        A name can live in only one tier — LRU-only after a torn-record
        eviction dropped its offset, disk-only after an LRU eviction — so
        the count is the union, never the sum.
        """
        with self._lock:
            return len(set(self._offsets) | set(self._lru))

    def names(self) -> list[str]:
        """Sorted distinct live names (the index-build ingestion set)."""
        with self._lock:
            return sorted(set(self._offsets) | set(self._lru))

    def compact(self) -> int:
        """Rewrite the log keeping only this namespace; returns kept count.

        Garbage-collects entries from superseded fingerprints (and other
        providers/modes).  Safe to call while the store is live.  Records
        stream straight to the temp file — the rewritten log is never
        materialised in memory, so compacting a million-entity store costs
        one record of RAM, not gigabytes.  The temp+fsync+rename discipline
        (:func:`repro.ioutil.atomic_writer`) still guarantees a crash
        mid-compaction leaves the previous complete log, never a partial
        one.  Names alive only in the LRU (their disk record was torn and
        evicted) are re-persisted from memory rather than dropped.
        """
        with self._lock:
            disk_only = {name: offset
                         for name, offset in self._offsets.items()
                         if name not in self._lru}
            offsets: dict[str, int] = {}
            read_handle = None
            if disk_only:
                try:
                    read_handle = open(self.path, "rb")
                except OSError:
                    read_handle = None
            try:
                with atomic_writer(self.path) as out:
                    position = 0

                    def emit(name: str, vector: np.ndarray) -> None:
                        nonlocal position
                        record = {"v": self.fingerprint, "p": self.label,
                                  "m": self.mode, "n": name,
                                  "e": [float(x) for x in vector]}
                        line = json.dumps(
                            record, ensure_ascii=False).encode() + b"\n"
                        out.write(line)
                        offsets[name] = position
                        position += len(line)

                    for name, offset in disk_only.items():
                        vector = (self._decode_at(read_handle, offset)
                                  if read_handle is not None else None)
                        if vector is not None:  # torn records fall out
                            emit(name, vector)
                    for name, vector in self._lru.items():
                        emit(name, vector)
            finally:
                if read_handle is not None:
                    read_handle.close()
            self._offsets = offsets
            return len(offsets)

    def stats(self) -> dict:
        """Hit/miss counters and tier sizes (feeds the metrics registry).

        ``entries`` is the *distinct* live-name count (tier union);
        ``memory_entries``/``disk_entries`` are per-tier sizes whose sum
        double-counts names resident in both tiers — consumers wanting
        "how many names does this store hold" must use ``entries``.
        """
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
                "entries": len(set(self._offsets) | set(self._lru)),
                "memory_entries": len(self._lru),
                "disk_entries": len(self._offsets),
            }


class PersistentProvider(EmbeddingProvider):
    """Provider decorator backed by an :class:`EmbeddingStore`.

    Drop-in for any :class:`~repro.service.providers.EmbeddingProvider`:
    names found in the store (from *any* earlier process with the same
    fingerprint) skip the inner encoder entirely; fresh names are encoded
    once, persisted, and served from memory afterwards.
    """

    def __init__(self, inner: EmbeddingProvider, store: EmbeddingStore):
        self.inner = inner
        self.store = store
        self.label = inner.label
        self.dim = inner.dim
        self._lock = threading.Lock()

    def encode_names(self, names: list[str]) -> np.ndarray:
        # The lock guards only the store read and write — never the inner
        # encode.  A slow (or hung) encoder therefore cannot serialize
        # traffic that the disk/LRU tiers can already answer.  Two threads
        # racing on the same missing name may both encode it; the second
        # put_many wins and each caller returns a self-consistent matrix
        # (duplicate names within one request always share one vector,
        # drawn from this call's ``found`` map).
        with self._lock:
            found = self.store.get_many(names)
        missing = [n for n in dict.fromkeys(names) if n not in found]
        if missing:
            vectors = np.asarray(self.inner.encode_names(missing))
            if vectors.ndim != 2 or vectors.shape[0] != len(missing):
                # Zipping a misaligned matrix would persist wrong
                # name->vector pairs for every later process; refuse it.
                raise ProviderShapeError(
                    f"provider {self.label!r} returned shape "
                    f"{vectors.shape} for {len(missing)} names")
            fresh = {name: vector
                     for name, vector in zip(missing, vectors)}
            with self._lock:
                self.store.put_many(fresh)
            found.update(fresh)
        return np.stack([found[n] for n in names])

    def stats(self) -> dict:
        """The underlying store's counters."""
        return self.store.stats()
