"""Online fault-analysis serving layer.

Turns the frozen encoders of :mod:`repro.service` into a long-lived
inference service, the deployment shape the paper's "service embeddings"
imply (Sec. V-A3) and that industrial tele-PLM systems build around:

* :class:`MicroBatcher` — dynamic micro-batching with cross-request
  deduplication (flush on size or deadline), deadline-aware waits, and a
  flush watchdog that bounds provider calls;
* :class:`EmbeddingStore` / :class:`PersistentProvider` — append-only
  on-disk embedding cache keyed by checkpoint fingerprint, with an LRU
  memory tier and versioned invalidation;
* :class:`FaultAnalysisService` — one façade exposing ``embed`` plus the
  three fault-analysis calls (``rank_root_causes`` / ``propagate_alarms``
  / ``classify_fault``) with per-request deadlines, bounded retry with
  backoff, and graceful degradation to a fallback provider;
* :class:`Deadline` / :class:`CancellationToken` — the propagated budget
  and cooperative-stop primitives that keep a hung encoder from wedging
  the stack (typed failures: :class:`DeadlineExceeded`,
  :class:`FlushTimeout`);
* :class:`CancellableWorkerPool` — the façade's daemon-thread retry pool
  with hung-thread accounting and bounded replacement;
* :class:`MetricsRegistry` — counters, gauges, latency histograms with
  p50/p95/p99, and structured event logging;
* :func:`serve_loop` — the stdin/stdout JSON-lines transport behind
  ``python -m repro serve``.
"""

from repro.serving.batcher import MicroBatcher
from repro.serving.deadline import (
    CancellationToken,
    CancelledError,
    Deadline,
    DeadlineExceeded,
    FlushTimeout,
)
from repro.serving.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_hit_stats,
    replay_journal,
)
from repro.serving.pool import CancellableWorkerPool
from repro.serving.server import handle_request, serve_loop
from repro.serving.service import (
    FaultAnalysisService,
    ServiceConfig,
    ServingError,
)
from repro.serving.store import (
    EmbeddingStore,
    PersistentProvider,
    ProviderShapeError,
)

__all__ = [
    "CancellableWorkerPool",
    "CancellationToken",
    "CancelledError",
    "Counter",
    "Deadline",
    "DeadlineExceeded",
    "EmbeddingStore",
    "FaultAnalysisService",
    "FlushTimeout",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MicroBatcher",
    "PersistentProvider",
    "ProviderShapeError",
    "ServiceConfig",
    "ServingError",
    "handle_request",
    "merge_hit_stats",
    "replay_journal",
    "serve_loop",
]
