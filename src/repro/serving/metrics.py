"""Metrics registry for the serving layer: counters, gauges, histograms.

The online serving stack (:mod:`repro.serving`) needs the classic
observability triple — request counters, state gauges, and latency
histograms with tail percentiles — without pulling in a metrics client the
container does not ship.  Everything here is dependency-free and
thread-safe: the micro-batcher's worker thread, the façade's caller
threads, and the stdin request loop all write to one shared
:class:`MetricsRegistry`.

Histograms keep a bounded ring of recent observations; percentiles use
linear interpolation between closest ranks (the same convention as
``numpy.percentile``), so ``p50`` of ``1..100`` is ``50.5``.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Callable, Iterable

from repro.serving import metric_names as mn


class Counter:
    """Monotonically increasing count (requests, cache hits, fallbacks)."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """Current count."""
        return self._value


class Gauge:
    """Last-write-wins instantaneous value (queue depth, store size)."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the current level."""
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        """Shift the level by ``delta`` (atomic; negative allowed).

        For up/down tracking shared across threads — in-flight requests,
        hung worker threads — where ``set`` would race.
        """
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        """Most recently set level."""
        return self._value


class Histogram:
    """Bounded sample window with closest-rank-interpolated percentiles.

    Keeps the most recent ``window`` observations in a ring buffer — old
    samples age out, so long-lived services report *current* latency, not
    the all-time mixture.
    """

    def __init__(self, name: str, window: int = 2048):
        if window < 1:
            raise ValueError("window must be positive")
        self.name = name
        self.window = window
        self._samples: list[float] = []
        self._cursor = 0
        self._count = 0
        self._total = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (e.g. a latency in seconds)."""
        value = float(value)
        with self._lock:
            if len(self._samples) < self.window:
                self._samples.append(value)
            else:
                self._samples[self._cursor] = value
                self._cursor = (self._cursor + 1) % self.window
            self._count += 1
            self._total += value

    @property
    def count(self) -> int:
        """Total number of observations ever recorded."""
        return self._count

    @property
    def mean(self) -> float:
        """Mean over *all* observations (not just the window)."""
        return self._total / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile ``q`` in [0, 100] of the window."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        rank = (len(ordered) - 1) * (q / 100.0)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def summary(self) -> dict[str, float]:
        """count / mean / p50 / p95 / p99 snapshot."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named counters/gauges/histograms plus a structured event log.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create, so
    collaborating components (batcher, store, façade, server) share
    instruments by name.  ``emit`` appends a structured event to a bounded
    in-memory log and forwards it to an optional sink callable — e.g.
    ``lambda line: print(line, file=sys.stderr)`` for JSON-lines shipping.
    """

    def __init__(self, event_capacity: int = 1024,
                 sink: Callable[[str], None] | None = None):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._events: list[dict] = []
        self._event_capacity = event_capacity
        self._event_seq = 0
        self._sink = sink

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(self, name: str, window: int = 2048) -> Histogram:
        """Get or create the histogram called ``name``."""
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, window=window)
            return self._histograms[name]

    def time(self, name: str) -> "_Timer":
        """Context manager observing elapsed seconds into histogram ``name``."""
        return _Timer(self.histogram(name))

    # ------------------------------------------------------------------
    # Structured events
    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields) -> dict:
        """Append a structured event; returns the event dict."""
        with self._lock:
            self._event_seq += 1
            event = {"seq": self._event_seq, "kind": kind, **fields}
            self._events.append(event)
            if len(self._events) > self._event_capacity:
                del self._events[: len(self._events) - self._event_capacity]
            sink = self._sink
        if sink is not None:
            sink(json.dumps(event, ensure_ascii=False, default=str))
        return event

    @property
    def events(self) -> list[dict]:
        """The retained structured events, oldest first."""
        with self._lock:
            return list(self._events)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Nested dict of every instrument's current state."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {n: h.summary()
                           for n, h in sorted(histograms.items())},
        }

    def render(self) -> str:
        """Human-readable multi-line dump (the ``--stats`` output)."""
        snap = self.snapshot()
        lines = ["== serving stats =="]
        for name, value in snap["counters"].items():
            lines.append(f"counter   {name}: {value}")
        for name, value in snap["gauges"].items():
            lines.append(f"gauge     {name}: {value:g}")
        for name, summary in snap["histograms"].items():
            lines.append(
                f"histogram {name}: count={summary['count']} "
                f"mean={summary['mean']:.6f} p50={summary['p50']:.6f} "
                f"p95={summary['p95']:.6f} p99={summary['p99']:.6f}")
        return "\n".join(lines)


class _Timer:
    """Context manager used by :meth:`MetricsRegistry.time`."""

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


def replay_journal(path: str | Path,
                   registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Replay a training-run journal into a metrics registry.

    The training runtime (:mod:`repro.training.runtime`) appends one JSON
    event per step plus lifecycle events to ``journal.jsonl``.  This folds
    that log into the same instruments the serving stack exposes: step
    counters, loss / throughput / wall-time histograms, and one structured
    event per lifecycle transition — so ops tooling observes training and
    serving through a single registry.  Malformed (torn) lines are skipped.
    """
    registry = registry or MetricsRegistry()
    path = Path(path)
    if not path.exists():
        return registry
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue
        kind = event.get("kind")
        if kind == "step":
            registry.counter(mn.TRAIN_STEPS).inc()
            registry.counter(mn.TRAIN_TOKENS).inc(int(event.get("tokens", 0)))
            registry.histogram(mn.TRAIN_LOSS).observe(
                float(event.get("loss", 0.0)))
            registry.histogram(mn.TRAIN_TOKENS_PER_SEC).observe(
                float(event.get("tokens_per_sec", 0.0)))
            registry.histogram(mn.TRAIN_STEP_WALL_S).observe(
                float(event.get("wall_s", 0.0)))
            registry.gauge(mn.TRAIN_STEP).set(int(event.get("step", 0)))
        elif kind:
            registry.counter(mn.train_event(kind)).inc()
            registry.emit(kind,
                          **{k: v for k, v in event.items() if k != "kind"})
    return registry


def merge_hit_stats(stats: Iterable[dict]) -> dict:
    """Combine per-tier ``{"hits": .., "misses": ..}`` dicts into one.

    Used to aggregate the in-memory :class:`~repro.service.CachedProvider`
    tier with the persistent store tier for the overall hit rate reported
    by ``python -m repro serve --stats``.
    """
    hits = sum(int(s.get("hits", 0)) for s in stats)
    misses = sum(int(s.get("misses", 0)) for s in stats)
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / total if total else 0.0,
    }
