"""Single source of truth for metric-name strings.

Every metric emitted through :class:`repro.serving.metrics.MetricsRegistry`
is named here — dashboards, alerts, and tests key on these strings, so a
drifted copy (a typo'd literal in an emitting module) silently charts a
metric nobody emits.  The ``RL007`` lint rule rejects metric-shaped
literals anywhere else in ``src/repro``; import the constant, or use the
``*_for``/``train_event`` helpers for per-operation families.

Naming convention: ``serving.*`` for the online stack (service facade,
micro-batcher, worker pool, stdin loop), ``netserve.*`` for the TCP
socket frontend (connections, tenancy, admission control), ``index.*``
for the ANN retrieval tier (:mod:`repro.index`), and ``train.*`` for
metrics replayed from the training runtime's journal.
"""

from __future__ import annotations

# -- service facade (repro.serving.service) ---------------------------
SERVING_REQUESTS = "serving.requests"
SERVING_LATENCY = "serving.latency"
SERVING_BUDGET_EXHAUSTED = "serving.budget_exhausted"
SERVING_TIMEOUTS = "serving.timeouts"
SERVING_DEADLINE_REMAINING = "serving.deadline_remaining"
SERVING_ERRORS = "serving.errors"
SERVING_RETRIES = "serving.retries"
SERVING_FALLBACKS = "serving.fallbacks"
SERVING_FIT = "serving.fit"

# -- HTTP server (repro.serving.server) -------------------------------
SERVING_BAD_REQUESTS = "serving.bad_requests"

# -- micro-batcher (repro.serving.batcher) ----------------------------
BATCHER_REQUESTS = "serving.batcher.requests"
BATCHER_QUEUE_DEPTH = "serving.batcher.queue_depth"
BATCHER_DROPPED_NAMES = "serving.batcher.dropped_names"
BATCHER_FAST_FAILS = "serving.batcher.fast_fails"
BATCHER_ERRORS = "serving.batcher.errors"
BATCHER_BATCHES = "serving.batcher.batches"
BATCHER_NAMES = "serving.batcher.names"
BATCHER_BATCH_SIZE = "serving.batcher.batch_size"
BATCHER_FLUSH_LATENCY = "serving.batcher.flush_latency"
BATCHER_HUNG_FLUSH_THREADS = "serving.batcher.hung_flush_threads"
BATCHER_RECOVERED_FLUSHES = "serving.batcher.recovered_flushes"
SERVING_ABANDONED_WAITS = "serving.abandoned_waits"
SERVING_HUNG_FLUSHES = "serving.hung_flushes"

# -- cancellable worker pool (repro.serving.pool) ---------------------
POOL_HUNG_THREADS = "serving.pool.hung_threads"
POOL_REPLACEMENTS = "serving.pool.replacements"
POOL_SKIPPED = "serving.pool.skipped"
POOL_RECOVERED = "serving.pool.recovered"

# -- socket frontend (repro.netserve) ---------------------------------
#: lifetime accepted TCP connections
NETSERVE_CONNECTIONS = "netserve.connections"
#: currently open connections (gauge)
NETSERVE_ACTIVE_CONNECTIONS = "netserve.active_connections"
#: requests read off sockets (before auth/admission)
NETSERVE_REQUESTS = "netserve.requests"
#: lines that failed JSON parsing / were not objects
NETSERVE_PROTOCOL_ERRORS = "netserve.protocol_errors"
#: requests with an unknown or missing API key
NETSERVE_AUTH_FAILURES = "netserve.auth_failures"
#: requests past every admission gate
NETSERVE_ADMITTED = "netserve.admitted"
#: requests rejected by admission control (see ``rejections_for``)
NETSERVE_REJECTIONS = "netserve.rejections"
#: admitted requests currently executing (gauge)
NETSERVE_INFLIGHT = "netserve.inflight"
#: end-to-end request latency on the socket path (histogram)
NETSERVE_LATENCY = "netserve.latency"
#: requests answered with the draining envelope during shutdown
NETSERVE_DRAINING_REJECTS = "netserve.draining_rejects"
#: graceful drains initiated (SIGTERM / close)
NETSERVE_DRAINS = "netserve.drains"

# -- ANN retrieval tier (repro.index via the service facade) ----------
#: retrieval queries answered (one per query vector)
INDEX_QUERIES = "index.queries"
#: index-query latency, embed excluded (histogram)
INDEX_QUERY_LATENCY = "index.query_latency"
#: rows folded into shards by flushes through the service
INDEX_FLUSHED_ROWS = "index.flushed_rows"

# -- training-journal replay (repro.serving.metrics.replay_journal) ---
TRAIN_STEPS = "train.steps"
TRAIN_TOKENS = "train.tokens"
TRAIN_LOSS = "train.loss"
TRAIN_TOKENS_PER_SEC = "train.tokens_per_sec"
TRAIN_STEP_WALL_S = "train.step_wall_s"
TRAIN_STEP = "train.step"
TRAIN_EVENTS = "train.events"


# -- per-operation families -------------------------------------------
def requests_for(op: str) -> str:
    """Per-operation request counter, e.g. ``serving.requests.embed``."""
    return f"{SERVING_REQUESTS}.{op}"


def latency_for(op: str) -> str:
    """Per-operation latency histogram, e.g. ``serving.latency.embed``."""
    return f"{SERVING_LATENCY}.{op}"


def fit_for(op: str) -> str:
    """Lazy-fit event name, e.g. ``serving.fit.rca``."""
    return f"{SERVING_FIT}.{op}"


def train_event(kind: str) -> str:
    """Journal-event counter, e.g. ``train.events.snapshot``."""
    return f"{TRAIN_EVENTS}.{kind}"


def rejections_for(code: str) -> str:
    """Per-reason admission-rejection counter, e.g.
    ``netserve.rejections.rate_limit``."""
    return f"{NETSERVE_REJECTIONS}.{code}"


__all__ = [
    "BATCHER_BATCHES",
    "BATCHER_BATCH_SIZE",
    "BATCHER_DROPPED_NAMES",
    "BATCHER_ERRORS",
    "BATCHER_FAST_FAILS",
    "BATCHER_FLUSH_LATENCY",
    "BATCHER_HUNG_FLUSH_THREADS",
    "BATCHER_NAMES",
    "BATCHER_QUEUE_DEPTH",
    "BATCHER_RECOVERED_FLUSHES",
    "BATCHER_REQUESTS",
    "INDEX_FLUSHED_ROWS",
    "INDEX_QUERIES",
    "INDEX_QUERY_LATENCY",
    "NETSERVE_ACTIVE_CONNECTIONS",
    "NETSERVE_ADMITTED",
    "NETSERVE_AUTH_FAILURES",
    "NETSERVE_CONNECTIONS",
    "NETSERVE_DRAINING_REJECTS",
    "NETSERVE_DRAINS",
    "NETSERVE_INFLIGHT",
    "NETSERVE_LATENCY",
    "NETSERVE_PROTOCOL_ERRORS",
    "NETSERVE_REJECTIONS",
    "NETSERVE_REQUESTS",
    "POOL_HUNG_THREADS",
    "POOL_RECOVERED",
    "POOL_REPLACEMENTS",
    "POOL_SKIPPED",
    "SERVING_ABANDONED_WAITS",
    "SERVING_BAD_REQUESTS",
    "SERVING_BUDGET_EXHAUSTED",
    "SERVING_DEADLINE_REMAINING",
    "SERVING_ERRORS",
    "SERVING_FALLBACKS",
    "SERVING_FIT",
    "SERVING_HUNG_FLUSHES",
    "SERVING_LATENCY",
    "SERVING_REQUESTS",
    "SERVING_RETRIES",
    "SERVING_TIMEOUTS",
    "TRAIN_EVENTS",
    "TRAIN_LOSS",
    "TRAIN_STEP",
    "TRAIN_STEPS",
    "TRAIN_STEP_WALL_S",
    "TRAIN_TOKENS",
    "TRAIN_TOKENS_PER_SEC",
    "fit_for",
    "latency_for",
    "rejections_for",
    "requests_for",
    "train_event",
]
