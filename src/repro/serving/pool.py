"""Bounded-leak worker pool for the façade's timeout/retry policy.

``concurrent.futures.ThreadPoolExecutor`` is the wrong tool under a
provider that can hang: ``future.cancel()`` cannot stop running work, a
hung call permanently consumes one of the pool's threads (eight hung
requests deadlock every subsequent call), and the executor's non-daemon
threads are joined at interpreter exit — so a wedged provider also makes
the *process* unkillable by anything short of SIGKILL.

:class:`CancellableWorkerPool` is the shape the serving stack actually
needs:

* **daemon threads** — a hung provider can never block interpreter exit;
* **bounded waits** — callers wait on the returned :class:`Job` with a
  timeout and then :meth:`abandon <Job.abandon>` it, firing its
  :class:`~repro.serving.deadline.CancellationToken`;
* **token-checked workers** — an abandoned job that has not started yet
  is skipped entirely (it fails fast with
  :class:`~repro.serving.deadline.CancelledError` instead of wasting a
  thread);
* **bounded leak** — when a *running* job is abandoned its worker is
  counted in the ``serving.pool.hung_threads`` gauge and a replacement
  worker is spawned (up to ``max_total_threads``) so capacity never
  degrades below ``max_workers``; if the stuck call eventually returns,
  the surplus worker retires itself and the gauge comes back down.
"""

from __future__ import annotations

import queue
import threading

from repro.serving import metric_names as mn
from repro.serving.deadline import CancellationToken, CancelledError
from repro.serving.metrics import MetricsRegistry

_STOP = object()

#: Idle-worker poll interval on the job queue.  Waking to re-check costs
#: a loop iteration; an unbounded ``get()`` would park the worker with no
#: way to bound the wait if a sentinel is ever lost.
_QUEUE_POLL_S = 0.5


class Job:
    """One unit of work submitted to the pool.

    Waiters call :meth:`wait`, then :meth:`result` on success or
    :meth:`abandon` on timeout.  ``abandon`` is what keeps the pool
    healthy: it fires the cancellation token (so a not-yet-started job is
    skipped, and a cooperative running job can wind down) and tells the
    pool to account for — and replace — the worker if one is stuck.
    """

    __slots__ = ("fn", "token", "done", "result_value", "error",
                 "started", "abandoned", "_lock")

    def __init__(self, fn, token: CancellationToken):
        self.fn = fn
        self.token = token
        self.done = threading.Event()
        self.result_value = None
        self.error: BaseException | None = None
        self.started = False
        self.abandoned = False
        self._lock = threading.Lock()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job finishes; False if ``timeout`` elapsed."""
        return self.done.wait(timeout)

    def result(self):
        """The job's return value; re-raises whatever the job raised."""
        if not self.done.is_set():
            raise RuntimeError("job has not completed")
        if self.error is not None:
            raise self.error
        return self.result_value


class CancellableWorkerPool:
    """Fixed-capacity daemon-thread pool that survives hung jobs.

    Parameters
    ----------
    max_workers:
        Target number of concurrently *usable* workers.  A worker stuck
        on an abandoned job stops counting toward this and is replaced.
    max_total_threads:
        Hard cap on threads ever alive at once — the bound on the leak a
        pathological provider can cause.  Submissions still succeed at
        the cap; they just queue until a worker frees up.
    metrics:
        Shared registry for the ``serving.pool.*`` instruments.
    """

    def __init__(self, max_workers: int = 8,
                 max_total_threads: int | None = None,
                 name_prefix: str = "repro-serving",
                 metrics: MetricsRegistry | None = None):
        if max_workers < 1:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self.max_total_threads = max_total_threads or max_workers * 4
        if self.max_total_threads < max_workers:
            raise ValueError("max_total_threads must be >= max_workers")
        self.name_prefix = name_prefix
        self.metrics = metrics or MetricsRegistry()
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._alive = 0          # worker threads currently running
        self._hung = 0           # workers stuck on abandoned jobs
        self._spawned = 0        # lifetime thread count (names/cap)
        self._closed = False
        for _ in range(max_workers):
            self._spawn_locked()

    # ------------------------------------------------------------------
    # Caller side
    # ------------------------------------------------------------------
    def submit(self, fn, token: CancellationToken | None = None) -> Job:
        """Queue ``fn`` for execution; returns its :class:`Job`."""
        if self._closed:
            raise RuntimeError("pool is closed")
        job = Job(fn, token or CancellationToken())
        self._queue.put(job)
        return job

    def abandon(self, job: Job) -> None:
        """Give up on ``job``: cancel its token, replace a stuck worker.

        Safe to call whether or not the job has started; a job that
        already finished is left untouched.
        """
        job.token.cancel()
        # job._lock serializes this against _finish, so the hung gauge
        # moves exactly once per abandon/recover pair (lock order is
        # always job._lock -> self._lock; never the reverse).
        with job._lock:
            if job.done.is_set() or job.abandoned:
                return
            job.abandoned = True
            if not job.started:
                return
            # The worker underneath is now unaccounted-for: note the hang
            # and restore capacity with a fresh thread (bounded).
            with self._lock:
                self._hung += 1
                self.metrics.gauge(mn.POOL_HUNG_THREADS).set(
                    self._hung)
                if (self._alive - self._hung < self.max_workers
                        and self._alive < self.max_total_threads
                        and not self._closed):
                    self._spawn_locked()
                    self.metrics.counter(
                        mn.POOL_REPLACEMENTS).inc()

    def stats(self) -> dict:
        """Live thread accounting (feeds tests and the stats dump)."""
        with self._lock:
            return {
                "alive": self._alive,
                "hung": self._hung,
                "spawned": self._spawned,
                "max_workers": self.max_workers,
                "max_total_threads": self.max_total_threads,
            }

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _spawn_locked(self) -> None:
        self._spawned += 1
        self._alive += 1
        thread = threading.Thread(
            target=self._work,
            name=f"{self.name_prefix}-{self._spawned}",
            daemon=True)
        thread.start()

    def _work(self) -> None:
        while True:
            try:
                item = self._queue.get(timeout=_QUEUE_POLL_S)
            except queue.Empty:
                continue
            if item is _STOP:
                with self._lock:
                    self._alive -= 1
                return
            job: Job = item
            with job._lock:
                if job.token.cancelled:
                    # Skipped before it ever ran: fail fast, keep the
                    # thread for real work.
                    job.error = CancelledError("job cancelled before start")
                    job.done.set()
                    self.metrics.counter(mn.POOL_SKIPPED).inc()
                    continue
                job.started = True
            try:
                job.result_value = job.fn()
            except BaseException as error:  # delivered via Job.result
                job.error = error
            was_abandoned = self._finish(job)
            if was_abandoned and self._retire_surplus():
                return

    def _finish(self, job: Job) -> bool:
        """Mark ``job`` done; returns True if it had been abandoned."""
        with job._lock:
            abandoned = job.abandoned
            if abandoned:
                # This worker was written off as hung but recovered.
                with self._lock:
                    self._hung = max(0, self._hung - 1)
                    self.metrics.gauge(mn.POOL_HUNG_THREADS).set(
                        self._hung)
            job.done.set()
        if abandoned:
            self.metrics.counter(mn.POOL_RECOVERED).inc()
        return abandoned

    def _retire_surplus(self) -> bool:
        """Exit this worker if recovery left more threads than needed."""
        with self._lock:
            if self._alive - self._hung > self.max_workers:
                self._alive -= 1
                return True
        return False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop accepting work and ask idle workers to exit (idempotent).

        Never blocks on hung threads — they are daemons and die with the
        process.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            alive = self._alive
        for _ in range(alive):
            self._queue.put(_STOP)

    def __enter__(self) -> "CancellableWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
