"""Deadlines and cooperative cancellation for the serving stack.

The façade's documented policy — "timeout, bounded retry, fallback" —
only holds if *every* blocking wait under :class:`FaultAnalysisService`
is bounded.  A ``future.result(timeout=...)`` on top of an unbounded
``Event.wait()`` merely abandons the caller's patience, not the work:
the pool thread underneath stays blocked forever, and eight hung
requests deadlock the service (and then block interpreter exit).

This module provides the two primitives that make the policy real:

* :class:`Deadline` — an absolute point on the monotonic clock, created
  once at the edge (one per request attempt) and *propagated* down the
  stack, so every layer waits for ``deadline.remaining()`` instead of
  forever.  Sleeping the budget away in one layer automatically shrinks
  every later wait.
* :class:`CancellationToken` — a cooperative stop flag the waiter flips
  when it gives up, checked by pool workers before (and during) work so
  abandoned jobs are skipped or wound down instead of silently leaking
  a thread.

Both are dependency-free and thread-safe.  The typed exceptions let
callers distinguish "my budget ran out while waiting"
(:class:`DeadlineExceeded`) from "the provider itself is wedged"
(:class:`FlushTimeout`) — the latter is raised *for* every request that
was riding a flush the watchdog had to abandon.
"""

from __future__ import annotations

import math
import threading
import time


class DeadlineExceeded(TimeoutError):
    """A bounded wait ran out of budget before the work completed.

    Raised by waiters (e.g. :meth:`MicroBatcher.encode`) when their
    :class:`Deadline` expires; the underlying work may still complete
    later, but this caller has already deregistered from it.
    """


class FlushTimeout(TimeoutError):
    """A provider flush exceeded the watchdog bound and was abandoned.

    Every :class:`~repro.serving.batcher._Pending` entry riding the hung
    flush fails with this error instead of staying pending forever, so
    waiters wake up and the retry/fallback policy can take over.
    """


class CancelledError(RuntimeError):
    """The job's :class:`CancellationToken` fired before it started."""


class Deadline:
    """An absolute expiry instant on the monotonic clock.

    Create one per request (or per retry attempt) with :meth:`after` and
    pass it down the stack; each layer sizes its waits with
    :meth:`remaining`.  A ``Deadline`` is immutable and safe to share
    across threads.
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float):
        self.expires_at = float(expires_at)

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now (monotonic)."""
        if seconds < 0:
            raise ValueError("deadline must not start in the past")
        return cls(time.monotonic() + seconds)

    @classmethod
    def never(cls) -> "Deadline":
        """A deadline that never expires (unbounded waits)."""
        return cls(math.inf)

    def remaining(self) -> float:
        """Seconds left before expiry, floored at 0 (``inf`` for never)."""
        return max(0.0, self.expires_at - time.monotonic())

    def expired(self) -> bool:
        """Whether the deadline has passed."""
        return time.monotonic() >= self.expires_at

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        if self.expired():
            raise DeadlineExceeded(f"{what} exceeded its deadline")

    def wait_timeout(self) -> float | None:
        """``remaining()`` shaped for ``Event.wait`` (None = unbounded)."""
        return None if math.isinf(self.expires_at) else self.remaining()

    def __repr__(self) -> str:  # pragma: no cover — debug aid
        if math.isinf(self.expires_at):
            return "Deadline(never)"
        return f"Deadline(remaining={self.remaining():.3f}s)"


class CancellationToken:
    """Cooperative cancellation flag shared between a waiter and a worker.

    The waiter calls :meth:`cancel` when it stops caring about the
    result (deadline expiry, shutdown); workers poll :attr:`cancelled`
    (or call :meth:`raise_if_cancelled`) at their check-points.  Firing
    the token never interrupts running code — it only asks.
    """

    __slots__ = ("_event",)

    def __init__(self):
        self._event = threading.Event()

    def cancel(self) -> None:
        """Flip the flag (idempotent)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.is_set()

    def raise_if_cancelled(self) -> None:
        """Raise :class:`CancelledError` if the token has fired."""
        if self._event.is_set():
            raise CancelledError("operation was cancelled")
