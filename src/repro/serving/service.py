"""`FaultAnalysisService`: one façade over embedding + RCA / EAP / FCT.

Composes the serving stack the rest of :mod:`repro.serving` provides::

    caller ──▶ FaultAnalysisService.embed
                  │  timeout / bounded retry with backoff / fallback
                  ▼
               MicroBatcher  (coalesce + cross-request dedup)
                  ▼
               PersistentProvider ──▶ EmbeddingStore (LRU + disk log)
                  ▼
               primary EmbeddingProvider (the frozen encoder)

Task calls (:meth:`rank_root_causes`, :meth:`propagate_alarms`,
:meth:`classify_fault`) route through lazily-fitted adapters from
``repro.tasks.*.serve``; the embeddings they consume travel the same
pipeline, so they hit the same caches and metrics.

Degradation policy: a primary call that exceeds ``timeout_s`` (or raises)
is retried up to ``max_retries`` times with exponential backoff; once
retries are exhausted the service answers from the ``fallback`` provider
when one is configured (counted in ``serving.fallbacks``), else raises
:class:`ServingError`.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.serving.batcher import MicroBatcher
from repro.serving.metrics import MetricsRegistry, merge_hit_stats
from repro.serving.store import EmbeddingStore, PersistentProvider
from repro.service.cache import CachedProvider
from repro.service.providers import EmbeddingProvider


class ServingError(RuntimeError):
    """Primary provider failed and no fallback could answer."""


@dataclass
class ServiceConfig:
    """Operational knobs for :class:`FaultAnalysisService`."""

    #: flush a batch at this many pending unique names
    max_batch_size: int = 32
    #: ... or when the oldest pending name has waited this long
    max_wait_ms: float = 5.0
    #: per-call wall-clock budget for one primary attempt (seconds)
    timeout_s: float = 30.0
    #: additional attempts after the first failed/timed-out one
    max_retries: int = 2
    #: first retry sleeps this long; doubles per attempt
    backoff_s: float = 0.05
    #: capacity of the store's in-memory LRU tier
    lru_capacity: int = 4096

    def __post_init__(self):
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")


class FaultAnalysisService:
    """Batched, cached, observable front-end over a frozen encoder.

    Parameters
    ----------
    provider:
        The primary encoder (any :class:`EmbeddingProvider`).
    fallback:
        Optional cheaper provider answering when the primary is exhausted
        (timeouts/errors after retries) — e.g. a
        :class:`~repro.service.WordEmbeddingProvider` of the same ``dim``.
    store_dir:
        Directory for the persistent embedding store; ``None`` serves
        purely from memory.
    fingerprint:
        Version key for the store — pass
        :func:`repro.models.checkpoint.checkpoint_fingerprint` (or
        ``model_fingerprint``) output so re-training invalidates old
        vectors.
    mode:
        Data-mode component of the store key (matches the provider's
        ``mode`` when it has one).
    rca / eap / fct:
        Optional task adapters (``repro.tasks.*.serve``); fitted lazily on
        first use with embeddings drawn through this service.
    """

    def __init__(self, provider: EmbeddingProvider, *,
                 fallback: EmbeddingProvider | None = None,
                 config: ServiceConfig | None = None,
                 metrics: MetricsRegistry | None = None,
                 store_dir=None, fingerprint: str = "unversioned",
                 mode: str | None = None,
                 rca=None, eap=None, fct=None):
        self.config = config or ServiceConfig()
        self.metrics = metrics or MetricsRegistry()
        self.fallback = fallback
        self.rca = rca
        self.eap = eap
        self.fct = fct
        if fallback is not None and fallback.dim != provider.dim:
            raise ValueError("fallback dim must match the primary provider")

        self.store: EmbeddingStore | None = None
        stack: EmbeddingProvider = provider
        if store_dir is not None:
            self.store = EmbeddingStore(
                store_dir, fingerprint=fingerprint, label=provider.label,
                mode=mode or getattr(provider, "mode", "name"),
                lru_capacity=self.config.lru_capacity)
            stack = PersistentProvider(stack, self.store)
        else:
            stack = CachedProvider(stack)
        self._cache = stack
        self.batcher = MicroBatcher(stack,
                                    max_batch_size=self.config.max_batch_size,
                                    max_wait_ms=self.config.max_wait_ms,
                                    metrics=self.metrics)
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=8, thread_name_prefix="repro-serving")
        self._fit_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Resilience plumbing
    # ------------------------------------------------------------------
    def _call_with_policy(self, op: str, primary, fallback=None):
        """Timeout + bounded retry with backoff + graceful degradation."""
        self.metrics.counter("serving.requests").inc()
        self.metrics.counter(f"serving.requests.{op}").inc()
        attempts = self.config.max_retries + 1
        last_error: BaseException | None = None
        with self.metrics.time("serving.latency"):
            for attempt in range(attempts):
                future = self._pool.submit(primary)
                try:
                    with self.metrics.time(f"serving.latency.{op}"):
                        return future.result(timeout=self.config.timeout_s)
                except concurrent.futures.TimeoutError as error:
                    future.cancel()
                    last_error = error
                    self.metrics.counter("serving.timeouts").inc()
                    self.metrics.emit("timeout", op=op, attempt=attempt)
                except Exception as error:  # noqa: BLE001 — retried below
                    last_error = error
                    self.metrics.counter("serving.errors").inc()
                    self.metrics.emit("error", op=op, attempt=attempt,
                                      error=repr(error))
                if attempt < attempts - 1:
                    self.metrics.counter("serving.retries").inc()
                    time.sleep(self.config.backoff_s * (2 ** attempt))
            if fallback is not None:
                self.metrics.counter("serving.fallbacks").inc()
                self.metrics.emit("fallback", op=op)
                return fallback()
            raise ServingError(
                f"{op} failed after {attempts} attempt(s)") from last_error

    # ------------------------------------------------------------------
    # Embedding
    # ------------------------------------------------------------------
    def embed(self, names: list[str]) -> np.ndarray:
        """Service embeddings for ``names`` through the full stack."""
        fallback = None
        if self.fallback is not None:
            fallback = lambda: self.fallback.encode_names(names)  # noqa: E731
        return self._call_with_policy(
            "embed", lambda: self.batcher.encode(names), fallback)

    # ------------------------------------------------------------------
    # Fault-analysis calls
    # ------------------------------------------------------------------
    def _fitted(self, adapter, op: str):
        """Fit ``adapter`` on first use (embeddings via this service)."""
        if adapter is None:
            raise ValueError(f"no {op} adapter configured on this service")
        with self._fit_lock:
            if not adapter.fitted:
                with self.metrics.time(f"serving.fit.{op}"):
                    adapter.fit(self.embed(adapter.event_names))
                self.metrics.emit("adapter_fitted", op=op)
        return adapter

    def rank_root_causes(self, state, top_k: int | None = None
                         ) -> list[tuple[str, float]]:
        """RCA: nodes of ``state`` ranked most-likely-root first."""
        adapter = self._fitted(self.rca, "rca")
        ranking = self._call_with_policy(
            "rank_root_causes", lambda: adapter.rank(state))
        return ranking[:top_k] if top_k is not None else ranking

    def propagate_alarms(self, pairs) -> list[dict]:
        """EAP: trigger verdict + confidence for each candidate pair."""
        adapter = self._fitted(self.eap, "eap")
        return self._call_with_policy(
            "propagate_alarms", lambda: adapter.predict(pairs))

    def classify_fault(self, alarm_name: str, top_k: int = 5) -> list[dict]:
        """FCT: most plausible next-hop alarms for ``alarm_name``."""
        adapter = self._fitted(self.fct, "fct")
        return self._call_with_policy(
            "classify_fault", lambda: adapter.trace(alarm_name, top_k=top_k))

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Request counts, cache hit rate, latency percentiles, tiers."""
        snapshot = self.metrics.snapshot()
        tiers = [self._cache.stats()] if hasattr(self._cache, "stats") else []
        latency = snapshot["histograms"].get(
            "serving.latency", {"count": 0, "mean": 0.0,
                                "p50": 0.0, "p95": 0.0, "p99": 0.0})
        return {
            "requests": snapshot["counters"].get("serving.requests", 0),
            "cache": merge_hit_stats(tiers),
            "latency": latency,
            "batcher": self.batcher.stats(),
            "store": self.store.stats() if self.store else None,
            "metrics": snapshot,
        }

    def close(self) -> None:
        """Stop the batcher worker and the retry pool (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.batcher.close()
        self._pool.shutdown(wait=False)

    def __enter__(self) -> "FaultAnalysisService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
