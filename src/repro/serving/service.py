"""`FaultAnalysisService`: one façade over embedding + RCA / EAP / FCT.

Composes the serving stack the rest of :mod:`repro.serving` provides::

    caller ──▶ FaultAnalysisService.embed
                  │  deadline / bounded retry with backoff / fallback
                  ▼
               MicroBatcher  (coalesce + cross-request dedup,
                  │           deadline-aware waits, flush watchdog)
                  ▼
               PersistentProvider ──▶ EmbeddingStore (LRU + disk log)
                  ▼
               primary EmbeddingProvider (the frozen encoder)

Task calls (:meth:`rank_root_causes`, :meth:`propagate_alarms`,
:meth:`classify_fault`) route through lazily-fitted adapters from
``repro.tasks.*.serve``; the embeddings they consume travel the same
pipeline, so they hit the same caches and metrics.

Degradation policy: every request carries a total budget of
``timeout_s × (max_retries + 1)`` plus backoff.  Each attempt gets a
:class:`~repro.serving.deadline.Deadline` of at most ``timeout_s``
(clipped to the remaining budget) that is *propagated into* the batcher,
so waits underneath are cooperative: a hung provider makes the attempt
fail with a typed timeout and releases its pool thread instead of
leaking it.  Exhausted budget falls back to the ``fallback`` provider
when one is configured (counted in ``serving.fallbacks``), else raises
:class:`ServingError`.  ``close()`` is bounded by ``close_timeout_s``
and never blocks on a wedged provider — hung threads are daemons and
cannot block interpreter exit.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.serving import metric_names as mn
from repro.serving.batcher import MicroBatcher
from repro.serving.deadline import (
    CancellationToken,
    Deadline,
    DeadlineExceeded,
    FlushTimeout,
)
from repro.serving.metrics import MetricsRegistry, merge_hit_stats
from repro.serving.pool import CancellableWorkerPool
from repro.serving.store import EmbeddingStore, PersistentProvider
from repro.service.cache import CachedProvider
from repro.service.providers import EmbeddingProvider

#: Grace added to the *external* wait on a pool job beyond the attempt
#: deadline, so a cooperative primary (which times out internally at the
#: deadline) gets to raise its own typed error before the waiter writes
#: the thread off as hung.
_ATTEMPT_GRACE_S = 0.25


class ServingError(RuntimeError):
    """Primary provider failed and no fallback could answer."""


@dataclass
class ServiceConfig:
    """Operational knobs for :class:`FaultAnalysisService`."""

    #: flush a batch at this many pending unique names
    max_batch_size: int = 32
    #: ... or when the oldest pending name has waited this long
    max_wait_ms: float = 5.0
    #: per-call wall-clock budget for one primary attempt (seconds)
    timeout_s: float = 30.0
    #: additional attempts after the first failed/timed-out one
    max_retries: int = 2
    #: first retry sleeps this long; doubles per attempt
    backoff_s: float = 0.05
    #: capacity of the store's in-memory LRU tier
    lru_capacity: int = 4096
    #: watchdog bound on one provider flush inside the batcher;
    #: ``None`` inherits ``timeout_s``
    flush_timeout_s: float | None = None
    #: upper bound on how long :meth:`FaultAnalysisService.close` blocks
    close_timeout_s: float = 5.0
    #: concurrent primary attempts the retry pool can run
    max_workers: int = 8
    #: circuit-breaker: with this many provider flushes wedged, further
    #: flushes fail fast instead of stacking more hung threads
    max_hung_flushes: int = 8

    def __post_init__(self):
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.flush_timeout_s is not None and self.flush_timeout_s <= 0:
            raise ValueError("flush_timeout_s must be positive")
        if self.close_timeout_s <= 0:
            raise ValueError("close_timeout_s must be positive")
        if self.max_workers < 1:
            raise ValueError("max_workers must be positive")
        if self.max_hung_flushes < 1:
            raise ValueError("max_hung_flushes must be positive")

    @property
    def effective_flush_timeout_s(self) -> float:
        """The watchdog bound actually armed on the batcher."""
        return (self.timeout_s if self.flush_timeout_s is None
                else self.flush_timeout_s)

    def total_budget_s(self) -> float:
        """Worst-case wall clock for one request: attempts + backoff."""
        attempts = self.max_retries + 1
        backoff = sum(self.backoff_s * (2 ** a)
                      for a in range(self.max_retries))
        return self.timeout_s * attempts + backoff


class FaultAnalysisService:
    """Batched, cached, observable front-end over a frozen encoder.

    Parameters
    ----------
    provider:
        The primary encoder (any :class:`EmbeddingProvider`).
    fallback:
        Optional cheaper provider answering when the primary is exhausted
        (timeouts/errors after retries) — e.g. a
        :class:`~repro.service.WordEmbeddingProvider` of the same ``dim``.
    store_dir:
        Directory for the persistent embedding store; ``None`` serves
        purely from memory.
    fingerprint:
        Version key for the store — pass
        :func:`repro.models.checkpoint.checkpoint_fingerprint` (or
        ``model_fingerprint``) output so re-training invalidates old
        vectors.
    mode:
        Data-mode component of the store key (matches the provider's
        ``mode`` when it has one).
    rca / eap / fct:
        Optional task adapters (``repro.tasks.*.serve``); fitted lazily on
        first use with embeddings drawn through this service.
    index:
        Optional :class:`~repro.index.VectorIndex` enabling
        :meth:`retrieve`.  The provider stack is wrapped in an
        :class:`~repro.index.IndexedEmbeddingProvider` so every encode
        keeps the index in sync, and task adapters get a retriever for
        candidate generation.  Must carry the service's fingerprint.
    """

    def __init__(self, provider: EmbeddingProvider, *,
                 fallback: EmbeddingProvider | None = None,
                 config: ServiceConfig | None = None,
                 metrics: MetricsRegistry | None = None,
                 store_dir=None, fingerprint: str = "unversioned",
                 mode: str | None = None,
                 rca=None, eap=None, fct=None, index=None):
        self.config = config or ServiceConfig()
        self.metrics = metrics or MetricsRegistry()
        self.fallback = fallback
        self.rca = rca
        self.eap = eap
        self.fct = fct
        if fallback is not None and fallback.dim != provider.dim:
            raise ValueError("fallback dim must match the primary provider")

        self.store: EmbeddingStore | None = None
        stack: EmbeddingProvider = provider
        if store_dir is not None:
            self.store = EmbeddingStore(
                store_dir, fingerprint=fingerprint, label=provider.label,
                mode=mode or getattr(provider, "mode", "name"),
                lru_capacity=self.config.lru_capacity)
            stack = PersistentProvider(stack, self.store)
        else:
            stack = CachedProvider(stack)
        self._cache = stack
        self.index = index
        self._retriever = None
        if index is not None:
            # Local import: repro.index imports repro.serving at module
            # level, so the reverse edge must stay call-time only.
            from repro.index.provider import IndexedEmbeddingProvider

            self._retriever = IndexedEmbeddingProvider(
                stack, index, store=self.store)
            self._retriever.ensure_indexed()
            stack = self._retriever
            for adapter in (rca, eap, fct):
                attach = getattr(adapter, "attach_retriever", None)
                if callable(attach):
                    attach(self._retriever)
        self.batcher = MicroBatcher(
            stack,
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms,
            flush_timeout_s=self.config.effective_flush_timeout_s,
            max_hung_flushes=self.config.max_hung_flushes,
            metrics=self.metrics)
        self._pool = CancellableWorkerPool(
            max_workers=self.config.max_workers,
            name_prefix="repro-serving", metrics=self.metrics)
        self._fit_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Resilience plumbing
    # ------------------------------------------------------------------
    def _call_with_policy(self, op: str, primary, fallback=None,
                          deadline: Deadline | None = None):
        """Deadline + bounded retry with backoff + graceful degradation.

        ``primary`` is called as ``primary(deadline, token)`` on a pool
        worker; deadline-aware primaries (the embed path) honour the
        budget cooperatively and release their thread, others are bounded
        by the external wait and written off as hung if they overrun.

        A caller-supplied ``deadline`` (e.g. the per-request budget a
        network frontend issued at admission) *caps* the configured
        budget: the overall budget is the smaller of
        ``config.total_budget_s()`` and the deadline's remaining time, so
        an end-to-end budget propagates through every retry and wait.
        An already-expired deadline degrades immediately (fallback or
        :class:`ServingError`) without touching the provider.
        """
        self.metrics.counter(mn.SERVING_REQUESTS).inc()
        self.metrics.counter(mn.requests_for(op)).inc()
        attempts = self.config.max_retries + 1
        budget_s = self.config.total_budget_s()
        if deadline is not None:
            budget_s = min(budget_s, deadline.remaining())
        overall = Deadline.after(budget_s)
        last_error: BaseException | None = None
        with self.metrics.time(mn.SERVING_LATENCY):
            for attempt in range(attempts):
                remaining = overall.remaining()
                if remaining <= 0:
                    # Budget already spent (e.g. by earlier slow attempts
                    # plus backoff): degrade now instead of queueing more
                    # work behind a stuck provider.
                    self.metrics.counter(mn.SERVING_BUDGET_EXHAUSTED).inc()
                    break
                deadline = Deadline.after(
                    min(self.config.timeout_s, remaining))
                token = CancellationToken()
                job = self._pool.submit(
                    lambda d=deadline, t=token: primary(d, t), token=token)
                timed_out = not job.wait(
                    deadline.remaining() + _ATTEMPT_GRACE_S)
                if timed_out:
                    self._pool.abandon(job)
                    last_error = DeadlineExceeded(
                        f"{op} attempt exceeded "
                        f"{self.config.timeout_s:g}s")
                    self.metrics.counter(mn.SERVING_TIMEOUTS).inc()
                    self.metrics.emit("timeout", op=op, attempt=attempt)
                else:
                    try:
                        with self.metrics.time(mn.latency_for(op)):
                            # repro-lint: allow[RL002] wait() above already bounded this attempt; result() raises unless the job settled
                            result = job.result()
                        self.metrics.histogram(
                            mn.SERVING_DEADLINE_REMAINING).observe(
                            overall.remaining())
                        return result
                    except (DeadlineExceeded, FlushTimeout) as error:
                        last_error = error
                        self.metrics.counter(mn.SERVING_TIMEOUTS).inc()
                        self.metrics.emit("timeout", op=op, attempt=attempt,
                                          error=repr(error))
                    except Exception as error:  # noqa: BLE001 — retried
                        last_error = error
                        self.metrics.counter(mn.SERVING_ERRORS).inc()
                        self.metrics.emit("error", op=op, attempt=attempt,
                                          error=repr(error))
                if attempt < attempts - 1:
                    self.metrics.counter(mn.SERVING_RETRIES).inc()
                    backoff = self.config.backoff_s * (2 ** attempt)
                    time.sleep(min(backoff, overall.remaining()))
            if fallback is not None:
                self.metrics.counter(mn.SERVING_FALLBACKS).inc()
                self.metrics.emit("fallback", op=op)
                return fallback()
            raise ServingError(
                f"{op} failed after {attempts} attempt(s)") from last_error

    # ------------------------------------------------------------------
    # Embedding
    # ------------------------------------------------------------------
    def embed(self, names: list[str],
              deadline: Deadline | None = None) -> np.ndarray:
        """Service embeddings for ``names`` through the full stack.

        ``deadline`` (optional) caps the total budget — see
        :meth:`_call_with_policy`.
        """
        fallback = None
        if self.fallback is not None:
            fallback = lambda: self.fallback.encode_names(names)  # noqa: E731

        def primary(attempt_deadline: Deadline, token: CancellationToken):
            token.raise_if_cancelled()
            return self.batcher.encode(names, deadline=attempt_deadline)

        return self._call_with_policy("embed", primary, fallback,
                                      deadline=deadline)

    # ------------------------------------------------------------------
    # Fault-analysis calls
    # ------------------------------------------------------------------
    def _fitted(self, adapter, op: str):
        """Fit ``adapter`` on first use (embeddings via this service).

        The embed runs *outside* ``_fit_lock`` (double-checked): a slow or
        hung first encode must not serialize every other task call behind
        the lock.  Concurrent first calls may both pay for the embed; the
        re-check under the lock makes exactly one of them fit the adapter
        (same liveness-over-dedup trade as ``CachedProvider``).
        """
        if adapter is None:
            raise ValueError(f"no {op} adapter configured on this service")
        with self._fit_lock:
            if adapter.fitted:
                return adapter
        with self.metrics.time(mn.fit_for(op)):
            vectors = self.embed(adapter.event_names)
            with self._fit_lock:
                if not adapter.fitted:
                    adapter.fit(vectors)
                    self.metrics.emit("adapter_fitted", op=op)
        return adapter

    def rank_root_causes(self, state, top_k: int | None = None,
                         deadline: Deadline | None = None
                         ) -> list[tuple[str, float]]:
        """RCA: nodes of ``state`` ranked most-likely-root first."""
        adapter = self._fitted(self.rca, "rca")
        ranking = self._call_with_policy(
            "rank_root_causes", lambda d, t: adapter.rank(state),
            deadline=deadline)
        return ranking[:top_k] if top_k is not None else ranking

    def propagate_alarms(self, pairs,
                         deadline: Deadline | None = None) -> list[dict]:
        """EAP: trigger verdict + confidence for each candidate pair."""
        adapter = self._fitted(self.eap, "eap")
        return self._call_with_policy(
            "propagate_alarms", lambda d, t: adapter.predict(pairs),
            deadline=deadline)

    def classify_fault(self, alarm_name: str, top_k: int = 5,
                       deadline: Deadline | None = None) -> list[dict]:
        """FCT: most plausible next-hop alarms for ``alarm_name``."""
        adapter = self._fitted(self.fct, "fct")
        return self._call_with_policy(
            "classify_fault", lambda d, t: adapter.trace(alarm_name,
                                                         top_k=top_k),
            deadline=deadline)

    # ------------------------------------------------------------------
    # Retrieval (ANN index tier)
    # ------------------------------------------------------------------
    def retrieve(self, names: list[str], k: int = 10,
                 nprobe: int | None = None,
                 deadline: Deadline | None = None) -> list[list[dict]]:
        """Top-``k`` nearest stored entities for each of ``names``.

        Embeds ``names`` through the full serving stack (batching, store,
        retries — deadline-aware), then answers from the ANN index; the
        remaining budget is re-checked between the two stages so a slow
        embed cannot push the query past its deadline.
        """
        if self.index is None:
            raise ValueError("no vector index configured on this service")
        vectors = self.embed(names, deadline=deadline)
        if deadline is not None and deadline.remaining() <= 0:
            self.metrics.counter(mn.SERVING_BUDGET_EXHAUSTED).inc()
            raise DeadlineExceeded("retrieve: budget spent during embed")

        def run(attempt_deadline: Deadline, token: CancellationToken):
            token.raise_if_cancelled()
            with self.metrics.time(mn.INDEX_QUERY_LATENCY):
                hits = self.index.query(vectors, k=k, nprobe=nprobe)
            self.metrics.counter(mn.INDEX_QUERIES).inc(len(hits))
            return [[{"name": name, "score": round(score, 6)}
                     for name, score in per_query] for per_query in hits]

        return self._call_with_policy("retrieve", run, deadline=deadline)

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Request counts, cache hit rate, latency percentiles, tiers."""
        snapshot = self.metrics.snapshot()
        tiers = [self._cache.stats()] if hasattr(self._cache, "stats") else []
        latency = snapshot["histograms"].get(
            mn.SERVING_LATENCY, {"count": 0, "mean": 0.0,
                                 "p50": 0.0, "p95": 0.0, "p99": 0.0})
        return {
            "requests": snapshot["counters"].get(mn.SERVING_REQUESTS, 0),
            "cache": merge_hit_stats(tiers),
            "latency": latency,
            "batcher": self.batcher.stats(),
            "pool": self._pool.stats(),
            "store": self.store.stats() if self.store else None,
            "index": self.index.stats() if self.index else None,
            "metrics": snapshot,
        }

    def close(self) -> None:
        """Stop the batcher worker and the retry pool (idempotent).

        Bounded by ``config.close_timeout_s``: a provider wedged inside a
        flush cannot hold shutdown hostage — its thread is a daemon and
        is simply left behind.
        """
        if self._closed:
            return
        self._closed = True
        self.batcher.close(timeout=self.config.close_timeout_s)
        self._pool.shutdown()
        if self._retriever is not None:
            # Fold any buffered adds into the shards so vectors encoded
            # during this process survive into the next one.
            flushed = self._retriever.flush()
            if flushed:
                self.metrics.counter(mn.INDEX_FLUSHED_ROWS).inc(flushed)

    def __enter__(self) -> "FaultAnalysisService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
