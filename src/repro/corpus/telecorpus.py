"""Tele-Corpus assembly (Sec. III-A).

The paper constitutes 20.33M sentences from product documents and KG entity
surfaces, applying *explicit* augmentation — splicing ranges of adjacent
sentences from the same document — before pre-training (the *implicit*
SimCSE dropout augmentation lives in the model, Sec. III-B).  This module
reproduces the assembly at our scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corpus.documents import ProductDocument, generate_product_documents
from repro.world.world import TelecomWorld


@dataclass
class TeleCorpus:
    """The assembled pre-training corpus."""

    sentences: list[str]
    #: sentences originating from document text (before augmentation)
    document_sentences: list[str] = field(default_factory=list)
    #: entity surface strings contributed by the KG side
    entity_surfaces: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.sentences)

    def sample(self, count: int, rng: np.random.Generator) -> list[str]:
        """Uniformly sample ``count`` sentences (with replacement if needed)."""
        if count <= len(self.sentences):
            idx = rng.choice(len(self.sentences), size=count, replace=False)
        else:
            idx = rng.integers(0, len(self.sentences), size=count)
        return [self.sentences[i] for i in idx]


def splice_adjacent(sentences: list[str], rng: np.random.Generator,
                    num_splices: int, max_span: int = 3) -> list[str]:
    """Explicit augmentation: join spans of adjacent sentences.

    Each splice takes 2..max_span consecutive sentences from the list and
    joins them into one longer training sentence, expanding the dataset the
    way the paper splices adjacent paragraphs.
    """
    if len(sentences) < 2 or num_splices <= 0:
        return []
    spliced: list[str] = []
    for _ in range(num_splices):
        span = int(rng.integers(2, max_span + 1))
        start = int(rng.integers(0, max(len(sentences) - span, 1)))
        spliced.append(" ".join(sentences[start:start + span]))
    return spliced


def build_tele_corpus(world: TelecomWorld, seed: int = 0,
                      augmentation_factor: float = 0.5,
                      documents: list[ProductDocument] | None = None,
                      include_qa_and_cases: bool = True) -> TeleCorpus:
    """Assemble the Tele-Corpus from documents + KG entity surfaces.

    ``augmentation_factor`` controls how many spliced sentences are added
    relative to the base document sentence count.
    ``include_qa_and_cases`` adds the paper's other named corpus sources —
    tele QA pairs, software parameter descriptions, and daily maintenance
    cases (Sec. V-A1).
    """
    rng = np.random.default_rng(seed + 13)
    documents = documents if documents is not None else \
        generate_product_documents(world, seed=seed)

    document_sentences: list[str] = []
    for doc in documents:
        document_sentences.extend(doc.sentences())
    if include_qa_and_cases:
        from repro.corpus.qa import enrich_corpus_sentences

        document_sentences.extend(enrich_corpus_sentences(world, seed=seed))

    entity_surfaces = [e.name for e in world.ontology.events]
    entity_surfaces += [f"{ne} network element" for ne in world.ontology.ne_types]

    spliced: list[str] = []
    for doc in documents:
        doc_sents = doc.sentences()
        count = int(len(doc_sents) * augmentation_factor)
        spliced.extend(splice_adjacent(doc_sents, rng, count))

    sentences = document_sentences + entity_surfaces + spliced
    rng.shuffle(sentences)
    return TeleCorpus(sentences=sentences,
                      document_sentences=document_sentences,
                      entity_surfaces=entity_surfaces)
