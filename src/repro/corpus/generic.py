"""Generic (non-telecom) corpus for the MacBERT stand-in baseline.

The paper compares against MacBERT — a strong general-domain PLM with no
telecom exposure.  We reproduce that comparison point by pre-training the same
architecture on a general corpus: simple everyday-topic sentences that share
function words with the Tele-Corpus but none of its domain structure.
"""

from __future__ import annotations

import numpy as np

_SUBJECTS: tuple[str, ...] = (
    "the museum", "a local library", "the weekend market", "the city park",
    "a small cafe", "the evening train", "the river ferry", "a garden shed",
    "the music school", "an old bridge", "the bakery", "a mountain trail",
    "the bookshop", "a quiet harbour", "the football stadium", "the art studio",
)

_VERBS: tuple[str, ...] = (
    "opens", "closes", "welcomes visitors", "hosts an exhibition",
    "serves fresh bread", "attracts tourists", "remains popular",
    "celebrates its anniversary", "offers free entry", "sells tickets",
    "displays paintings", "organises a concert",
)

_MODIFIERS: tuple[str, ...] = (
    "every morning", "during the summer", "on public holidays",
    "after the renovation", "near the old town", "throughout the season",
    "despite the rain", "for families with children", "until late evening",
    "at the start of spring",
)

_CONNECTED: tuple[str, ...] = (
    "Many people enjoy walking there with friends.",
    "Local guides recommend visiting early to avoid crowds.",
    "The entrance fee supports community projects.",
    "Volunteers help maintain the place all year round.",
    "Photographs of the site appear in travel magazines.",
)


def generate_generic_corpus(num_sentences: int, seed: int = 0) -> list[str]:
    """Generate ``num_sentences`` general-domain sentences deterministically."""
    rng = np.random.default_rng(seed + 555)
    sentences: list[str] = []
    for _ in range(num_sentences):
        if rng.random() < 0.2:
            sentences.append(_CONNECTED[int(rng.integers(len(_CONNECTED)))])
            continue
        subject = _SUBJECTS[int(rng.integers(len(_SUBJECTS)))]
        verb = _VERBS[int(rng.integers(len(_VERBS)))]
        modifier = _MODIFIERS[int(rng.integers(len(_MODIFIERS)))]
        sentence = f"{subject} {verb} {modifier}."
        sentences.append(sentence[0].upper() + sentence[1:])
    return sentences
