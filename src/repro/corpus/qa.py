"""Tele question-answering and maintenance-case corpus generators.

The paper's Tele-Corpus "involves multiple aspects of the tele-domain data,
including tele question answering, software parameter description, daily
maintenance cases" (Sec. V-A1).  The base document generator covers event
descriptions and fault cases; this module adds the remaining named source
types so the assembled corpus has the same compositional structure.
"""

from __future__ import annotations

import numpy as np

from repro.world.configuration import PARAMETER_CATALOG
from repro.world.world import TelecomWorld

_QA_TEMPLATES: tuple[tuple[str, str], ...] = (
    ("What does it mean when {name_lower} is reported on the {ne}?",
     "It indicates a {severity} severity condition detected through the "
     "{iface} interface, and the related KPI trend should be checked."),
    ("How should the on-duty engineer respond to {name_lower}?",
     "Collect the diagnostic logs of the {ne} first, then follow the "
     "handling procedure in the {ne} product fault guide."),
    ("Can {name_lower} clear by itself?",
     "Transient conditions such as congestion may recover automatically, "
     "but a persistent report on the {ne} requires manual intervention."),
)

_PARAM_TEMPLATES: tuple[str, ...] = (
    "The software parameter {param} controls the behaviour of the network "
    "element and accepts values in its engineering range.",
    "Changing {param} requires a configuration audit because inconsistent "
    "entries between peers lead to service degradation.",
    "The recommended value of {param} depends on the deployment scale and "
    "the licensed capacity of the site.",
)

_CASE_TEMPLATES: tuple[str, ...] = (
    "During daily maintenance at {location}, the engineer observed "
    "{name_lower} and restored the service by switching to the standby "
    "unit.",
    "A customer complaint at {location} was traced back to {name_lower}; "
    "after the correction the related KPI returned to its normal range.",
    "The night shift at {location} recorded {name_lower} twice; the case "
    "was closed after a software patch was applied.",
)


def generate_qa_pairs(world: TelecomWorld, seed: int = 0,
                      pairs_per_alarm: int = 1) -> list[str]:
    """Question/answer sentences about catalog alarms."""
    rng = np.random.default_rng(seed + 301)
    sentences: list[str] = []
    for alarm in world.ontology.alarms:
        for _ in range(pairs_per_alarm):
            question, answer = _QA_TEMPLATES[int(rng.integers(len(_QA_TEMPLATES)))]
            context = dict(
                name_lower=alarm.name[0].lower() + alarm.name[1:],
                ne=alarm.ne_type, iface=alarm.interface,
                severity=alarm.severity)
            sentences.append(question.format(**context))
            sentences.append(answer.format(**context))
    return sentences


def generate_parameter_descriptions(seed: int = 0,
                                    per_parameter: int = 2) -> list[str]:
    """Software parameter description sentences."""
    rng = np.random.default_rng(seed + 302)
    sentences: list[str] = []
    for parameter in PARAMETER_CATALOG:
        for _ in range(per_parameter):
            template = _PARAM_TEMPLATES[int(rng.integers(len(_PARAM_TEMPLATES)))]
            sentences.append(template.format(param=parameter))
    return sentences


def generate_maintenance_cases(world: TelecomWorld, seed: int = 0,
                               cases_per_alarm: int = 1) -> list[str]:
    """Daily maintenance case sentences grounded in catalog alarms."""
    from repro.world.ontology import LOCATIONS

    rng = np.random.default_rng(seed + 303)
    sentences: list[str] = []
    for alarm in world.ontology.alarms:
        for _ in range(cases_per_alarm):
            template = _CASE_TEMPLATES[int(rng.integers(len(_CASE_TEMPLATES)))]
            sentences.append(template.format(
                name_lower=alarm.name[0].lower() + alarm.name[1:],
                location=LOCATIONS[int(rng.integers(len(LOCATIONS)))]))
    return sentences


def enrich_corpus_sentences(world: TelecomWorld, seed: int = 0) -> list[str]:
    """All extra corpus sentences: QA + parameter descriptions + cases."""
    return (generate_qa_pairs(world, seed)
            + generate_parameter_descriptions(seed)
            + generate_maintenance_cases(world, seed))
