"""Causal-sentence extraction (Sec. IV-A1).

The paper (i) strips pure identifiers such as ``[KPI] 1929480378``, (ii)
manually curates causal keywords ("affect", "lead to", ...), and (iii)
applies heuristic rules (minimum length) to pull ~200k causal sentences from
the Tele-Corpus.  This module implements that pipeline verbatim at our scale.
"""

from __future__ import annotations

import re
from typing import Iterable

#: Curated causal keywords; matching is case-insensitive on word boundaries.
#: Inflected forms are enumerated explicitly to keep matching transparent.
CAUSAL_KEYWORDS: tuple[str, ...] = (
    "lead to", "leads to", "led to",
    "result in", "results in", "resulted in",
    "cause", "causes", "caused",
    "trigger", "triggers", "triggered",
    "affect", "affects", "affected",
    "give rise to", "gives rise to",
    "bring about", "brings about",
    "due to", "because of", "owing to",
)

#: ``[Alm] ALM-10001`` / ``[KPI] 1929480378`` style identifier prefixes.
_ID_PATTERN = re.compile(
    r"\[(?:Alm|ALM|KPI|Kpi)\]\s*(?:[A-Z]{2,5}-)?\d+\s*", flags=re.IGNORECASE)

_KEYWORD_PATTERNS = [
    re.compile(rf"\b{re.escape(k)}\b", flags=re.IGNORECASE)
    for k in CAUSAL_KEYWORDS
]


def strip_identifiers(sentence: str) -> str:
    """Remove ``[KPI] 1929480378``-style unique identifiers, keeping surfaces."""
    cleaned = _ID_PATTERN.sub("", sentence)
    return re.sub(r"\s{2,}", " ", cleaned).strip()


def contains_causal_keyword(sentence: str) -> bool:
    """True when any curated causal keyword occurs in the sentence."""
    return any(p.search(sentence) for p in _KEYWORD_PATTERNS)


def extract_causal_sentences(sentences: Iterable[str], min_length: int = 6,
                             max_length: int = 128) -> list[str]:
    """Extract causal sentences per the paper's rules.

    Pipeline per sentence: strip identifiers → require a causal keyword →
    require token count in ``[min_length, max_length]``.  Order is preserved
    and duplicates are dropped (first occurrence wins).
    """
    seen: set[str] = set()
    extracted: list[str] = []
    for sentence in sentences:
        cleaned = strip_identifiers(sentence)
        if not cleaned or cleaned in seen:
            continue
        if not contains_causal_keyword(cleaned):
            continue
        token_count = len(cleaned.split())
        if not min_length <= token_count <= max_length:
            continue
        seen.add(cleaned)
        extracted.append(cleaned)
    return extracted
