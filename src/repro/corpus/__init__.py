"""Corpora: product documents, Tele-Corpus, generic corpus, causal extraction.

* :mod:`repro.corpus.documents` — product-document generator (Sec. II-A2):
  event descriptions, fault cases with causal phrasing, handling procedures.
* :mod:`repro.corpus.telecorpus` — Tele-Corpus assembly with the paper's
  explicit augmentation (adjacent-sentence splicing, Sec. III-A).
* :mod:`repro.corpus.generic` — a non-telecom corpus used to pre-train the
  MacBERT stand-in baseline (a general PLM with no tele knowledge).
* :mod:`repro.corpus.causal` — causal-sentence extraction rules (Sec. IV-A1):
  ID stripping, causal-keyword matching, minimum-length constraint.
"""

from repro.corpus.documents import ProductDocument, generate_product_documents
from repro.corpus.telecorpus import TeleCorpus, build_tele_corpus
from repro.corpus.generic import generate_generic_corpus
from repro.corpus.causal import (
    CAUSAL_KEYWORDS,
    extract_causal_sentences,
    strip_identifiers,
)
from repro.corpus.qa import (
    enrich_corpus_sentences,
    generate_maintenance_cases,
    generate_parameter_descriptions,
    generate_qa_pairs,
)

__all__ = [
    "CAUSAL_KEYWORDS",
    "ProductDocument",
    "TeleCorpus",
    "build_tele_corpus",
    "enrich_corpus_sentences",
    "extract_causal_sentences",
    "generate_generic_corpus",
    "generate_maintenance_cases",
    "generate_parameter_descriptions",
    "generate_product_documents",
    "generate_qa_pairs",
    "strip_identifiers",
]
