"""Product-document generator.

Real product documents (Sec. II-A2) contain event descriptions, fault cases,
and handling procedures written by engineers.  We generate the same document
sections from the synthetic world; crucially, the *fault case* sections
verbalise edges of the ground-truth causal graph with causal connectives
("leads to", "results in", ...), so (a) the causal-sentence extractor has
something real to find and (b) a model pre-trained on these documents absorbs
the trigger structure the downstream tasks need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.world.ontology import Alarm, Kpi
from repro.world.world import TelecomWorld

#: Connectives used when verbalising causal edges; all appear in
#: :data:`repro.corpus.causal.CAUSAL_KEYWORDS`.
CAUSAL_CONNECTIVES: tuple[str, ...] = (
    "leads to", "results in", "causes", "triggers", "affects",
    "gives rise to", "brings about",
)

_PROCEDURE_STEPS: tuple[str, ...] = (
    "check the running status of the {ne} board and record the output",
    "run the MML query command on the {ne} to collect diagnostic logs",
    "verify the configuration consistency between the {ne} and its peers",
    "reset the standby unit of the {ne} during the maintenance window",
    "confirm with the network operation centre before isolating the {ne}",
    "observe the related KPI trend for fifteen minutes after recovery",
)

_DESCRIPTION_TEMPLATES: tuple[str, ...] = (
    "{name} is reported by the {ne} through the {iface} interface when the "
    "monitored condition persists beyond the alarm threshold.",
    "When {name_lower} occurs on the {ne}, subscriber services in the region "
    "may degrade until the condition is cleared.",
    "{name} indicates a {severity} severity problem detected on the {iface} "
    "interface of the {ne}.",
)

_KPI_TEMPLATES: tuple[str, ...] = (
    "{name} is measured on the {ne} in {unit} and normally stays between "
    "{low:.1f} and {high:.1f}.",
    "Operators monitor {name_lower} as a key quality indicator of the {ne}; "
    "values outside {low:.1f} to {high:.1f} {unit} require attention.",
)


@dataclass
class ProductDocument:
    """One generated product document."""

    title: str
    product: str
    sections: dict[str, list[str]] = field(default_factory=dict)

    def sentences(self) -> list[str]:
        """All sentences in document order."""
        out: list[str] = []
        for section_sentences in self.sections.values():
            out.extend(section_sentences)
        return out


def _describe_alarm(alarm: Alarm, rng: np.random.Generator) -> str:
    template = _DESCRIPTION_TEMPLATES[int(rng.integers(len(_DESCRIPTION_TEMPLATES)))]
    return template.format(name=alarm.name, name_lower=alarm.name[0].lower() + alarm.name[1:],
                           ne=alarm.ne_type, iface=alarm.interface,
                           severity=alarm.severity)


def _describe_kpi(kpi: Kpi, rng: np.random.Generator) -> str:
    template = _KPI_TEMPLATES[int(rng.integers(len(_KPI_TEMPLATES)))]
    return template.format(name=kpi.name, name_lower=kpi.name[0].lower() + kpi.name[1:],
                           ne=kpi.ne_type, unit=kpi.unit,
                           low=kpi.normal_low, high=kpi.normal_high)


def _fault_case_sentence(source, target, connective: str,
                         with_ids: bool, rng: np.random.Generator) -> str:
    """Verbalise one causal edge as a fault-case sentence."""
    if with_ids:
        src_ref = f"[{'Alm' if source.kind == 'alarm' else 'KPI'}] {source.uid} {source.name}"
        dst_ref = f"[{'Alm' if target.kind == 'alarm' else 'KPI'}] {target.uid} {target.name}"
    else:
        src_ref, dst_ref = source.name, target.name
    variants = (
        f"In the recorded fault case, {src_ref} {connective} {dst_ref} on the "
        f"{target.ne_type} side.",
        f"Field experience shows that {src_ref} usually {connective} {dst_ref}.",
        f"{src_ref} {connective} {dst_ref} when the condition is not cleared "
        f"in time.",
    )
    return variants[int(rng.integers(len(variants)))]


def generate_product_documents(world: TelecomWorld, seed: int = 0,
                               cases_per_edge: int = 2,
                               with_id_probability: float = 0.5) -> list[ProductDocument]:
    """Generate one product document per NE type present in the catalogs.

    Each document has an event-description section, a KPI reference section, a
    fault-case section verbalising the causal edges touching the product, and
    a handling-procedure section.
    """
    rng = np.random.default_rng(seed + 77)
    events = {e.uid: e for e in world.ontology.events}
    docs: list[ProductDocument] = []
    ne_types = sorted({e.ne_type for e in world.ontology.events})
    for ne_type in ne_types:
        alarms = [a for a in world.ontology.alarms if a.ne_type == ne_type]
        kpis = [k for k in world.ontology.kpis if k.ne_type == ne_type]
        descriptions = [_describe_alarm(a, rng) for a in alarms]
        kpi_refs = [_describe_kpi(k, rng) for k in kpis]

        cases: list[str] = []
        local_uids = {e.uid for e in alarms} | {k.uid for k in kpis}
        for edge in world.causal_graph.edges:
            if edge.source not in local_uids and edge.target not in local_uids:
                continue
            for _ in range(cases_per_edge):
                connective = CAUSAL_CONNECTIVES[int(rng.integers(len(CAUSAL_CONNECTIVES)))]
                with_ids = rng.random() < with_id_probability
                cases.append(_fault_case_sentence(
                    events[edge.source], events[edge.target], connective,
                    with_ids, rng))

        procedures = []
        for _ in range(min(4, max(1, len(alarms)))):
            step = _PROCEDURE_STEPS[int(rng.integers(len(_PROCEDURE_STEPS)))]
            procedures.append("To handle the fault, " + step.format(ne=ne_type) + ".")

        docs.append(ProductDocument(
            title=f"{ne_type} Product Fault Handling Guide",
            product=ne_type,
            sections={
                "event_descriptions": descriptions,
                "kpi_reference": kpi_refs,
                "fault_cases": cases,
                "handling_procedures": procedures,
            }))
    return docs
