"""Regeneration of every table and figure in the paper's evaluation section.

Each ``run_*`` function returns a :class:`TableResult` holding our measured
rows next to the paper's reported rows; :func:`format_table` renders the
side-by-side comparison.  Absolute numbers differ (tiny models, synthetic
data — see DESIGN.md §5); the reproduction target is the *comparative shape*
of each table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.pipeline import ExperimentPipeline
from repro.tasks.eap.data import build_eap_dataset
from repro.tasks.eap.experiment import EapExperiment
from repro.tasks.fct.data import build_fct_dataset
from repro.tasks.fct.experiment import FctExperiment
from repro.tasks.rca.data import build_rca_dataset
from repro.tasks.rca.experiment import RcaExperiment


@dataclass
class TableResult:
    """Measured rows plus paper-reported reference rows."""

    title: str
    columns: list[str]
    rows: dict[str, dict[str, float]]
    paper: dict[str, dict[str, float]] = field(default_factory=dict)
    notes: str = ""

    def row(self, label: str) -> dict[str, float]:
        return self.rows[label]


def format_table(result: TableResult, precision: int = 2) -> str:
    """Render measured-vs-paper rows as fixed-width text."""
    label_width = max([len(k) for k in result.rows] +
                      [len(k) for k in result.paper] + [10]) + 2
    col_width = max(max((len(c) for c in result.columns), default=8) + 2, 10)

    def fmt_row(label: str, values: dict[str, float]) -> str:
        cells = []
        for column in result.columns:
            value = values.get(column)
            cells.append(("-" if value is None or
                          (isinstance(value, float) and np.isnan(value))
                          else f"{value:.{precision}f}").rjust(col_width))
        return label.ljust(label_width) + "".join(cells)

    header = " ".ljust(label_width) + "".join(
        c.rjust(col_width) for c in result.columns)
    lines = [result.title, "=" * len(header), header, "-" * len(header)]
    lines.append("[measured]")
    for label, values in result.rows.items():
        lines.append(fmt_row(label, values))
    if result.paper:
        lines.append("[paper]")
        for label, values in result.paper.items():
            lines.append(fmt_row(label, values))
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)


def average_tables(results: list[TableResult]) -> TableResult:
    """Average the measured rows of same-shaped results (multi-seed runs).

    Rows and columns must coincide; paper rows and metadata are taken from
    the first result.
    """
    if not results:
        raise ValueError("no results to average")
    first = results[0]
    for other in results[1:]:
        if list(other.rows) != list(first.rows) or \
                other.columns != first.columns:
            raise ValueError("results have different shapes")
    rows: dict[str, dict[str, float]] = {}
    for label in first.rows:
        rows[label] = {
            column: float(np.mean([r.rows[label][column] for r in results]))
            for column in first.columns}
    note = (f"{first.notes}; " if first.notes else "") + \
        f"averaged over {len(results)} seeds"
    return TableResult(title=first.title, columns=first.columns, rows=rows,
                       paper=first.paper, notes=note)


# ----------------------------------------------------------------------
# Table II — training strategies
# ----------------------------------------------------------------------

def run_table2(pipeline: ExperimentPipeline) -> TableResult:
    """Strategy schedules: resolved stage boundaries per strategy."""
    from repro.training.mtl import TASK_KE, TASK_MASK, build_strategy

    total = pipeline.config.stage2_steps
    rows: dict[str, dict[str, float]] = {}
    for name in ("stl", "pmtl", "imtl"):
        strategy = build_strategy(name, total)
        mask_steps = sum(1 for s in range(total)
                         if TASK_MASK in strategy.tasks_at(s))
        ke_steps = sum(1 for s in range(total)
                       if TASK_KE in strategy.tasks_at(s))
        rows[name.upper()] = {
            "total steps": float(total),
            "mask steps": float(mask_steps),
            "KE steps": float(ke_steps),
            "stages": float(len(strategy.phases)),
        }
    paper = {
        "STL": {"total steps": 60000, "mask steps": 60000, "KE steps": 0,
                "stages": 1},
        "PMTL": {"total steps": 60000, "mask steps": 60000,
                 "KE steps": 60000, "stages": 1},
        "IMTL": {"total steps": 60000, "mask steps": 60000,
                 "KE steps": 60000, "stages": 3},
    }
    return TableResult(
        title="Table II — stage-2 learning strategies (schedule summary)",
        columns=["total steps", "mask steps", "KE steps", "stages"],
        rows=rows, paper=paper,
        notes="paper runs 60k steps; we use the pipeline's scaled budget")


# ----------------------------------------------------------------------
# Table III / IV — root-cause analysis
# ----------------------------------------------------------------------

PAPER_TABLE3 = {"RCA data": {"graphs": 127, "features": 349,
                             "avg_nodes": 10.96, "avg_edges": 51.15}}

PAPER_TABLE4 = {
    "Random": {"MR": 2.47, "Hits@1": 54.88, "Hits@3": 75.00, "Hits@5": 88.67},
    "MacBERT": {"MR": 2.16, "Hits@1": 59.64, "Hits@3": 82.68, "Hits@5": 90.85},
    "TeleBERT": {"MR": 2.09, "Hits@1": 62.65, "Hits@3": 83.52, "Hits@5": 92.46},
    "KTeleBERT-STL": {"MR": 2.06, "Hits@1": 63.66, "Hits@3": 83.21,
                      "Hits@5": 91.87},
    "w/o ANEnc": {"MR": 2.13, "Hits@1": 60.72, "Hits@3": 82.96,
                  "Hits@5": 90.80},
    "KTeleBERT-PMTL": {"MR": 2.03, "Hits@1": 65.96, "Hits@3": 84.98,
                       "Hits@5": 92.63},
    "KTeleBERT-IMTL": {"MR": 2.02, "Hits@1": 64.78, "Hits@3": 85.65,
                       "Hits@5": 91.13},
}


def run_table3(pipeline: ExperimentPipeline) -> TableResult:
    """RCA data statistics."""
    dataset = build_rca_dataset(pipeline.world, pipeline.episodes)
    stats = {k: float(v) for k, v in dataset.describe().items()}
    return TableResult(
        title="Table III — data statistics for root-cause analysis",
        columns=["graphs", "features", "avg_nodes", "avg_edges"],
        rows={"RCA data": stats}, paper=PAPER_TABLE3)


def run_table4(pipeline: ExperimentPipeline) -> TableResult:
    """RCA results across all method rows."""
    dataset = build_rca_dataset(pipeline.world, pipeline.episodes)
    experiment = RcaExperiment(dataset, seed=pipeline.config.seed,
                               epochs=pipeline.config.task_epochs_rca)
    rows: dict[str, dict[str, float]] = {}
    for provider in pipeline.providers():
        result = experiment.run(provider)
        rows[provider.label] = result.as_table_row()
    return TableResult(
        title="Table IV — evaluation results for root-cause analysis",
        columns=["MR", "Hits@1", "Hits@3", "Hits@5"],
        rows=rows, paper=PAPER_TABLE4,
        notes="MR lower is better; Hits are percentages")


# ----------------------------------------------------------------------
# Table V / VI — event association prediction
# ----------------------------------------------------------------------

PAPER_TABLE5 = {"EAP data": {"events": 86, "event_pairs_positive": 2141,
                             "event_pairs_negative": 2141,
                             "mdaf_packages": 104, "network_elements": 31}}

PAPER_TABLE6 = {
    "Word Embeddings": {"Accuracy": 64.9, "Precision": 66.4, "Recall": 96.8,
                        "F1-score": 78.7},
    "MacBERT": {"Accuracy": 64.3, "Precision": 65.9, "Recall": 96.1,
                "F1-score": 78.2},
    "TeleBERT": {"Accuracy": 70.4, "Precision": 71.4, "Recall": 95.1,
                 "F1-score": 81.5},
    "KTeleBERT-STL": {"Accuracy": 77.3, "Precision": 76.6, "Recall": 96.6,
                      "F1-score": 85.4},
    "w/o ANEnc": {"Accuracy": 76.0, "Precision": 76.1, "Recall": 95.1,
                  "F1-score": 84.5},
    "KTeleBERT-PMTL": {"Accuracy": 68.5, "Precision": 68.8, "Recall": 99.1,
                       "F1-score": 81.3},
    # The IMTL row is garbled in the source PDF; only its F1 (83.2) is legible.
    "KTeleBERT-IMTL": {"Accuracy": float("nan"), "Precision": float("nan"),
                       "Recall": float("nan"), "F1-score": 83.2},
}


def run_table5(pipeline: ExperimentPipeline) -> TableResult:
    """EAP data statistics."""
    dataset = build_eap_dataset(pipeline.world, pipeline.episodes,
                                seed=pipeline.config.seed)
    stats = {k: float(v) for k, v in dataset.describe().items()}
    return TableResult(
        title="Table V — data statistics for event association prediction",
        columns=["events", "event_pairs_positive", "event_pairs_negative",
                 "mdaf_packages", "network_elements"],
        rows={"EAP data": stats}, paper=PAPER_TABLE5)


def run_table6(pipeline: ExperimentPipeline) -> TableResult:
    """EAP results across all method rows."""
    dataset = build_eap_dataset(pipeline.world, pipeline.episodes,
                                seed=pipeline.config.seed)
    experiment = EapExperiment(dataset, seed=pipeline.config.seed,
                               epochs=pipeline.config.task_epochs_eap)
    rows: dict[str, dict[str, float]] = {}
    for provider in pipeline.providers(include_word_embeddings=True):
        result = experiment.run(provider)
        rows[provider.label] = result.as_table_row()
    return TableResult(
        title="Table VI — evaluation results for event association prediction",
        columns=["Accuracy", "Precision", "Recall", "F1-score"],
        rows=rows, paper=PAPER_TABLE6,
        notes="the paper's IMTL row is partially illegible (F1 = 83.2)")


# ----------------------------------------------------------------------
# Table VII / VIII — fault chain tracing
# ----------------------------------------------------------------------

PAPER_TABLE7 = {"FCT data": {"nodes": 243, "edges": 100, "train": 232,
                             "valid": 33, "test": 32}}

PAPER_TABLE8 = {
    "Random": {"MRR": 58.2, "Hits@1": 56.2, "Hits@3": 56.2, "Hits@10": 62.5},
    "MacBERT": {"MRR": 65.9, "Hits@1": 62.5, "Hits@3": 65.6, "Hits@10": 68.8},
    "TeleBERT": {"MRR": 69.0, "Hits@1": 65.6, "Hits@3": 71.9, "Hits@10": 71.9},
    "KTeleBERT-STL": {"MRR": 73.6, "Hits@1": 71.9, "Hits@3": 71.9,
                      "Hits@10": 78.1},
    "w/o ANEnc": {"MRR": 67.5, "Hits@1": 65.6, "Hits@3": 65.6,
                  "Hits@10": 71.9},
    "KTeleBERT-PMTL": {"MRR": 87.3, "Hits@1": 84.4, "Hits@3": 87.5,
                       "Hits@10": 93.8},
    "KTeleBERT-IMTL": {"MRR": 94.8, "Hits@1": 93.8, "Hits@3": 93.8,
                       "Hits@10": 100.0},
}


def run_table7(pipeline: ExperimentPipeline) -> TableResult:
    """FCT data statistics."""
    dataset = build_fct_dataset(pipeline.world, pipeline.episodes,
                                seed=pipeline.config.seed)
    stats = {k: float(v) for k, v in dataset.describe().items()}
    return TableResult(
        title="Table VII — data statistics for fault chain tracing",
        columns=["nodes", "edges", "train", "valid", "test"],
        rows={"FCT data": stats}, paper=PAPER_TABLE7)


def run_table8(pipeline: ExperimentPipeline) -> TableResult:
    """FCT results across all method rows."""
    dataset = build_fct_dataset(pipeline.world, pipeline.episodes,
                                seed=pipeline.config.seed)
    experiment = FctExperiment(dataset, seed=pipeline.config.seed,
                               epochs=pipeline.config.task_epochs_fct)
    rows: dict[str, dict[str, float]] = {}
    for provider in pipeline.providers():
        result = experiment.run(provider)
        rows[provider.label] = result.as_table_row()
    return TableResult(
        title="Table VIII — evaluation results for fault chain tracing",
        columns=["MRR", "Hits@1", "Hits@3", "Hits@10"],
        rows=rows, paper=PAPER_TABLE8,
        notes="all values are percentages")


# ----------------------------------------------------------------------
# Fig. 10 — numeric embedding visualisation ± L_nc
# ----------------------------------------------------------------------

@dataclass
class Fig10Result:
    """Quantitative + plottable reproduction of Fig. 10.

    ``projections`` maps variant name to an (N, 3) array of
    (value, pc1, pc2) rows — the 2-D layout the paper colours by value.
    ``value_distance_correlation`` is the Spearman correlation between value
    distance and embedding cosine distance: high when the embedding space is
    ordered by value (the paper's claim for `L_nc` on).
    """

    projections: dict[str, np.ndarray]
    value_distance_correlation: dict[str, float]

    def as_table(self) -> TableResult:
        rows = {name: {"value-distance corr": corr}
                for name, corr in self.value_distance_correlation.items()}
        return TableResult(
            title="Fig. 10 — numeric embedding structure with/without L_nc",
            columns=["value-distance corr"], rows=rows,
            paper={"with L_nc": {"value-distance corr": float("nan")},
                   "w/o L_nc": {"value-distance corr": float("nan")}},
            notes="paper shows this qualitatively; we report the Spearman "
                  "correlation between |v_i - v_j| and embedding distance")


def _collect_numeric_embeddings(model, num_points: int = 64
                                ) -> tuple[np.ndarray, np.ndarray]:
    """ANEnc output `h` of a trained KTeleBERT for a sweep of values.

    Mirrors the paper: "we uniformly collect those generated numerical
    [embeddings] from ANEnc" — values sweep [0, 1] under each trained tag
    embedding, and the per-tag embedding sweeps are stacked.
    """
    from repro.tensor import no_grad
    from repro.tensor.tensor import Tensor

    values = np.linspace(0.0, 1.0, num_points)
    tags = model.tag_names[: max(1, min(4, len(model.tag_names)))]
    all_values = []
    all_embeddings = []
    with no_grad():
        for tag in tags:
            tag_embedding = model._tag_embeddings([tag])
            tiled = Tensor(np.tile(tag_embedding.data, (num_points, 1)))
            h = model.anenc(values, tiled).data.copy()
            all_values.append(values)
            all_embeddings.append(h)
    return np.concatenate(all_values), np.vstack(all_embeddings)


def _spearman(a: np.ndarray, b: np.ndarray) -> float:
    from scipy import stats

    return float(stats.spearmanr(a, b).statistic)


def run_fig10(pipeline: ExperimentPipeline,
              num_points: int = 64) -> Fig10Result:
    """Compare the trained STL models with and without `L_nc` (Fig. 10).

    Both variants run the full stage-2 recipe; only ``use_contrastive``
    differs.  Embedding order is measured as the Spearman correlation
    between pairwise value distance and embedding cosine distance, computed
    per tag and averaged.
    """
    variants = (("with L_nc", pipeline.ktelebert_stl),
                ("w/o L_nc", pipeline.ktelebert_stl_no_nc))
    projections: dict[str, np.ndarray] = {}
    correlations: dict[str, float] = {}
    for name, model in variants:
        values, embeddings = _collect_numeric_embeddings(model, num_points)
        # 2-D PCA projection (the paper's dimension-reduction view).
        centred = embeddings - embeddings.mean(axis=0)
        _, _, vt = np.linalg.svd(centred, full_matrices=False)
        coords = centred @ vt[:2].T
        projections[name] = np.column_stack([values, coords])
        # Per-tag correlation between value distance and cosine distance.
        unit = embeddings / np.maximum(
            np.linalg.norm(embeddings, axis=1, keepdims=True), 1e-12)
        per_tag = []
        for start in range(0, len(values), num_points):
            block = slice(start, start + num_points)
            value_distance = np.abs(values[block][:, None] -
                                    values[block][None, :])
            embedding_distance = 1.0 - unit[block] @ unit[block].T
            upper = np.triu_indices(num_points, k=1)
            per_tag.append(_spearman(value_distance[upper],
                                     embedding_distance[upper]))
        correlations[name] = float(np.mean(per_tag))
    return Fig10Result(projections=projections,
                       value_distance_correlation=correlations)
