"""The full experiment pipeline, built once and shared by all tables.

Construction order mirrors the paper's workflow (Fig. 1):

1. synthetic world (substitutes the proprietary platform data);
2. Tele-Corpus + generic corpus + Tele-KG + fault episodes;
3. the MacBERT stand-in (same architecture, generic corpus) and TeleBERT
   (stage 1 on the Tele-Corpus, with WWM phrases and SimCSE);
4. stage-2 data and the four KTeleBERT variants of the ablation:
   STL, STL w/o ANEnc, PMTL, IMTL;
5. embedding providers for every method row of Tables IV / VI / VIII.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.corpus.generic import generate_generic_corpus
from repro.corpus.telecorpus import TeleCorpus, build_tele_corpus
from repro.kg.builder import build_tele_kg
from repro.kg.graph import TeleKG
from repro.models.ktelebert import KTeleBert, KTeleBertConfig
from repro.models.telebert import TeleBertTrainer
from repro.service.providers import (
    EmbeddingProvider,
    KTeleBertProvider,
    PlmProvider,
    RandomProvider,
    WordEmbeddingProvider,
)
from repro.tokenization.bpe import mine_special_tokens
from repro.tokenization.tokenizer import basic_tokenize
from repro.training.mtl import build_strategy
from repro.training.retrainer import KTeleBertRetrainer
from repro.training.stage2 import Stage2Data, build_stage2_data
from repro.world.episodes import FaultEpisode
from repro.world.world import TelecomWorld


@dataclass
class PipelineConfig:
    """Scale knobs for one full reproduction run.

    The defaults are the "bench" scale: minutes on a laptop CPU, large enough
    for the comparative shapes of the tables to emerge.
    """

    seed: int = 0
    # world
    alarms_per_theme: int = 5
    kpis_per_theme: int = 3
    topology_nodes: int = 14
    num_episodes: int = 160
    # False-alarm observation noise is supported by the simulator but off by
    # default: at this scale even 1–2 noise alarms per episode (vs ~4 real
    # events) drown the signal for every method (measured in calibration).
    noise_alarms_per_episode: int = 0
    # model geometry
    d_model: int = 32
    num_layers: int = 2
    num_heads: int = 2
    d_ff: int = 64
    max_len: int = 32
    # stage 1
    stage1_steps: int = 400
    stage1_batch: int = 16
    generic_sentences: int = 1500
    # stage 2
    stage2_steps: int = 300
    stage2_batch: int = 8
    ke_batch: int = 8
    ke_negatives: int = 4
    # tasks
    task_epochs_rca: int = 10
    task_epochs_eap: int = 8
    task_epochs_fct: int = 50
    # future-work data sources (signaling flow + configuration data) in the
    # stage-2 masking stream — an extension beyond the paper's evaluation.
    include_future_sources: bool = False


class ExperimentPipeline:
    """Lazily builds and caches every artifact of the reproduction."""

    def __init__(self, config: PipelineConfig | None = None):
        self.config = config or PipelineConfig()

    # ------------------------------------------------------------------
    # Data artifacts
    # ------------------------------------------------------------------
    @cached_property
    def world(self) -> TelecomWorld:
        return TelecomWorld.generate(
            seed=self.config.seed,
            alarms_per_theme=self.config.alarms_per_theme,
            kpis_per_theme=self.config.kpis_per_theme,
            topology_nodes=self.config.topology_nodes)

    @cached_property
    def corpus(self) -> TeleCorpus:
        return build_tele_corpus(self.world, seed=self.config.seed)

    @cached_property
    def kg(self) -> TeleKG:
        return build_tele_kg(self.world)

    @cached_property
    def episodes(self) -> list[FaultEpisode]:
        return self.world.simulate_episodes(
            self.config.num_episodes,
            noise_alarm_count=self.config.noise_alarms_per_episode)

    @cached_property
    def stage2_data(self) -> Stage2Data:
        signaling_flows = None
        config_records = None
        if self.config.include_future_sources:
            from repro.world.configuration import ConfigurationGenerator
            from repro.world.signaling import SignalingSimulator

            rng = np.random.default_rng(self.config.seed + 71)
            simulator = SignalingSimulator(self.world.ontology, rng)
            signaling_flows = [flow for episode in self.episodes[:20]
                               for flow in simulator.simulate_episode(episode)]
            generator = ConfigurationGenerator(self.world.topology, rng)
            config_records = generator.snapshot_for_episode(self.episodes[0])
        return build_stage2_data(self.corpus, self.episodes, self.kg,
                                 seed=self.config.seed,
                                 ke_negatives=self.config.ke_negatives,
                                 signaling_flows=signaling_flows,
                                 config_records=config_records)

    @cached_property
    def wwm_phrases(self) -> list[str]:
        """Multi-word event surfaces act as the tele phrase vocabulary."""
        return [e.name for e in self.world.ontology.events]

    @cached_property
    def tele_special_tokens(self) -> list[str]:
        tokenised = [basic_tokenize(s) for s in self.corpus.sentences]
        base = {t for sentence in tokenised for t in sentence}
        # Mine against an empty base so NE abbreviations qualify; keep top 30.
        mined = mine_special_tokens(tokenised, base_vocabulary=set(),
                                    min_frequency=20, num_merges=400)
        return mined[:30]

    # ------------------------------------------------------------------
    # Stage-1 models
    # ------------------------------------------------------------------
    def _stage1_kwargs(self) -> dict:
        c = self.config
        return dict(d_model=c.d_model, num_layers=c.num_layers,
                    num_heads=c.num_heads, d_ff=c.d_ff, max_len=c.max_len,
                    batch_size=c.stage1_batch)

    @cached_property
    def macbert(self) -> TeleBertTrainer:
        """The MacBERT stand-in: same recipe, generic (non-tele) corpus.

        The vocabulary is built over the union of the generic corpus and the
        Tele-Corpus so tele names do not all collapse to [UNK] at service
        time — mirroring how the real MacBERT's wordpieces cover tele text
        without having *learned* tele semantics.
        """
        generic = generate_generic_corpus(self.config.generic_sentences,
                                          seed=self.config.seed)
        trainer = TeleBertTrainer(generic + self.corpus.sentences,
                                  seed=self.config.seed + 1,
                                  **self._stage1_kwargs())
        # Train only on generic sentences: restrict the batch iterator.
        from repro.training.batching import BatchIterator
        trainer.batches = BatchIterator(generic, self.config.stage1_batch,
                                        trainer.rng)
        trainer.train(self.config.stage1_steps)
        return trainer

    @cached_property
    def telebert(self) -> TeleBertTrainer:
        trainer = TeleBertTrainer(self.corpus.sentences,
                                  seed=self.config.seed + 2,
                                  wwm_phrases=self.wwm_phrases,
                                  **self._stage1_kwargs())
        trainer.train(self.config.stage1_steps)
        return trainer

    # ------------------------------------------------------------------
    # Stage-2 variants
    # ------------------------------------------------------------------
    def _retrain(self, strategy_name: str, use_anenc: bool = True,
                 use_contrastive: bool = True) -> KTeleBert:
        config = KTeleBertConfig(
            use_anenc=use_anenc, use_contrastive=use_contrastive,
            anenc_layers=2, anenc_meta=4, lora_rank=4,
            ke_negatives=self.config.ke_negatives)
        model = KTeleBert.from_telebert(
            self.telebert, config,
            tag_names=self.stage2_data.tag_names,
            normalizer=self.stage2_data.normalizer,
            tele_special_tokens=self.tele_special_tokens,
            extra_vocabulary=self.stage2_data.vocabulary(),
            seed=self.config.seed + 3)
        strategy = build_strategy(strategy_name, self.config.stage2_steps)
        retrainer = KTeleBertRetrainer(
            model, self.stage2_data, strategy, seed=self.config.seed + 4,
            batch_size=self.config.stage2_batch,
            ke_batch_size=self.config.ke_batch)
        retrainer.train()
        return model

    @cached_property
    def ktelebert_stl(self) -> KTeleBert:
        return self._retrain("stl")

    @cached_property
    def ktelebert_stl_no_anenc(self) -> KTeleBert:
        return self._retrain("stl", use_anenc=False)

    @cached_property
    def ktelebert_stl_no_nc(self) -> KTeleBert:
        """STL variant without the numerical contrastive loss (Fig. 10)."""
        return self._retrain("stl", use_contrastive=False)

    @cached_property
    def ktelebert_pmtl(self) -> KTeleBert:
        return self._retrain("pmtl")

    @cached_property
    def ktelebert_imtl(self) -> KTeleBert:
        return self._retrain("imtl")

    # ------------------------------------------------------------------
    # Providers (the method rows of the result tables)
    # ------------------------------------------------------------------
    def providers(self, include_word_embeddings: bool = False,
                  mode: str = "entity") -> list[EmbeddingProvider]:
        """All method rows in table order."""
        rows: list[EmbeddingProvider] = []
        if include_word_embeddings:
            rows.append(WordEmbeddingProvider(dim=self.config.d_model,
                                              seed=self.config.seed))
        else:
            rows.append(RandomProvider(dim=self.config.d_model,
                                       seed=self.config.seed))
        rows.append(PlmProvider(self.macbert, label="MacBERT"))
        rows.append(PlmProvider(self.telebert, label="TeleBERT"))
        rows.append(KTeleBertProvider(self.ktelebert_stl, self.kg, mode=mode,
                                      label="KTeleBERT-STL"))
        rows.append(KTeleBertProvider(self.ktelebert_stl_no_anenc, self.kg,
                                      mode=mode, label="w/o ANEnc"))
        rows.append(KTeleBertProvider(self.ktelebert_pmtl, self.kg, mode=mode,
                                      label="KTeleBERT-PMTL"))
        rows.append(KTeleBertProvider(self.ktelebert_imtl, self.kg, mode=mode,
                                      label="KTeleBERT-IMTL"))
        return rows
