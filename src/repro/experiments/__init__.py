"""Experiment reproduction harnesses: one entry point per paper table/figure.

:class:`ExperimentPipeline` builds the whole stack once (world → corpora →
Tele-KG → TeleBERT → KTeleBERT variants → providers); the ``run_table*`` /
``run_fig10`` functions in :mod:`repro.experiments.tables` regenerate each
table and figure of the evaluation section, printing paper-vs-measured rows.
"""

from repro.experiments.pipeline import ExperimentPipeline, PipelineConfig
from repro.experiments.report import generate_report
from repro.experiments.tables import (
    average_tables,
    format_table,
    run_fig10,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
)

__all__ = [
    "ExperimentPipeline",
    "PipelineConfig",
    "average_tables",
    "format_table",
    "generate_report",
    "run_fig10",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
    "run_table8",
]
