"""Multi-threaded traffic generator for the netserve frontend.

Two shapes of load:

* **open-loop** — arrivals follow a precomputed schedule at a configured
  offered rate, independent of response latency (the honest way to
  measure saturation: a slow server does not slow the offered load
  down).  ``bursty`` alternates half-second on/off windows, with the
  on-window rate multiplied by ``burst_factor``.
* **closed-loop** — ``concurrency`` workers issue requests back-to-back,
  a new one the moment the previous answer lands (models N retrying
  clients rather than an arrival process).

Request mixes are configurable (``embed=8,fct=2`` …) over the four
service ops.  The task ops (``rca``/``eap``/``fct``) need payloads the
server's adapters recognise, so :class:`RequestFactory` rebuilds the
same seeded tiny world the ``serve-net --adapters`` flag uses and
samples states/pairs/alarms from it — generator and server agree by
construction when their ``world_seed`` matches.

Every request is recorded as ``(tenant, op, latency, outcome, code)``;
:class:`LoadReport` aggregates them into latency percentiles split by
outcome, offered vs. achieved throughput, per-tenant tallies, and
Jain's fairness index over per-tenant goodput.  ``sweep`` repeats a run
across offered rates and renders the latency-vs-offered-load curve.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro.loadgen.client import NetClient, ProtocolError
from repro.netserve.protocol import RETRYABLE_CODES

#: mix tokens accepted by :func:`parse_mix` → wire op names
MIX_OPS = {"embed": "embed", "rca": "rca", "eap": "eap",
           "fct": "classify_fault"}

#: request outcome classes (see :func:`classify_response`)
OUTCOMES = ("ok", "rejected", "error", "protocol_error")

#: bounded sleep quantum — keeps every wait interruptible by the stop
#: event without busy-spinning
_SLEEP_QUANTUM_S = 0.2


def parse_mix(raw: str) -> dict[str, float]:
    """Parse ``"embed=8,fct=2"`` into normalised op weights."""
    weights: dict[str, float] = {}
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        token, _, value = part.partition("=")
        token = token.strip()
        if token not in MIX_OPS:
            raise ValueError(f"unknown mix op {token!r} "
                             f"(expected one of {sorted(MIX_OPS)})")
        try:
            weight = float(value) if value else 1.0
        except ValueError:
            raise ValueError(f"mix weight for {token!r} must be a "
                             f"number, got {value!r}") from None
        if weight <= 0:
            raise ValueError(f"mix weight for {token!r} must be positive")
        weights[token] = weights.get(token, 0.0) + weight
    if not weights:
        raise ValueError("empty request mix")
    total = sum(weights.values())
    return {token: weight / total for token, weight in weights.items()}


class RequestFactory:
    """Samples request payloads for a configured mix, deterministically."""

    def __init__(self, mix: dict[str, float], seed: int = 0,
                 world_seed: int = 11, embed_pool: int = 64,
                 deadline_ms: float | None = None):
        self.mix = dict(mix)
        self.deadline_ms = deadline_ms
        self._rng = np.random.default_rng(seed)
        self._ops = sorted(self.mix)
        self._weights = np.asarray([self.mix[op] for op in self._ops])
        self._names = [f"ne{i % 8}/alarm-{i}" for i in range(embed_pool)]
        self._lock = threading.Lock()
        self._pools: dict[str, list] = {}
        if any(op in self.mix for op in ("rca", "eap", "fct")):
            self._build_task_pools(world_seed)

    def _build_task_pools(self, world_seed: int) -> None:
        """Sample task payloads from the seeded world the server fits on."""
        from repro.tasks.eap import build_eap_dataset
        from repro.tasks.fct import build_fct_dataset
        from repro.tasks.rca import build_rca_dataset
        from repro.world import TelecomWorld

        world = TelecomWorld.generate(seed=world_seed, alarms_per_theme=2,
                                      kpis_per_theme=2, topology_nodes=6)
        episodes = world.simulate_episodes(30)
        if "rca" in self.mix:
            states = build_rca_dataset(world, episodes).states
            self._pools["rca"] = [
                {"nodes": list(state.node_names),
                 "adjacency": state.adjacency.tolist(),
                 "features": state.features.tolist()}
                for state in states[:16]]
        if "eap" in self.mix:
            pairs = build_eap_dataset(world, episodes).pairs
            self._pools["eap"] = [
                {"name_i": pair.name_i, "name_j": pair.name_j,
                 "node_i": pair.node_i, "node_j": pair.node_j,
                 "time_i": pair.time_i, "time_j": pair.time_j}
                for pair in pairs[:64]]
        if "fct" in self.mix:
            self._pools["fct"] = list(
                build_fct_dataset(world, episodes).entity_names)

    def build(self, request_id: int) -> tuple[str, dict]:
        """One ``(mix_token, payload)`` draw; thread-safe."""
        with self._lock:
            token = self._ops[int(self._rng.choice(len(self._ops),
                                                   p=self._weights))]
            payload = self._build_locked(token)
        payload["op"] = MIX_OPS[token]
        payload["id"] = request_id
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        return token, payload

    def _build_locked(self, token: str) -> dict:
        if token == "embed":
            count = int(self._rng.integers(1, 5))
            picks = self._rng.choice(len(self._names), size=count,
                                     replace=False)
            return {"names": [self._names[i] for i in picks]}
        if token == "fct":
            pool = self._pools["fct"]
            return {"alarm": pool[int(self._rng.integers(len(pool)))],
                    "top_k": 3}
        if token == "rca":
            pool = self._pools["rca"]
            return dict(pool[int(self._rng.integers(len(pool)))])
        pool = self._pools["eap"]
        picks = self._rng.integers(len(pool),
                                   size=int(self._rng.integers(1, 4)))
        return {"pairs": [pool[int(i)] for i in picks]}


def classify_response(response: dict) -> tuple[str, str | None]:
    """Map a response envelope to ``(outcome, code)``."""
    if response.get("ok"):
        return "ok", None
    code = response.get("code")
    if code in RETRYABLE_CODES:
        return "rejected", code
    return "error", code


class RequestRecord(NamedTuple):
    tenant: str
    op: str
    latency_s: float
    outcome: str
    code: str | None


@dataclass
class LoadgenConfig:
    """One load-generation run against a netserve endpoint."""

    host: str = "127.0.0.1"
    port: int = 0
    #: API keys to spread requests across (one tenant each)
    api_keys: tuple[str, ...] = ("dev-key",)
    #: ``open`` (scheduled arrivals) or ``closed`` (back-to-back workers)
    mode: str = "open"
    duration_s: float = 5.0
    #: open-loop offered rate (requests/second, all tenants combined)
    rate_per_s: float = 50.0
    #: open-loop sender threads draining the arrival schedule
    workers: int = 4
    #: closed-loop concurrent workers
    concurrency: int = 4
    mix: dict[str, float] = field(default_factory=lambda: {"embed": 1.0})
    #: alternate half-second on/off windows instead of steady arrivals
    bursty: bool = False
    #: on-window rate multiplier; off-window rate is
    #: ``rate * max(0, 2 - burst_factor)`` (mean preserved up to 2x)
    burst_factor: float = 4.0
    seed: int = 0
    #: world seed for task-op payloads (match ``serve-net --adapters``)
    world_seed: int = 11
    #: client-side socket timeout per request
    timeout_s: float = 10.0
    #: per-request ``deadline_ms`` sent to the server (None = omit)
    deadline_ms: float | None = None

    def __post_init__(self):
        if self.mode not in ("open", "closed"):
            raise ValueError("mode must be 'open' or 'closed'")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.workers < 1 or self.concurrency < 1:
            raise ValueError("workers/concurrency must be >= 1")
        if self.burst_factor < 1:
            raise ValueError("burst_factor must be >= 1")
        if not self.api_keys:
            raise ValueError("at least one api_key is required")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile over a pre-sorted list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1,
               max(0, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def jain_fairness(values: list[float]) -> float:
    """Jain's index: 1.0 = perfectly fair, 1/n = one tenant starved."""
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


@dataclass
class LoadReport:
    """Aggregated outcome of one load-generation run."""

    mode: str
    offered_rps: float
    duration_s: float
    counts: dict[str, int]
    codes: dict[str, int]
    ok_latency: dict[str, float]
    reject_latency: dict[str, float]
    per_tenant: dict[str, dict]
    fairness: float

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def achieved_rps(self) -> float:
        """Goodput: successful answers per second of wall time."""
        return self.counts["ok"] / self.duration_s if self.duration_s else 0.0

    @classmethod
    def from_records(cls, records: list[RequestRecord], mode: str,
                     duration_s: float, offered_rps: float) -> "LoadReport":
        counts = {outcome: 0 for outcome in OUTCOMES}
        codes: dict[str, int] = {}
        ok_lat: list[float] = []
        reject_lat: list[float] = []
        tenants: dict[str, dict] = {}
        for record in records:
            counts[record.outcome] += 1
            if record.code:
                codes[record.code] = codes.get(record.code, 0) + 1
            if record.outcome == "ok":
                ok_lat.append(record.latency_s)
            elif record.outcome == "rejected":
                reject_lat.append(record.latency_s)
            tenant = tenants.setdefault(
                record.tenant,
                {"sent": 0} | {outcome: 0 for outcome in OUTCOMES})
            tenant["sent"] += 1
            tenant[record.outcome] += 1
        ok_lat.sort()
        reject_lat.sort()

        def summarize(sorted_lat: list[float]) -> dict[str, float]:
            return {
                "count": float(len(sorted_lat)),
                "mean": (sum(sorted_lat) / len(sorted_lat)
                         if sorted_lat else 0.0),
                "p50": _percentile(sorted_lat, 0.50),
                "p95": _percentile(sorted_lat, 0.95),
                "p99": _percentile(sorted_lat, 0.99),
            }

        return cls(mode=mode, offered_rps=offered_rps,
                   duration_s=duration_s, counts=counts, codes=codes,
                   ok_latency=summarize(ok_lat),
                   reject_latency=summarize(reject_lat),
                   per_tenant=tenants,
                   fairness=jain_fairness(
                       [float(t["ok"]) for t in tenants.values()]))

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "offered_rps": round(self.offered_rps, 3),
            "achieved_rps": round(self.achieved_rps, 3),
            "duration_s": round(self.duration_s, 3),
            "total": self.total,
            "counts": dict(self.counts),
            "codes": dict(self.codes),
            "ok_latency": {k: round(v, 6)
                           for k, v in self.ok_latency.items()},
            "reject_latency": {k: round(v, 6)
                               for k, v in self.reject_latency.items()},
            "per_tenant": self.per_tenant,
            "fairness": round(self.fairness, 4),
        }

    def render(self) -> str:
        lines = [
            f"mode={self.mode} offered={self.offered_rps:.1f} rps "
            f"achieved={self.achieved_rps:.1f} rps "
            f"duration={self.duration_s:.2f}s total={self.total}",
            "outcomes: " + "  ".join(
                f"{outcome}={self.counts[outcome]}"
                for outcome in OUTCOMES),
        ]
        if self.codes:
            lines.append("codes: " + "  ".join(
                f"{code}={count}"
                for code, count in sorted(self.codes.items())))
        lines.append(
            f"ok latency ms: p50={self.ok_latency['p50'] * 1e3:.1f} "
            f"p95={self.ok_latency['p95'] * 1e3:.1f} "
            f"p99={self.ok_latency['p99'] * 1e3:.1f}")
        if self.reject_latency["count"]:
            lines.append(
                f"reject latency ms: "
                f"p50={self.reject_latency['p50'] * 1e3:.1f} "
                f"p95={self.reject_latency['p95'] * 1e3:.1f}")
        lines.append(f"tenant fairness (Jain): {self.fairness:.3f}")
        for name in sorted(self.per_tenant):
            tenant = self.per_tenant[name]
            lines.append(
                f"  tenant {name}: sent={tenant['sent']} ok={tenant['ok']} "
                f"rejected={tenant['rejected']} error={tenant['error']}")
        return "\n".join(lines)


def _arrival_times(config: LoadgenConfig) -> list[float]:
    """Offsets (seconds) of every open-loop arrival in the run window."""
    times: list[float] = []
    if not config.bursty:
        step = 1.0 / config.rate_per_s
        count = int(config.duration_s * config.rate_per_s)
        return [i * step for i in range(count)]
    window = 0.5
    on_rate = config.rate_per_s * config.burst_factor
    off_rate = config.rate_per_s * max(0.0, 2.0 - config.burst_factor)
    start, on = 0.0, True
    while start < config.duration_s:
        rate = on_rate if on else off_rate
        if rate > 0:
            step = 1.0 / rate
            count = int(window * rate)
            times.extend(start + i * step for i in range(count))
        start += window
        on = not on
    return [t for t in times if t < config.duration_s]


def _record_request(client: NetClient, factory: RequestFactory,
                    api_key: str, request_id: int,
                    records: list[RequestRecord]) -> None:
    token, payload = factory.build(request_id)
    payload["api_key"] = api_key
    started = time.perf_counter()
    try:
        response = client.request(payload)
        outcome, code = classify_response(response)
    except ProtocolError:
        outcome, code = "protocol_error", None
    records.append(RequestRecord(api_key, token,
                                 time.perf_counter() - started,
                                 outcome, code))


def run_load(config: LoadgenConfig) -> LoadReport:
    """Execute one load-generation run and aggregate the records."""
    factory = RequestFactory(config.mix, seed=config.seed,
                             world_seed=config.world_seed,
                             deadline_ms=config.deadline_ms)
    stop = threading.Event()
    worker_records: list[list[RequestRecord]] = []
    threads: list[threading.Thread] = []
    started_at = time.monotonic()

    if config.mode == "open":
        arrivals = _arrival_times(config)
        cursor_lock = threading.Lock()
        cursor = [0]

        def open_worker(worker_index: int,
                        records: list[RequestRecord]) -> None:
            rng = np.random.default_rng(config.seed + 1000 + worker_index)
            with NetClient(config.host, config.port,
                           timeout_s=config.timeout_s) as client:
                while not stop.is_set():
                    with cursor_lock:
                        index = cursor[0]
                        if index >= len(arrivals):
                            return
                        cursor[0] += 1
                    due = started_at + arrivals[index]
                    while not stop.is_set():
                        remaining = due - time.monotonic()
                        if remaining <= 0:
                            break
                        stop.wait(min(remaining, _SLEEP_QUANTUM_S))
                    if stop.is_set():
                        return
                    api_key = config.api_keys[
                        int(rng.integers(len(config.api_keys)))]
                    _record_request(client, factory, api_key, index,
                                    records)

        worker_count = min(config.workers, max(1, len(arrivals)))
        for worker_index in range(worker_count):
            records: list[RequestRecord] = []
            worker_records.append(records)
            threads.append(threading.Thread(
                target=open_worker, args=(worker_index, records),
                name=f"repro-loadgen-{worker_index}", daemon=True))
    else:
        def closed_worker(worker_index: int,
                          records: list[RequestRecord]) -> None:
            api_key = config.api_keys[worker_index % len(config.api_keys)]
            request_id = worker_index
            with NetClient(config.host, config.port,
                           timeout_s=config.timeout_s) as client:
                while not stop.is_set() and \
                        time.monotonic() - started_at < config.duration_s:
                    _record_request(client, factory, api_key, request_id,
                                    records)
                    request_id += 10_000

        for worker_index in range(config.concurrency):
            records = []
            worker_records.append(records)
            threads.append(threading.Thread(
                target=closed_worker, args=(worker_index, records),
                name=f"repro-loadgen-{worker_index}", daemon=True))

    for thread in threads:
        thread.start()
    # Bounded overall: the run window plus a grace period per request
    # timeout; stragglers past that are abandoned (daemon threads).
    join_by = started_at + config.duration_s + config.timeout_s + 5.0
    for thread in threads:
        thread.join(timeout=max(0.1, join_by - time.monotonic()))
    stop.set()
    wall_s = time.monotonic() - started_at

    merged = [record for records in worker_records for record in records]
    offered = (config.rate_per_s if config.mode == "open"
               else (len(merged) / wall_s if wall_s else 0.0))
    return LoadReport.from_records(merged, config.mode,
                                   min(wall_s, config.duration_s)
                                   if config.mode == "open" else wall_s,
                                   offered)


def sweep(config: LoadgenConfig,
          rates: list[float]) -> list[LoadReport]:
    """Run the same mix at each offered rate (open loop); returns reports."""
    from dataclasses import replace

    reports = []
    for rate in rates:
        reports.append(run_load(replace(config, mode="open",
                                        rate_per_s=rate)))
    return reports


def render_curve(reports: list[LoadReport]) -> str:
    """ASCII latency-vs-offered-load curve over a rate sweep."""
    header = (f"{'offered':>8} {'achieved':>9} {'ok':>6} {'rej':>6} "
              f"{'err':>5} {'p50ms':>8} {'p95ms':>8} {'p99ms':>8} "
              f"{'fair':>6}")
    rows = [header, "-" * len(header)]
    for report in reports:
        rows.append(
            f"{report.offered_rps:>8.1f} {report.achieved_rps:>9.1f} "
            f"{report.counts['ok']:>6d} {report.counts['rejected']:>6d} "
            f"{report.counts['error'] + report.counts['protocol_error']:>5d} "
            f"{report.ok_latency['p50'] * 1e3:>8.1f} "
            f"{report.ok_latency['p95'] * 1e3:>8.1f} "
            f"{report.ok_latency['p99'] * 1e3:>8.1f} "
            f"{report.fairness:>6.3f}")
    return "\n".join(rows)
