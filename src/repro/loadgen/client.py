"""Minimal NDJSON-over-TCP client for the netserve frontend.

One connection, strictly request/response: send a JSON object on one
line, read one JSON object line back.  Used by the load generator (one
client per worker thread) and by tests; transport or framing failures
raise :class:`ProtocolError` so callers can classify them separately
from server-side error envelopes, which are returned as plain dicts.
"""

from __future__ import annotations

import json
import socket


class ProtocolError(RuntimeError):
    """Transport or framing failure: the exchange did not complete."""


class NetClient:
    """Blocking single-connection client with newline framing."""

    def __init__(self, host: str, port: int, timeout_s: float = 10.0,
                 max_response_bytes: int = 4_000_000):
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        self.max_response_bytes = max_response_bytes
        self._sock: socket.socket | None = None
        self._buffer = bytearray()

    def connect(self) -> "NetClient":
        """Open the connection (idempotent); returns self for chaining."""
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout_s)
            except OSError as error:
                raise ProtocolError(f"connect failed: {error}") from error
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._buffer.clear()

    def __enter__(self) -> "NetClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, payload: dict) -> dict:
        """One round trip; returns the decoded response envelope."""
        self.connect()
        assert self._sock is not None
        line = (json.dumps(payload, ensure_ascii=False) + "\n").encode()
        try:
            self._sock.sendall(line)
            raw = self._readline()
        except (OSError, TimeoutError) as error:
            self.close()
            raise ProtocolError(f"transport failure: {error}") from error
        try:
            response = json.loads(raw)
        except ValueError as error:
            self.close()
            raise ProtocolError(
                f"unparseable response line: {raw[:200]!r}") from error
        if not isinstance(response, dict):
            self.close()
            raise ProtocolError(f"response is not an object: {response!r}")
        return response

    def _readline(self) -> str:
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                raw = bytes(self._buffer[:newline])
                del self._buffer[:newline + 1]
                return raw.decode("utf-8", errors="replace")
            if len(self._buffer) > self.max_response_bytes:
                raise ProtocolError("response line exceeds size limit")
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ProtocolError("connection closed mid-response")
            self._buffer.extend(chunk)
