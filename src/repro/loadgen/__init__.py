"""Load generation for the netserve frontend.

:mod:`repro.loadgen.client` is the minimal NDJSON-over-TCP client;
:mod:`repro.loadgen.runner` drives open/closed-loop traffic at
configurable mixes and aggregates latency / throughput / fairness into
:class:`LoadReport`.  ``python -m repro loadgen`` is the CLI entry.
"""

from repro.loadgen.client import NetClient, ProtocolError
from repro.loadgen.runner import (
    MIX_OPS,
    LoadgenConfig,
    LoadReport,
    RequestFactory,
    RequestRecord,
    classify_response,
    jain_fairness,
    parse_mix,
    render_curve,
    run_load,
    sweep,
)

__all__ = [
    "MIX_OPS",
    "LoadReport",
    "LoadgenConfig",
    "NetClient",
    "ProtocolError",
    "RequestFactory",
    "RequestRecord",
    "classify_response",
    "jain_fairness",
    "parse_mix",
    "render_curve",
    "run_load",
    "sweep",
]
