"""Composite differentiable operations built from :class:`~repro.tensor.Tensor` primitives.

These are written as compositions of the primitive ops in
``repro.tensor.tensor`` so that their gradients come for free from the
autograd engine; only numerically delicate pieces (softmax, log-softmax) use
the usual max-subtraction stabilisation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.tensor.tensor import Tensor, concat, stack  # noqa: F401 (re-export)

_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit (delegates to the primitive op)."""
    return x.relu()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as in BERT)."""
    inner = (x + x * x * x * 0.044715) * _SQRT_2_OVER_PI
    return x * 0.5 * (inner.tanh() + 1.0)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid (delegates to the primitive op)."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent (delegates to the primitive op)."""
    return x.tanh()


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last axis."""
    mean = x.mean(axis=-1, keepdims=True)
    centred = x - mean
    variance = (centred * centred).mean(axis=-1, keepdims=True)
    normalised = centred / (variance + eps).sqrt()
    return normalised * weight + bias


def dropout(x: Tensor, rate: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or ``rate`` is 0."""
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    mask = (rng.random(x.shape) >= rate) / (1.0 - rate)
    return x * Tensor(mask)


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: int | None = None) -> Tensor:
    """Mean cross-entropy between ``logits`` (..., C) and integer ``targets``.

    Positions equal to ``ignore_index`` contribute nothing to the loss (useful
    for the MLM objective where only masked positions are predicted).
    """
    targets = np.asarray(targets)
    num_classes = logits.shape[-1]
    flat_logits = logits.reshape(-1, num_classes)
    flat_targets = targets.reshape(-1)

    if ignore_index is not None:
        keep = flat_targets != ignore_index
        if not keep.any():
            return Tensor(0.0)
        flat_logits = flat_logits[np.nonzero(keep)[0]]
        flat_targets = flat_targets[keep]

    log_probs = log_softmax(flat_logits, axis=-1)
    picked = log_probs[np.arange(flat_targets.shape[0]), flat_targets]
    return -picked.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray,
                                     weight: np.ndarray | None = None) -> Tensor:
    """Mean BCE on raw logits, computed via the stable log-sum-exp form.

    ``loss = max(z, 0) - z*y + log(1 + exp(-|z|))``
    """
    targets_t = Tensor(np.asarray(targets, dtype=logits.dtype))
    zeros = Tensor(np.zeros_like(logits.data))
    positive_part = stack([logits, zeros], axis=0).max(axis=0)
    log_term = ((-(logits.abs())).exp() + 1.0).log()
    loss = positive_part - logits * targets_t + log_term
    if weight is not None:
        loss = loss * Tensor(np.asarray(weight, dtype=logits.dtype))
    return loss.mean()


def mse_loss(prediction: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target_t
    return (diff * diff).mean()


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1,
                      eps: float = 1e-8) -> Tensor:
    """Cosine similarity along ``axis``; broadcasting follows numpy rules."""
    dot = (a * b).sum(axis=axis)
    norm_a = ((a * a).sum(axis=axis) + eps).sqrt()
    norm_b = ((b * b).sum(axis=axis) + eps).sqrt()
    return dot / (norm_a * norm_b)


def l2_norm(x: Tensor, axis: int = -1, eps: float = 0.0) -> Tensor:
    """Euclidean norm along ``axis``."""
    return ((x * x).sum(axis=axis) + eps).sqrt()


def masked_mean(x: Tensor, mask: np.ndarray, axis: int = 1) -> Tensor:
    """Mean of ``x`` over ``axis`` counting only positions where ``mask`` is 1.

    ``x`` is (B, T, D) and ``mask`` (B, T) in the usual sequence-pooling case.
    """
    mask = np.asarray(mask, dtype=x.dtype)
    expanded = Tensor(mask[..., None])
    total = (x * expanded).sum(axis=axis)
    counts = Tensor(np.maximum(mask.sum(axis=axis, keepdims=True), 1.0))
    return total / counts


def attention_scores_mask(mask: np.ndarray, dtype=np.float64) -> np.ndarray:
    """Convert a (B, T) validity mask into an additive (B, 1, 1, T) bias."""
    mask = np.asarray(mask)
    bias = np.where(mask > 0, 0.0, -1e9).astype(dtype)
    return bias[:, None, None, :]
