"""Composite differentiable operations built from :class:`~repro.tensor.Tensor` primitives.

These are written as compositions of the primitive ops in
``repro.tensor.tensor`` so that their gradients come for free from the
autograd engine; only numerically delicate pieces (softmax, log-softmax) use
the usual max-subtraction stabilisation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.tensor.tensor import Tensor, concat, stack  # noqa: F401 (re-export)

_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit (delegates to the primitive op)."""
    return x.relu()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as in BERT)."""
    inner = (x + x * x * x * 0.044715) * _SQRT_2_OVER_PI
    return x * 0.5 * (inner.tanh() + 1.0)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid (delegates to the primitive op)."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent (delegates to the primitive op)."""
    return x.tanh()


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last axis."""
    mean = x.mean(axis=-1, keepdims=True)
    centred = x - mean
    variance = (centred * centred).mean(axis=-1, keepdims=True)
    normalised = centred / (variance + eps).sqrt()
    return normalised * weight + bias


def dropout(x: Tensor, rate: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or ``rate`` is 0."""
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    mask = (rng.random(x.shape) >= rate) / (1.0 - rate)
    return x * Tensor(mask)


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: int | None = None) -> Tensor:
    """Mean cross-entropy between ``logits`` (..., C) and integer ``targets``.

    Positions equal to ``ignore_index`` contribute nothing to the loss (useful
    for the MLM objective where only masked positions are predicted).
    """
    targets = np.asarray(targets)
    num_classes = logits.shape[-1]
    flat_logits = logits.reshape(-1, num_classes)
    flat_targets = targets.reshape(-1)

    if ignore_index is not None:
        keep = flat_targets != ignore_index
        if not keep.any():
            return Tensor(0.0)
        flat_logits = flat_logits[np.nonzero(keep)[0]]
        flat_targets = flat_targets[keep]

    log_probs = log_softmax(flat_logits, axis=-1)
    picked = log_probs[np.arange(flat_targets.shape[0]), flat_targets]
    return -picked.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray,
                                     weight: np.ndarray | None = None) -> Tensor:
    """Mean BCE on raw logits, computed via the stable log-sum-exp form.

    ``loss = max(z, 0) - z*y + log(1 + exp(-|z|))``
    """
    targets_t = Tensor(np.asarray(targets, dtype=logits.dtype))
    zeros = Tensor(np.zeros_like(logits.data))
    positive_part = stack([logits, zeros], axis=0).max(axis=0)
    log_term = ((-(logits.abs())).exp() + 1.0).log()
    loss = positive_part - logits * targets_t + log_term
    if weight is not None:
        loss = loss * Tensor(np.asarray(weight, dtype=logits.dtype))
    return loss.mean()


def mse_loss(prediction: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target_t
    return (diff * diff).mean()


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1,
                      eps: float = 1e-8) -> Tensor:
    """Cosine similarity along ``axis``; broadcasting follows numpy rules."""
    dot = (a * b).sum(axis=axis)
    norm_a = ((a * a).sum(axis=axis) + eps).sqrt()
    norm_b = ((b * b).sum(axis=axis) + eps).sqrt()
    return dot / (norm_a * norm_b)


def l2_norm(x: Tensor, axis: int = -1, eps: float = 0.0) -> Tensor:
    """Euclidean norm along ``axis``."""
    return ((x * x).sum(axis=axis) + eps).sqrt()


def masked_mean(x: Tensor, mask: np.ndarray, axis: int = 1) -> Tensor:
    """Mean of ``x`` over ``axis`` counting only positions where ``mask`` is 1.

    ``x`` is (B, T, D) and ``mask`` (B, T) in the usual sequence-pooling case.
    """
    mask = np.asarray(mask, dtype=x.dtype)
    expanded = Tensor(mask[..., None])
    total = (x * expanded).sum(axis=axis)
    counts = Tensor(np.maximum(mask.sum(axis=axis, keepdims=True), 1.0))
    return total / counts


def attention_scores_mask(mask: np.ndarray, dtype=np.float64) -> np.ndarray:
    """Convert a (B, T) validity mask into an additive (B, 1, 1, T) bias."""
    mask = np.asarray(mask)
    bias = np.where(mask > 0, 0.0, -1e9).astype(dtype)
    return bias[:, None, None, :]


# ----------------------------------------------------------------------
# Fused hot-path ops.  Unlike the compositions above, these hand-code the
# backward pass to collapse several graph nodes (and their captured
# intermediates) into one — worthwhile only where profiles show the
# per-node Python overhead dominating: the encoder's embedding gather and
# the attention-weight softmax.
# ----------------------------------------------------------------------
def fused_embedding(token_weight: Tensor, position_weight: Tensor,
                    ids: np.ndarray,
                    overrides: tuple[np.ndarray, Tensor] | None = None
                    ) -> Tensor:
    """Token + position embedding gather (plus override scatter) as one op.

    Computes ``token_weight[ids] + position_weight[:seq]`` with the rows at
    ``overrides = (positions, vectors)`` replaced by
    ``vectors + position_weight[col]`` — exactly the encoder's five-node
    gather / keep-mask / scatter / position-add composition, as a single
    autograd node: forward is one fancy-index gather plus a broadcast add,
    backward two ``np.add.at`` scatters.  ``positions`` is (M, 2) of
    (row, col) pairs, assumed distinct (one per numeral occurrence).
    """
    ids = np.asarray(ids)
    if ids.ndim != 2:
        raise ValueError(f"ids must be (batch, seq), got shape {ids.shape}")
    seq = ids.shape[1]
    n_tokens = token_weight.data.shape[0]
    if ids.size and (ids.min() < 0 or ids.max() >= n_tokens):
        raise IndexError(f"embedding index out of range [0, {n_tokens})")
    if seq > position_weight.data.shape[0]:
        raise ValueError(
            f"sequence length {seq} exceeds the position table "
            f"({position_weight.data.shape[0]} rows)")
    token_data = token_weight.data
    position_data = position_weight.data
    out = token_data[ids]            # (B, T, D) — becomes the node's output
    out += position_data[:seq]       # broadcast over the batch axis
    parents: list[Tensor] = [token_weight, position_weight]
    positions = None
    if overrides is not None and len(overrides[0]) > 0:
        positions, vectors = overrides
        positions = np.asarray(positions)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError("positions must be (M, 2) of (row, col)")
        out[positions[:, 0], positions[:, 1]] = (
            vectors.data + position_data[positions[:, 1]])
        parents.append(vectors)

    def backward(g):
        g = np.asarray(g)
        grad_token = np.zeros_like(token_data)
        np.add.at(grad_token, ids, g)
        grad_position = np.zeros_like(position_data)
        grad_position[:seq] = g.sum(axis=0)
        grads = [grad_token, grad_position]
        if positions is not None:
            rows, cols = positions[:, 0], positions[:, 1]
            picked = g[rows, cols]
            # Overridden slots never read the token table; take their
            # scatter contribution back out.
            np.subtract.at(grad_token, ids[rows, cols], picked)
            grads.append(picked)
        return tuple(grads)

    return token_weight._make_child(out, tuple(parents), backward)


def _lease_workspace(workspace: dict | None, shape: tuple[int, ...],
                     dtype) -> np.ndarray:
    """Borrow a scratch array from ``workspace`` (allocate on miss)."""
    if workspace is None:
        return np.empty(shape, dtype=dtype)
    stack = workspace.get((shape, np.dtype(dtype).str))
    if stack:
        try:
            return stack.pop()  # list.pop is atomic under the GIL
        except IndexError:      # concurrent forwards drained it
            pass
    return np.empty(shape, dtype=dtype)


def _release_workspace(workspace: dict | None, buffer: np.ndarray) -> None:
    """Return a leased scratch array; keeps at most a few per shape."""
    if workspace is None:
        return
    stack = workspace.setdefault((buffer.shape, buffer.dtype.str), [])
    if len(stack) < 4:
        stack.append(buffer)


def attention_weights(q: Tensor, k: Tensor, scale: float,
                      mask_bias: np.ndarray | None = None,
                      workspace: dict | None = None) -> Tensor:
    """``softmax(scale * q @ k^T + mask_bias)`` as a single autograd node.

    Replaces the seven-node composition (matmul, scale, bias add, and the
    four softmax sub-ops) that captured several ``(B, H, T, T)``
    intermediates in the graph.  The scores buffer is leased from
    ``workspace`` (a per-module dict) and returned before this function
    exits — safe even across concurrent or re-entrant forwards, because the
    backward needs only the output distribution and ``q``/``k``:

    ``dS = W * (g - (g * W).sum(-1))``, ``dq = scale * dS @ k``,
    ``dk = scale * dS^T @ q``.

    Values are bit-identical to the composition (same numpy op sequence,
    including the max-subtraction stabilisation).
    """
    q_data, k_data = q.data, k.data
    shape = q_data.shape[:-1] + (k_data.shape[-2],)
    scores = _lease_workspace(workspace, shape, q_data.dtype)
    np.matmul(q_data, np.swapaxes(k_data, -1, -2), out=scores)
    if scale != 1.0:
        scores *= scale
    if mask_bias is not None:
        scores += mask_bias
    scores -= scores.max(axis=-1, keepdims=True)
    np.exp(scores, out=scores)
    weights = scores / scores.sum(axis=-1, keepdims=True)  # fresh output
    _release_workspace(workspace, scores)

    def backward(g):
        g = np.asarray(g)
        grad_scores = g * weights
        grad_scores -= weights * grad_scores.sum(axis=-1, keepdims=True)
        if scale != 1.0:
            grad_scores *= scale
        grad_q = grad_scores @ k_data
        grad_k = np.swapaxes(grad_scores, -1, -2) @ q_data
        return (grad_q, grad_k)

    return q._make_child(weights, (q, k), backward)
