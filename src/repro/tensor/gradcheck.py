"""Numerical gradient checking used by the test-suite.

Central-difference estimation against the analytic gradients produced by the
autograd engine.  Kept inside the library (rather than the tests) so other
projects embedding ``repro.tensor`` can validate custom ops the same way.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_gradient(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                       index: int, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn(*inputs)`` w.r.t. ``inputs[index]``."""
    base = inputs[index].data
    grad = np.zeros_like(base)
    flat = base.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data)
        flat[i] = original - eps
        minus = float(fn(*inputs).data)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                    atol: float = 1e-5, rtol: float = 1e-4,
                    eps: float = 1e-6) -> None:
    """Assert the analytic gradients of scalar ``fn(*inputs)`` match numerics.

    Raises ``AssertionError`` listing the worst mismatch when a gradient is
    outside tolerance.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    if out.data.size != 1:
        raise ValueError("check_gradients requires a scalar-valued function")
    out.backward()
    for idx, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        expected = numerical_gradient(fn, inputs, idx, eps=eps)
        actual = t.grad if t.grad is not None else np.zeros_like(t.data)
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = np.abs(actual - expected).max()
            raise AssertionError(
                f"gradient mismatch for input {idx}: max abs err {worst:.3e}\n"
                f"analytic:\n{actual}\nnumeric:\n{expected}")
