"""Reverse-mode automatic differentiation on top of numpy.

This package is the compute substrate for the whole reproduction: the paper's
models were built on PyTorch, which is unavailable here, so ``repro.tensor``
provides the minimal-but-complete autograd engine that ``repro.nn`` layers,
the ANEnc numeric encoder, the BERT/ELECTRA pre-training stack, the GCN used
for root-cause analysis, and the KGE models are written against.

The public surface mirrors a small subset of ``torch``:

* :class:`Tensor` — an ndarray with a ``grad`` slot and a ``backward`` method.
* :func:`tensor` / :func:`zeros` / :func:`ones` / :func:`randn` — constructors.
* ``repro.tensor.functional`` — composite ops (softmax, layer_norm, gelu, ...).
* :func:`no_grad` — context manager disabling graph construction.
"""

from repro.tensor.tensor import (
    Tensor,
    concat,
    is_grad_enabled,
    no_grad,
    ones,
    ones_like,
    randn,
    stack,
    tensor,
    zeros,
    zeros_like,
)
from repro.tensor import functional

__all__ = [
    "Tensor",
    "concat",
    "functional",
    "is_grad_enabled",
    "no_grad",
    "ones",
    "ones_like",
    "randn",
    "stack",
    "tensor",
    "zeros",
    "zeros_like",
]
