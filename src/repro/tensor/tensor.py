"""Core reverse-mode autograd engine.

The design is a classic dynamic tape: every differentiable operation creates a
new :class:`Tensor` that remembers its parent tensors and a closure that knows
how to push the output gradient back to them.  Calling :meth:`Tensor.backward`
topologically sorts the graph and runs the closures in reverse order.

All data is stored as ``numpy.ndarray`` with a configurable float dtype
(default ``float64`` — the models in this reproduction are tiny, so we buy
numerical headroom instead of speed).  Gradients follow numpy broadcasting
semantics: whenever an op broadcasts, the backward pass sums the gradient over
the broadcast axes (:func:`_unbroadcast`).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Sequence

import numpy as np

DEFAULT_DTYPE = np.float64

_grad_state = threading.local()


def is_grad_enabled() -> bool:
    """Return True when operations should record the autograd graph."""
    return getattr(_grad_state, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (inference mode)."""
    previous = is_grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = previous


def _as_array(value, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype or DEFAULT_DTYPE)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An ndarray node in a dynamic autograd graph.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts.  Copied only if conversion
        requires it.
    requires_grad:
        When True, gradients flowing into this tensor are accumulated in
        ``self.grad`` during :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, *, dtype=None):
        self.data = _as_array(data, dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name: str | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    def _make_child(self, data: np.ndarray, parents: Sequence["Tensor"],
                    backward: Callable[[np.ndarray], None]) -> "Tensor":
        out = Tensor(data)
        if is_grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad), self.data.shape)
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad=None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        order: list[Tensor] = []
        visited: set[int] = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None or not node._parents:
                node._accumulate(node_grad)
                continue
            # Interior node: leaf accumulation happens inside op backwards via
            # the grads dict; keep grad on the node itself only if it is also
            # a user-visible leaf (requires_grad and no parents is the leaf
            # case handled above).
            node._push(node_grad, grads)

        # Any remaining buffered grads belong to leaves reached but not popped.
        for node in order:
            pending = grads.pop(id(node), None)
            if pending is not None:
                node._accumulate(pending)

    def _push(self, grad: np.ndarray, grads: dict[int, np.ndarray]) -> None:
        """Run this node's backward closure, buffering parent grads."""
        contributions = self._backward(grad)
        for parent, contribution in zip(self._parents, contributions):
            if contribution is None or not parent.requires_grad:
                continue
            contribution = _unbroadcast(np.asarray(contribution), parent.data.shape)
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + contribution
            else:
                if parent._parents or parent._backward is not None:
                    grads[key] = contribution
                else:
                    parent._accumulate(contribution)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other.data
        return self._make_child(out_data, (self, other),
                                lambda g: (g, g))

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return self._make_child(-self.data, (self,), lambda g: (-g,))

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self._make_child(self.data - other.data, (self, other),
                                lambda g: (g, -g))

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        a, b = self.data, other.data
        return self._make_child(a * b, (self, other),
                                lambda g: (g * b, g * a))

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        a, b = self.data, other.data
        return self._make_child(a / b, (self, other),
                                lambda g: (g / b, -g * a / (b * b)))

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        a = self.data
        out = a ** exponent
        return self._make_child(out, (self,),
                                lambda g: (g * exponent * a ** (exponent - 1),))

    def __matmul__(self, other) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        a, b = self.data, other.data
        out = a @ b

        def backward(g: np.ndarray):
            g = np.asarray(g)
            if a.ndim == 1 and b.ndim == 1:
                # (k,) @ (k,) -> scalar
                return (g * b, g * a)
            if b.ndim == 1:
                # (..., m, k) @ (k,) -> (..., m)
                grad_a = np.expand_dims(g, -1) * b
                grad_b = np.tensordot(g, a, axes=(tuple(range(g.ndim)),
                                                  tuple(range(g.ndim))))
                return (grad_a, grad_b)
            if a.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                grad_a = (g[..., None, :] @ np.swapaxes(b, -1, -2)).reshape(
                    g.shape[:-1] + (a.shape[0],))
                grad_a = _unbroadcast(grad_a, a.shape)
                grad_b = np.expand_dims(a, -1) * np.expand_dims(g, -2)
                return (grad_a, _unbroadcast(grad_b, b.shape))
            grad_a = g @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ g
            return (_unbroadcast(grad_a, a.shape), _unbroadcast(grad_b, b.shape))

        return self._make_child(out, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out = np.exp(self.data)
        return self._make_child(out, (self,), lambda g: (g * out,))

    def log(self) -> "Tensor":
        a = self.data
        return self._make_child(np.log(a), (self,), lambda g: (g / a,))

    def sqrt(self) -> "Tensor":
        out = np.sqrt(self.data)
        return self._make_child(out, (self,), lambda g: (g * 0.5 / out,))

    def tanh(self) -> "Tensor":
        out = np.tanh(self.data)
        return self._make_child(out, (self,), lambda g: (g * (1.0 - out * out),))

    def sin(self) -> "Tensor":
        cos = np.cos(self.data)
        return self._make_child(np.sin(self.data), (self,),
                                lambda g: (g * cos,))

    def cos(self) -> "Tensor":
        sin = np.sin(self.data)
        return self._make_child(np.cos(self.data), (self,),
                                lambda g: (-g * sin,))

    def sigmoid(self) -> "Tensor":
        out = 1.0 / (1.0 + np.exp(-self.data))
        return self._make_child(out, (self,), lambda g: (g * out * (1.0 - out),))

    def relu(self) -> "Tensor":
        mask = self.data > 0
        return self._make_child(self.data * mask, (self,), lambda g: (g * mask,))

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        return self._make_child(np.abs(self.data), (self,), lambda g: (g * sign,))

    def clip(self, low: float | None = None, high: float | None = None) -> "Tensor":
        out = np.clip(self.data, low, high)
        mask = np.ones_like(self.data)
        if low is not None:
            mask = mask * (self.data >= low)
        if high is not None:
            mask = mask * (self.data <= high)
        return self._make_child(out, (self,), lambda g: (g * mask,))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(g: np.ndarray):
            grad = np.asarray(g)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % len(shape) for a in axes):
                    grad = np.expand_dims(grad, ax)
            return (np.broadcast_to(grad, shape),)

        return self._make_child(out, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for ax in axes:
                count *= self.data.shape[ax]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self.data.max(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(g: np.ndarray):
            grad = np.asarray(g)
            out_b = out
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % len(shape) for a in axes):
                    grad = np.expand_dims(grad, ax)
                    out_b = np.expand_dims(out_b, ax)
            mask = (self.data == out_b)
            # Split gradient evenly between ties, matching numerical checks.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            return (grad * mask / counts,)

        return self._make_child(out, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        return self._make_child(self.data.reshape(shape), (self,),
                                lambda g: (g.reshape(original),))

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        return self._make_child(self.data.transpose(axes), (self,),
                                lambda g: (g.transpose(inverse),))

    def swapaxes(self, a: int, b: int) -> "Tensor":
        return self._make_child(np.swapaxes(self.data, a, b), (self,),
                                lambda g: (np.swapaxes(g, a, b),))

    def expand_dims(self, axis: int) -> "Tensor":
        return self._make_child(np.expand_dims(self.data, axis), (self,),
                                lambda g: (np.squeeze(g, axis=axis),))

    def squeeze(self, axis: int) -> "Tensor":
        return self._make_child(np.squeeze(self.data, axis=axis), (self,),
                                lambda g: (np.expand_dims(g, axis),))

    def __getitem__(self, index) -> "Tensor":
        out = self.data[index]
        shape = self.data.shape

        def backward(g: np.ndarray):
            grad = np.zeros(shape, dtype=self.data.dtype)
            np.add.at(grad, index, g)
            return (grad,)

        return self._make_child(out, (self,), backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Embedding-style row gather: ``out[i...] = self[indices[i...]]``.

        ``indices`` may be any integer array; the result has shape
        ``indices.shape + self.shape[1:]`` and the backward pass scatter-adds.
        """
        indices = np.asarray(indices)
        out = self.data[indices]
        shape = self.data.shape

        def backward(g: np.ndarray):
            grad = np.zeros(shape, dtype=self.data.dtype)
            np.add.at(grad, indices.reshape(-1),
                      np.asarray(g).reshape(-1, *shape[1:]))
            return (grad,)

        return self._make_child(out, (self,), backward)

    # ------------------------------------------------------------------
    # Comparison helpers (no gradient)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        return self.data > _as_array(other)

    def __lt__(self, other):
        return self.data < _as_array(other)

    def __ge__(self, other):
        return self.data >= _as_array(other)

    def __le__(self, other):
        return self.data <= _as_array(other)


# ----------------------------------------------------------------------
# Constructors and combining ops
# ----------------------------------------------------------------------

def tensor(data, requires_grad: bool = False, dtype=None) -> Tensor:
    """Create a :class:`Tensor` from array-like data."""
    return Tensor(data, requires_grad=requires_grad, dtype=dtype)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    """An all-zeros tensor of the given shape."""
    return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    """An all-ones tensor of the given shape."""
    return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def zeros_like(t: Tensor, requires_grad: bool = False) -> Tensor:
    """An all-zeros tensor shaped like ``t``."""
    return Tensor(np.zeros_like(t.data), requires_grad=requires_grad)


def ones_like(t: Tensor, requires_grad: bool = False) -> Tensor:
    """An all-ones tensor shaped like ``t``."""
    return Tensor(np.ones_like(t.data), requires_grad=requires_grad)


def randn(shape, rng: np.random.Generator | None = None,
          scale: float = 1.0, requires_grad: bool = False) -> Tensor:
    """Gaussian tensor; pass an explicit generator for reproducibility."""
    rng = rng or np.random.default_rng()
    return Tensor(rng.normal(0.0, scale, size=shape).astype(DEFAULT_DTYPE),
                  requires_grad=requires_grad)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(g: np.ndarray):
        return tuple(np.split(g, splits, axis=axis))

    anchor = tensors[0]
    return anchor._make_child(data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray):
        pieces = np.split(g, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    anchor = tensors[0]
    return anchor._make_child(data, tensors, backward)
