"""Multi-head self-attention (Vaswani et al.) for the BERT-style encoders."""

from __future__ import annotations

import math

import numpy as np

from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``num_heads`` heads.

    Input/output shape is ``(batch, seq, d_model)``.  ``attention_mask`` is a
    ``(batch, seq)`` 0/1 validity mask; masked (0) key positions receive a
    large negative bias before the softmax.  Callers that already hold the
    additive ``(batch, 1, 1, seq)`` bias (the encoder stack builds it once
    per forward) can pass it via ``mask_bias`` instead.

    ``return_weights=True`` returns the *pre-dropout* attention
    distributions — rows always sum to one, which is what the Fig. 10
    numeric-attention visualisations plot.
    """

    def __init__(self, d_model: int, num_heads: int, rng: np.random.Generator,
                 dropout: float = 0.0):
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by num_heads={num_heads}")
        self.d_model = d_model
        self.num_heads = num_heads
        self.head_dim = d_model // num_heads
        self.query = Linear(d_model, d_model, rng)
        self.key = Linear(d_model, d_model, rng)
        self.value = Linear(d_model, d_model, rng)
        self.output = Linear(d_model, d_model, rng)
        self.dropout = Dropout(dropout, rng)
        # Scratch buffers for the fused attention-weight op, keyed by
        # score shape; holds no graph-captured arrays, so reuse across
        # (even concurrent) forwards is safe.
        self._workspace: dict = {}

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (B, T, D) -> (B, H, T, Dh)
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, attention_mask: np.ndarray | None = None,
                mask_bias: np.ndarray | None = None,
                return_weights: bool = False):
        batch, seq, _ = x.shape
        q = self._split_heads(self.query(x), batch, seq)
        k = self._split_heads(self.key(x), batch, seq)
        v = self._split_heads(self.value(x), batch, seq)

        if mask_bias is None and attention_mask is not None:
            mask_bias = F.attention_scores_mask(attention_mask,
                                                dtype=q.dtype)
        weights = F.attention_weights(
            q, k, 1.0 / math.sqrt(self.head_dim), mask_bias=mask_bias,
            workspace=self._workspace)
        dropped = self.dropout(weights)

        context = dropped @ v  # (B, H, T, Dh)
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.d_model)
        out = self.output(context)
        if return_weights:
            return out, weights
        return out
