"""Optimizers and learning-rate schedules."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list and a mutable learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float,
                 momentum: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum > 0:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1 ** self._t
        bias2 = 1.0 - beta2 ** self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * param.data
            m *= beta1
            m += (1 - beta1) * grad
            v *= beta2
            v += (1 - beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def step(self) -> None:
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            if decay > 0:
                for param in self.parameters:
                    if param.grad is not None:
                        param.data -= self.lr * decay * param.data
            super().step()
        finally:
            self.weight_decay = decay


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Clip gradients in-place to a global L2 norm; returns the pre-clip norm."""
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    grads = [p.grad for p in parameters if p.grad is not None]
    norm = math.sqrt(sum(float(np.vdot(g, g)) for g in grads))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for grad in grads:
            grad *= scale
    return norm


class LinearWarmupSchedule:
    """Linear warmup to ``peak_lr`` then linear decay to zero.

    Call :meth:`step` once per optimizer update; it mutates ``optimizer.lr``.
    """

    def __init__(self, optimizer: Optimizer, peak_lr: float,
                 warmup_steps: int, total_steps: int):
        if warmup_steps < 0 or total_steps <= 0:
            raise ValueError("warmup_steps must be >= 0 and total_steps > 0")
        self.optimizer = optimizer
        self.peak_lr = peak_lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self._step = 0

    def current_lr(self) -> float:
        if self.warmup_steps > 0 and self._step < self.warmup_steps:
            return self.peak_lr * self._step / self.warmup_steps
        remaining = max(self.total_steps - self._step, 0)
        span = max(self.total_steps - self.warmup_steps, 1)
        return self.peak_lr * remaining / span

    def step(self) -> float:
        self._step += 1
        lr = self.current_lr()
        self.optimizer.lr = lr
        return lr
