"""Optimizers and learning-rate schedules."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list and a mutable learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpointing: a state dict splits JSON-serialisable scalars from
    # per-parameter moment arrays so the training runtime can persist both
    # in one ``.npz`` snapshot and restore a bit-exact continuation.
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Scalars + per-parameter moment arrays for checkpointing."""
        return {"kind": type(self).__name__.lower(),
                "scalars": {"lr": self.lr},
                "arrays": {}}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output; validates optimizer kind."""
        if state.get("kind") != type(self).__name__.lower():
            raise ValueError(
                f"optimizer state is for {state.get('kind')!r}, "
                f"not {type(self).__name__.lower()!r}")
        self.lr = float(state["scalars"]["lr"])
        self._load_arrays(state["arrays"])

    def _load_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        if arrays:
            raise ValueError(f"unexpected moment arrays: {sorted(arrays)}")

    @staticmethod
    def _check_moments(name: str, moments: list[np.ndarray],
                       parameters: Sequence[Parameter]) -> None:
        if len(moments) != len(parameters):
            raise ValueError(
                f"{name} count {len(moments)} does not match "
                f"{len(parameters)} parameters")
        for moment, param in zip(moments, parameters):
            if moment.shape != param.data.shape:
                raise ValueError(
                    f"{name} shape {moment.shape} does not match "
                    f"parameter shape {param.data.shape}")

    @staticmethod
    def _pack(name: str, moments: list[np.ndarray]) -> dict[str, np.ndarray]:
        return {f"{name}/{i}": moment for i, moment in enumerate(moments)}

    @staticmethod
    def _unpack(name: str, arrays: dict[str, np.ndarray],
                count: int) -> list[np.ndarray]:
        try:
            return [np.array(arrays[f"{name}/{i}"]) for i in range(count)]
        except KeyError as error:
            raise ValueError(
                f"optimizer state lacks {error.args[0]!r}") from error


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float,
                 momentum: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum > 0:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["scalars"]["momentum"] = self.momentum
        state["arrays"] = self._pack("velocity", self._velocity)
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.momentum = float(state["scalars"]["momentum"])

    def _load_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        velocity = self._unpack("velocity", arrays, len(self.parameters))
        self._check_moments("velocity", velocity, self.parameters)
        self._velocity = velocity


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1 ** self._t
        bias2 = 1.0 - beta2 ** self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * param.data
            m *= beta1
            m += (1 - beta1) * grad
            v *= beta2
            v += (1 - beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["scalars"].update({"beta1": self.betas[0],
                                 "beta2": self.betas[1],
                                 "eps": self.eps,
                                 "weight_decay": self.weight_decay,
                                 "t": self._t})
        state["arrays"] = {**self._pack("m", self._m),
                          **self._pack("v", self._v)}
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        scalars = state["scalars"]
        self.betas = (float(scalars["beta1"]), float(scalars["beta2"]))
        self.eps = float(scalars["eps"])
        self.weight_decay = float(scalars["weight_decay"])
        self._t = int(scalars["t"])

    def _load_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        m = self._unpack("m", arrays, len(self.parameters))
        v = self._unpack("v", arrays, len(self.parameters))
        self._check_moments("m", m, self.parameters)
        self._check_moments("v", v, self.parameters)
        self._m = m
        self._v = v


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def step(self) -> None:
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            if decay > 0:
                for param in self.parameters:
                    if param.grad is not None:
                        param.data -= self.lr * decay * param.data
            super().step()
        finally:
            self.weight_decay = decay


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Clip gradients in-place to a global L2 norm; returns the pre-clip norm."""
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    grads = [p.grad for p in parameters if p.grad is not None]
    norm = math.sqrt(sum(float(np.vdot(g, g)) for g in grads))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for grad in grads:
            grad *= scale
    return norm


class LinearWarmupSchedule:
    """Linear warmup to ``peak_lr`` then linear decay to zero.

    Call :meth:`step` once per optimizer update; it mutates ``optimizer.lr``.
    """

    def __init__(self, optimizer: Optimizer, peak_lr: float,
                 warmup_steps: int, total_steps: int):
        if warmup_steps < 0 or total_steps <= 0:
            raise ValueError("warmup_steps must be >= 0 and total_steps > 0")
        self.optimizer = optimizer
        self.peak_lr = peak_lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self._step = 0

    def current_lr(self) -> float:
        if self.warmup_steps > 0 and self._step < self.warmup_steps:
            return self.peak_lr * self._step / self.warmup_steps
        remaining = max(self.total_steps - self._step, 0)
        span = max(self.total_steps - self.warmup_steps, 1)
        return self.peak_lr * remaining / span

    def step(self) -> float:
        self._step += 1
        lr = self.current_lr()
        self.optimizer.lr = lr
        return lr

    def state_dict(self) -> dict:
        """JSON-serialisable schedule cursor for checkpointing."""
        return {"peak_lr": self.peak_lr, "warmup_steps": self.warmup_steps,
                "total_steps": self.total_steps, "step": self._step}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (cursor and shape)."""
        self.peak_lr = float(state["peak_lr"])
        self.warmup_steps = int(state["warmup_steps"])
        self.total_steps = int(state["total_steps"])
        self._step = int(state["step"])
