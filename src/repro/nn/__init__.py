"""Neural-network layers, optimizers, and loss modules over ``repro.tensor``.

Mirrors the slice of ``torch.nn`` the paper's models need: parameter/module
containers, Linear/Embedding/LayerNorm/Dropout, multi-head self-attention and
transformer encoder blocks, Adam-family optimizers with warmup schedules, and
the specialised losses used by KTeleBERT (margin ranking for the KE objective,
in-batch contrastive for `L_nc`, Kendall-Gal automatic loss weighting, and the
orthogonal regularizer from Eq. 8).
"""

from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.layers import (
    GELU,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    ReLU,
    Sequential,
    Tanh,
)
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.transformer import TransformerEncoder, TransformerEncoderLayer
from repro.nn.optim import SGD, Adam, AdamW, LinearWarmupSchedule, clip_grad_norm
from repro.nn.summary import parameter_breakdown, summarize
from repro.nn.losses import (
    AutomaticWeightedLoss,
    info_nce,
    margin_ranking_loss,
    numeric_contrastive_loss,
    orthogonal_regularizer,
)

__all__ = [
    "Adam",
    "AdamW",
    "AutomaticWeightedLoss",
    "Dropout",
    "Embedding",
    "GELU",
    "LayerNorm",
    "Linear",
    "ReLU",
    "Tanh",
    "LinearWarmupSchedule",
    "Module",
    "ModuleList",
    "MultiHeadSelfAttention",
    "Parameter",
    "SGD",
    "Sequential",
    "TransformerEncoder",
    "TransformerEncoderLayer",
    "clip_grad_norm",
    "info_nce",
    "margin_ranking_loss",
    "numeric_contrastive_loss",
    "orthogonal_regularizer",
    "parameter_breakdown",
    "summarize",
]
