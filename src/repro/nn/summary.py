"""Model summaries: per-submodule parameter counts."""

from __future__ import annotations

from repro.nn.module import Module


def parameter_breakdown(module: Module) -> dict[str, int]:
    """Parameter counts grouped by top-level child (plus ``(direct)``/total)."""
    breakdown: dict[str, int] = {}
    direct = sum(p.size for p in module._parameters.values())
    if direct:
        breakdown["(direct)"] = direct
    for name, child in module._modules.items():
        breakdown[name] = child.num_parameters()
    breakdown["(total)"] = module.num_parameters()
    return breakdown


def summarize(module: Module, title: str | None = None) -> str:
    """Human-readable summary table of a module's parameters."""
    breakdown = parameter_breakdown(module)
    width = max(len(k) for k in breakdown) + 2
    lines = [title or module.__class__.__name__]
    lines.append("-" * (width + 12))
    for name, count in breakdown.items():
        if name == "(total)":
            lines.append("-" * (width + 12))
        lines.append(f"{name.ljust(width)}{count:>10,}")
    return "\n".join(lines)
