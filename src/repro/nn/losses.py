"""Loss modules specific to the KTeleBERT training objectives.

* :func:`margin_ranking_loss` — generic hinge used by KGE baselines.
* :func:`info_nce` — in-batch contrastive loss (SimCSE and `L_nc`, Eq. 7).
* :class:`AutomaticWeightedLoss` — Kendall-Gal homoscedastic-uncertainty
  weighting used to fuse `L_reg`, `L_cls`, `L_nc` (the paper's `L_num`).
* :func:`orthogonal_regularizer` — `Σ ||I - WᵀW||²_F` over the ANEnc value
  transforms (Eq. 8).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, stack


def margin_ranking_loss(positive_scores: Tensor, negative_scores: Tensor,
                        margin: float = 1.0) -> Tensor:
    """Mean hinge ``max(0, margin + positive - negative)``.

    Scores are *distances* (lower is better for true triples), matching the
    TransE convention.
    """
    raw = positive_scores - negative_scores + margin
    return raw.relu().mean()


def info_nce(anchors: Tensor, positives: Tensor, temperature: float = 0.05) -> Tensor:
    """In-batch InfoNCE: row i of ``anchors`` should match row i of ``positives``.

    All other rows of ``positives`` in the batch act as negatives.  This is the
    SimCSE objective when ``positives`` is a second dropout pass of the same
    sentences.
    """
    if anchors.shape != positives.shape:
        raise ValueError("anchors and positives must have the same shape")
    # Cosine similarity matrix (B, B).
    eps = 1e-8
    norm_a = ((anchors * anchors).sum(axis=-1, keepdims=True) + eps).sqrt()
    norm_p = ((positives * positives).sum(axis=-1, keepdims=True) + eps).sqrt()
    a = anchors / norm_a
    p = positives / norm_p
    logits = (a @ p.transpose()) * (1.0 / temperature)
    targets = np.arange(anchors.shape[0])
    return F.cross_entropy(logits, targets)


def numeric_contrastive_loss(embeddings: Tensor, values: np.ndarray,
                             temperature: float = 0.05) -> Tensor:
    """`L_nc` (Eq. 7): the in-batch sample with the closest value is positive.

    Parameters
    ----------
    embeddings:
        (B, D) numeric embeddings `h` from ANEnc.
    values:
        (B,) raw numeric values; closeness is measured on these.
    """
    values = np.asarray(values, dtype=float)
    batch = embeddings.shape[0]
    if batch < 3:
        # Contrast needs one positive and at least one negative besides self.
        return Tensor(0.0)
    distance = np.abs(values[:, None] - values[None, :])
    np.fill_diagonal(distance, np.inf)
    positive_index = distance.argmin(axis=1)

    eps = 1e-8
    norms = ((embeddings * embeddings).sum(axis=-1, keepdims=True) + eps).sqrt()
    unit = embeddings / norms
    sims = (unit @ unit.transpose()) * (1.0 / temperature)
    # Exclude self-similarity from the denominator.
    mask = np.full((batch, batch), 0.0)
    np.fill_diagonal(mask, -1e9)
    sims = sims + Tensor(mask)
    return F.cross_entropy(sims, positive_index)


class AutomaticWeightedLoss(Module):
    """Kendall-Gal automatic task weighting (Sec. IV-B4).

    ``L = 1/2 Σ L_i / μ_i² + Σ log(1 + μ_i²)`` with learnable noise scales
    ``μ_i``.  Parametrised directly by μ (initialised at 1) as in the paper's
    cited formulation.
    """

    def __init__(self, num_tasks: int):
        super().__init__()
        if num_tasks < 1:
            raise ValueError("num_tasks must be >= 1")
        self.num_tasks = num_tasks
        self.mu = Parameter(np.ones(num_tasks))

    def forward(self, losses: Sequence[Tensor]) -> Tensor:
        if len(losses) != self.num_tasks:
            raise ValueError(
                f"expected {self.num_tasks} losses, got {len(losses)}")
        stacked = stack(list(losses))
        mu_sq = self.mu * self.mu
        weighted = (stacked / mu_sq).sum() * 0.5
        regulariser = (mu_sq + 1.0).log().sum()
        return weighted + regulariser

    def weights(self) -> np.ndarray:
        """Effective per-task weights ``1/(2 μ_i²)`` for inspection."""
        return 0.5 / (self.mu.data ** 2)


def orthogonal_regularizer(matrices: Sequence[Tensor]) -> Tensor:
    """``Σ_i ||I - W_iᵀ W_i||²_F`` (Eq. 8) over square matrices."""
    total: Tensor | None = None
    for w in matrices:
        if w.shape[-1] != w.shape[-2]:
            raise ValueError("orthogonal regularizer expects square matrices")
        eye = Tensor(np.eye(w.shape[-1]))
        gram = w.transpose() @ w
        diff = eye - gram
        term = (diff * diff).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total
