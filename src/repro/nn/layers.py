"""Basic layers: Linear, Embedding, LayerNorm, Dropout, Sequential."""

from __future__ import annotations

import math

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


def _xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int,
                    shape: tuple[int, ...]) -> np.ndarray:
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


class Linear(Module):
    """Affine map ``y = x W + b`` over the last axis.

    Weights use Xavier-uniform initialisation; pass ``bias=False`` for a pure
    projection (used by the attention Q/K/V maps).
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            _xavier_uniform(rng, in_features, out_features,
                            (in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table of ``num_embeddings`` rows of size ``embedding_dim``."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator, scale: float = 0.02):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            rng.normal(0.0, scale, size=(num_embeddings, embedding_dim)))

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings})")
        return self.weight.take_rows(indices)

    def grow(self, extra_rows: int, rng: np.random.Generator,
             scale: float = 0.02) -> None:
        """Append ``extra_rows`` freshly initialised rows.

        Used when tele special tokens are inserted into an already-trained
        vocabulary (Sec. IV-A3 of the paper: new learnable token embeddings
        are added for prompt and tele tokens).
        """
        if extra_rows <= 0:
            return
        new_rows = rng.normal(0.0, scale, size=(extra_rows, self.embedding_dim))
        self.weight.data = np.concatenate([self.weight.data, new_rows], axis=0)
        self.weight.grad = None
        self.num_embeddings += extra_rows


class LayerNorm(Module):
    """Layer normalisation over the last axis with learnable gain/offset."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape))
        self.bias = Parameter(np.zeros(normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Dropout(Module):
    """Inverted dropout driven by an explicit generator for reproducibility."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self.rng, training=self.training)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._seq: list[Module] = []
        for i, module in enumerate(modules):
            self._modules[str(i)] = module
            self._seq.append(module)

    def forward(self, x):
        for module in self._seq:
            x = module(x)
        return x

    def __len__(self):
        return len(self._seq)

    def __getitem__(self, index: int) -> Module:
        return self._seq[index]


class GELU(Module):
    """GELU activation as a module (for Sequential)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class ReLU(Module):
    """ReLU activation as a module (for Sequential)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Tanh activation as a module (for Sequential)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()
