"""Module and parameter containers.

:class:`Parameter` is a :class:`~repro.tensor.Tensor` that always requires
gradients; :class:`Module` auto-registers parameters and sub-modules assigned
as attributes, and provides traversal (``parameters`` / ``named_parameters``),
train/eval mode switching, gradient zeroing, and a flat ``state_dict`` for
checkpointing.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor; created with ``requires_grad=True``."""

    def __init__(self, data, *, dtype=None):
        super().__init__(data, requires_grad=True, dtype=dtype)
        # Parameters are leaves even when constructed inside no_grad blocks.
        self.requires_grad = True


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; registration is automatic.  ``training`` toggles behaviour of
    stochastic layers (dropout, dynamic masking) and is propagated by
    :meth:`train` / :meth:`eval`.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, parameter: Parameter) -> None:
        """Explicitly register a parameter (used for dynamic collections)."""
        self._parameters[name] = parameter
        object.__setattr__(self, name, parameter)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` for this module and children."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        """All parameters of this module and its children."""
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants depth-first."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Modes and gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter keyed by dotted path."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray],
                        strict: bool = True) -> None:
        """Load parameter values previously produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}")
        for name, values in state.items():
            if name not in own:
                continue
            if own[name].data.shape != values.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{own[name].data.shape} vs {values.shape}")
            own[name].data[...] = values

    # ------------------------------------------------------------------
    # Calling
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """A list of sub-modules registered under their index."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        self._modules[str(len(self._items))] = module
        self._items.append(module)

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
