"""Transformer encoder blocks (post-norm, as in the original BERT)."""

from __future__ import annotations

import numpy as np

from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import Dropout, LayerNorm, Linear
from repro.nn.module import Module, ModuleList
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class TransformerEncoderLayer(Module):
    """One encoder block: self-attention + FFN, each with residual + LayerNorm."""

    def __init__(self, d_model: int, num_heads: int, d_ff: int,
                 rng: np.random.Generator, dropout: float = 0.0):
        super().__init__()
        self.attention = MultiHeadSelfAttention(d_model, num_heads, rng,
                                                dropout=dropout)
        self.attention_norm = LayerNorm(d_model)
        self.ffn_in = Linear(d_model, d_ff, rng)
        self.ffn_out = Linear(d_ff, d_model, rng)
        self.ffn_norm = LayerNorm(d_model)
        self.dropout = Dropout(dropout, rng)

    def forward(self, x: Tensor, attention_mask: np.ndarray | None = None,
                mask_bias: np.ndarray | None = None) -> Tensor:
        attended = self.attention(x, attention_mask=attention_mask,
                                  mask_bias=mask_bias)
        x = self.attention_norm(x + self.dropout(attended))
        hidden = self.ffn_out(F.gelu(self.ffn_in(x)))
        return self.ffn_norm(x + self.dropout(hidden))


class TransformerEncoder(Module):
    """Stack of :class:`TransformerEncoderLayer`.

    ``forward`` returns the final hidden states ``(B, T, D)``; pass
    ``return_all_layers=True`` to also receive every intermediate layer (the
    NDec numeric decoder consumes multi-layer interactions, Sec. IV-B1).
    """

    def __init__(self, num_layers: int, d_model: int, num_heads: int,
                 d_ff: int, rng: np.random.Generator, dropout: float = 0.0):
        super().__init__()
        self.layers = ModuleList([
            TransformerEncoderLayer(d_model, num_heads, d_ff, rng, dropout=dropout)
            for _ in range(num_layers)
        ])

    def forward(self, x: Tensor, attention_mask: np.ndarray | None = None,
                return_all_layers: bool = False):
        # Build the additive attention bias once for the whole stack rather
        # than once per layer.
        mask_bias = (F.attention_scores_mask(attention_mask, dtype=x.dtype)
                     if attention_mask is not None else None)
        all_layers = []
        for layer in self.layers:
            x = layer(x, mask_bias=mask_bias)
            if return_all_layers:
                all_layers.append(x)
        if return_all_layers:
            return x, all_layers
        return x
