"""Quantitative diagnostics over service-embedding matrices."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _unit_rows(vectors: np.ndarray) -> np.ndarray:
    vectors = np.asarray(vectors, dtype=float)
    if vectors.ndim != 2:
        raise ValueError("expected a (N, d) matrix")
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    return vectors / np.maximum(norms, 1e-12)


def anisotropy(vectors: np.ndarray) -> float:
    """Mean pairwise cosine similarity — near 1 means collapsed space.

    SimCSE exists to push this down (Sec. III-B: "alleviate the collapse of
    representation learning").
    """
    unit = _unit_rows(vectors)
    n = len(unit)
    if n < 2:
        raise ValueError("need at least 2 vectors")
    sims = unit @ unit.T
    upper = np.triu_indices(n, k=1)
    return float(sims[upper].mean())


def theme_separation(vectors: np.ndarray, labels: Sequence[str]) -> float:
    """Within-label minus cross-label mean cosine similarity.

    The margin the downstream tasks exploit: events of one fault theme should
    embed closer together than events of different themes.
    """
    unit = _unit_rows(vectors)
    labels = list(labels)
    if len(labels) != len(unit):
        raise ValueError("labels must align with vectors")
    sims = unit @ unit.T
    same, cross = [], []
    for i in range(len(unit)):
        for j in range(i + 1, len(unit)):
            (same if labels[i] == labels[j] else cross).append(sims[i, j])
    if not same or not cross:
        raise ValueError("need both same-label and cross-label pairs")
    return float(np.mean(same) - np.mean(cross))


def silhouette_score(vectors: np.ndarray, labels: Sequence[str]) -> float:
    """Mean silhouette coefficient under cosine distance.

    ``(b - a) / max(a, b)`` per point, where ``a`` is the mean distance to
    its own cluster and ``b`` the smallest mean distance to another cluster.
    """
    unit = _unit_rows(vectors)
    labels = np.asarray(list(labels))
    if len(labels) != len(unit):
        raise ValueError("labels must align with vectors")
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ValueError("need at least 2 clusters")
    distance = 1.0 - unit @ unit.T
    scores: list[float] = []
    for i in range(len(unit)):
        own = labels == labels[i]
        own[i] = False
        if not own.any():
            continue  # singleton cluster: silhouette undefined
        a = float(distance[i, own].mean())
        b = np.inf
        for other in unique:
            if other == labels[i]:
                continue
            members = labels == other
            b = min(b, float(distance[i, members].mean()))
        scores.append((b - a) / max(a, b, 1e-12))
    if not scores:
        raise ValueError("all clusters are singletons")
    return float(np.mean(scores))


def nearest_neighbors(vectors: np.ndarray, names: Sequence[str],
                      query_index: int, k: int = 5) -> list[tuple[str, float]]:
    """Top-``k`` cosine neighbours of ``names[query_index]``."""
    unit = _unit_rows(vectors)
    if not 0 <= query_index < len(unit):
        raise IndexError("query index out of range")
    sims = unit @ unit[query_index]
    order = np.argsort(-sims)
    out: list[tuple[str, float]] = []
    for index in order:
        if index == query_index:
            continue
        out.append((names[index], float(sims[index])))
        if len(out) == k:
            break
    return out


def value_order_correlation(values: np.ndarray,
                            embeddings: np.ndarray) -> float:
    """Spearman correlation between value distance and embedding distance.

    The Fig. 10 metric: high when the embedding space is ordered by the
    numeric value.
    """
    from scipy import stats

    values = np.asarray(values, dtype=float)
    unit = _unit_rows(embeddings)
    if len(values) != len(unit):
        raise ValueError("values must align with embeddings")
    if len(values) < 3:
        raise ValueError("need at least 3 points")
    value_distance = np.abs(values[:, None] - values[None, :])
    embedding_distance = 1.0 - unit @ unit.T
    upper = np.triu_indices(len(values), k=1)
    return float(stats.spearmanr(value_distance[upper],
                                 embedding_distance[upper]).statistic)
