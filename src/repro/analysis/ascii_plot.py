"""Matplotlib-free terminal plotting for projections and histograms."""

from __future__ import annotations

import numpy as np

#: Density ramp used to colour scatter points by value (light → dark).
_RAMP = ".:-=+*#%@"


def ascii_scatter(x: np.ndarray, y: np.ndarray,
                  values: np.ndarray | None = None,
                  width: int = 60, height: int = 20,
                  title: str | None = None) -> str:
    """Render a scatter plot; ``values`` in [0, 1] pick the glyph shade.

    This is how the repository renders the Fig. 10 projections (the paper
    colours points by value; we shade them).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be equal-length 1-D arrays")
    if len(x) == 0:
        raise ValueError("nothing to plot")
    if values is None:
        values = np.full(len(x), 1.0)
    values = np.clip(np.asarray(values, dtype=float), 0.0, 1.0)

    x_min, x_max = float(x.min()), float(x.max())
    y_min, y_max = float(y.min()), float(y.max())
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0

    grid = [[" "] * width for _ in range(height)]
    for xi, yi, vi in zip(x, y, values):
        col = int((xi - x_min) / x_span * (width - 1))
        row = height - 1 - int((yi - y_min) / y_span * (height - 1))
        glyph = _RAMP[int(vi * (len(_RAMP) - 1))]
        grid[row][col] = glyph

    border = "+" + "-" * width + "+"
    lines = []
    if title:
        lines.append(title)
    lines.append(border)
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append(border)
    lines.append(f"x: [{x_min:.2f}, {x_max:.2f}]  y: [{y_min:.2f}, {y_max:.2f}]"
                 f"  shade: low {_RAMP[0]} … high {_RAMP[-1]}")
    return "\n".join(lines)


def ascii_histogram(values: np.ndarray, bins: int = 10, width: int = 40,
                    title: str | None = None) -> str:
    """Horizontal-bar histogram."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("nothing to plot")
    if bins < 1:
        raise ValueError("bins must be >= 1")
    counts, edges = np.histogram(values, bins=bins)
    peak = counts.max() or 1
    lines = [title] if title else []
    for count, low, high in zip(counts, edges, edges[1:]):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"[{low:9.3f}, {high:9.3f}) {bar} {count}")
    return "\n".join(lines)
