"""Embedding-space diagnostics and terminal plotting.

Used by the ablation benches and the inspection examples to quantify what
pre-training bought: theme separation, anisotropy (representation collapse),
nearest neighbours, and value-order correlation; plus matplotlib-free ASCII
scatter/histogram rendering for the Fig. 10 projections.
"""

from repro.analysis.embeddings import (
    anisotropy,
    nearest_neighbors,
    silhouette_score,
    theme_separation,
    value_order_correlation,
)
from repro.analysis.ascii_plot import ascii_histogram, ascii_scatter

__all__ = [
    "anisotropy",
    "ascii_histogram",
    "ascii_scatter",
    "nearest_neighbors",
    "silhouette_score",
    "theme_separation",
    "value_order_correlation",
]
