"""Durable file IO shared by checkpointing, vocab, and the serving store.

Every artifact the repo persists for later reloading (checkpoints, vocab
files, snapshot metadata) must go through :func:`atomic_write_bytes` /
:func:`atomic_write_text`: serialise in memory, write to a temp file in
the destination directory, fsync, rename over the target, fsync the
directory.  Readers then always see either the previous complete file or
the new complete file — never a torn write.  Append-only journals are the
one sanctioned alternative (a torn tail loses the last record, not the
file).  The ``RL004`` lint rule enforces this discipline.

This module is dependency-free on purpose: low-level packages
(``repro.tokenization``) import it without dragging in the model stack.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path
from typing import BinaryIO, Iterator


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Durably write ``data`` to ``path``: temp file + fsync + rename.

    The temporary file is created in the destination directory so the final
    :func:`os.replace` is a same-filesystem atomic rename; the directory is
    fsynced afterwards so the rename itself survives a power loss.  Readers
    therefore always see either the previous complete file or the new
    complete file, never a partial write.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=f".{path.name}.tmp-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    dir_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return path


def atomic_write_text(path: str | Path, text: str,
                      encoding: str = "utf-8") -> Path:
    """Text-mode convenience wrapper over :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode(encoding))


@contextlib.contextmanager
def atomic_writer(path: str | Path) -> Iterator[BinaryIO]:
    """Streaming variant of :func:`atomic_write_bytes`.

    Yields a binary handle onto a temp file in the destination directory;
    on clean exit the data is fsynced and renamed over ``path`` (then the
    directory is fsynced), on any exception the temp file is unlinked and
    the previous complete file survives untouched.  Use this when the
    payload is too large to materialise in memory first — e.g. rewriting
    a multi-gigabyte log record by record.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=f".{path.name}.tmp-")
    try:
        with os.fdopen(fd, "wb") as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    dir_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


__all__ = ["atomic_write_bytes", "atomic_write_text", "atomic_writer"]
