"""Whole-program analysis layer (``repro.lint.flow``'s engine).

The per-module rules (RL001-RL007) see one file at a time, which is why
the bug classes PRs 4, 7, and 9 fixed by hand kept escaping them: a
blocking call two frames below a ``with lock:``, a ``deadline`` accepted
but never forwarded, a ``SharedArray`` opened on one path and unlinked on
another.  This module builds the project-wide context those rules need:

* a **symbol table** spanning every linted file — imports and aliases
  (``import x as y`` / ``from x import y as z``), module-level functions
  and classes, and ``__init__.py`` re-exports resolved transitively;
* a **call graph** — call sites resolved through the symbol table,
  ``self.``-method resolution within a class (including base classes and
  ``self.attr = SomeClass(...)`` attribute types), and local
  ``var = SomeClass(...)`` constructor types;
* **per-function summaries** — locks acquired (normalised to
  project-wide identities), blocking calls made, ``deadline``/``timeout``
  parameters accepted and forwarded, and resources opened/closed.

Summaries are plain-JSON serialisable so incremental runs can reuse them
from ``tools/.lint_cache.json`` keyed by file SHA: an unchanged file is
never re-parsed; only the (cheap) graph fixpoints rerun.

Everything here is stdlib-only (``ast`` + ``hashlib``) so the lint tier
keeps running without the package's numeric dependencies installed.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import re
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.core import Finding, LintConfig, ModuleContext, RULES

#: Bump when summary extraction changes shape/semantics: stale cache
#: entries from an older linter must not feed the graph passes.
SUMMARY_VERSION = 1

_DEADLINE_PARAM_RE = re.compile(r"(deadline|timeout)", re.IGNORECASE)
_LOCKY_RE = re.compile(r"(lock|cond|mutex|sem)", re.IGNORECASE)

#: Keyword names that bound a call (a timeout or a threaded-through
#: deadline); a call carrying one is not an unbounded sink.
_BOUND_KWARGS = frozenset({
    "timeout", "timeout_s", "timeout_ms", "deadline", "deadline_s",
    "deadline_ms", "flush_timeout_s", "total_budget_s",
})

#: Attribute calls that may block the calling thread (superset shared
#: with the module-scope rules; kept in sync by tests).
_BLOCKING_ATTRS = frozenset({
    "encode", "encode_names", "encode_texts", "embed", "result", "wait",
    "wait_for", "acquire", "join", "get", "flush", "recv", "sleep",
})

_WAIT_ATTRS = frozenset({"wait", "wait_for", "get", "result", "acquire",
                         "join", "sleep", "recv"})

#: Sinks that make a function "may block" for the *transitive* analysis.
#: ``flush`` stays RL001-only: file/stream flushes are everywhere and
#: cheap, so propagating them through the call graph would drown the
#: real provider-flush findings in noise.
_TRANSITIVE_BLOCKING = frozenset(_BLOCKING_ATTRS - {"flush"})

_THREADY_RE = re.compile(r"(thread|worker|proc|pool)", re.IGNORECASE)

#: ``var.close()``-shaped calls that count as releasing a resource.
_CLOSE_ATTRS = frozenset({"close", "unlink", "release", "shutdown",
                          "terminate", "__exit__"})


def _attr_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` -> ["a", "b", "c"]; None for anything fancier."""
    parts: list[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        parts.append(cursor.id)
        return list(reversed(parts))
    return None


def _names_in(node: ast.AST) -> set[str]:
    """Every ``Name`` identifier loaded anywhere inside ``node``."""
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def rel_to_module(rel: str) -> str:
    """Repo-relative path -> dotted pseudo-module name.

    ``src/repro/serving/pool.py`` -> ``repro.serving.pool``;
    ``src/repro/lint/__init__.py`` -> ``repro.lint``;
    ``tests/test_lint.py`` -> ``tests.test_lint`` (tools/ and
    benchmarks/ likewise get pseudo-packages so their files join the
    same symbol table).
    """
    path = rel[:-3] if rel.endswith(".py") else rel
    parts = [p for p in path.split("/") if p]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<root>"


# ---------------------------------------------------------------------
# Summary data model (all JSON round-trippable for the cache)
# ---------------------------------------------------------------------
@dataclass
class CallSummary:
    """One call site inside a function body."""

    chain: list[str]          # receiver chain, e.g. ["self", "_batcher", "encode"]
    line: int
    col: int
    locks_held: list[str]     # normalised lock ids held at the site
    bounded: bool             # carries a timeout/deadline-ish argument
    tainted: bool             # an argument derives from a deadline param
    guarded: bool             # an enclosing if/while test mentions one
    nargs: int = 0            # positional argument count
    const_str_args: bool = False  # every positional arg a str literal

    def to_dict(self) -> dict:
        return {"chain": self.chain, "line": self.line, "col": self.col,
                "locks_held": self.locks_held, "bounded": self.bounded,
                "tainted": self.tainted, "guarded": self.guarded,
                "nargs": self.nargs,
                "const_str_args": self.const_str_args}

    @staticmethod
    def from_dict(raw: dict) -> "CallSummary":
        return CallSummary(chain=list(raw["chain"]), line=raw["line"],
                           col=raw["col"],
                           locks_held=list(raw["locks_held"]),
                           bounded=raw["bounded"], tainted=raw["tainted"],
                           guarded=raw["guarded"],
                           nargs=raw.get("nargs", 0),
                           const_str_args=raw.get("const_str_args",
                                                  False))

    @property
    def attr(self) -> str:
        return self.chain[-1]

    @property
    def receiver(self) -> str:
        return ".".join(self.chain[:-1])


@dataclass
class ResourceSummary:
    """One resource opened inside a function body."""

    var: str                  # local name bound to the handle
    kind: str                 # resolved opener, e.g. "socket.socket"
    line: int
    col: int
    closed: str               # "with" | "guaranteed" | "conditional" | "none"
    escapes: bool             # returned / yielded / stored / passed away

    def to_dict(self) -> dict:
        return {"var": self.var, "kind": self.kind, "line": self.line,
                "col": self.col, "closed": self.closed,
                "escapes": self.escapes}

    @staticmethod
    def from_dict(raw: dict) -> "ResourceSummary":
        return ResourceSummary(var=raw["var"], kind=raw["kind"],
                               line=raw["line"], col=raw["col"],
                               closed=raw["closed"],
                               escapes=raw["escapes"])


@dataclass
class LockEdge:
    """Lock ``outer`` was held while ``inner`` was acquired here."""

    outer: str
    inner: str
    line: int

    def to_dict(self) -> dict:
        return {"outer": self.outer, "inner": self.inner, "line": self.line}

    @staticmethod
    def from_dict(raw: dict) -> "LockEdge":
        return LockEdge(outer=raw["outer"], inner=raw["inner"],
                        line=raw["line"])


@dataclass
class FunctionSummary:
    """Everything the flow rules need to know about one function."""

    qualname: str             # e.g. "CachedProvider.encode_names"
    line: int
    params: list[str]
    deadline_params: list[str]
    calls: list[CallSummary]
    locks: list[str]          # lock ids acquired via `with` in this body
    lock_edges: list[LockEdge]
    resources: list[ResourceSummary]
    var_types: dict[str, str]  # local var -> raw constructor text
    class_name: str = ""       # enclosing class, "" for free functions

    def to_dict(self) -> dict:
        return {
            "qualname": self.qualname, "line": self.line,
            "params": self.params,
            "deadline_params": self.deadline_params,
            "calls": [c.to_dict() for c in self.calls],
            "locks": self.locks,
            "lock_edges": [e.to_dict() for e in self.lock_edges],
            "resources": [r.to_dict() for r in self.resources],
            "var_types": self.var_types,
            "class_name": self.class_name,
        }

    @staticmethod
    def from_dict(raw: dict) -> "FunctionSummary":
        return FunctionSummary(
            qualname=raw["qualname"], line=raw["line"],
            params=list(raw["params"]),
            deadline_params=list(raw["deadline_params"]),
            calls=[CallSummary.from_dict(c) for c in raw["calls"]],
            locks=list(raw["locks"]),
            lock_edges=[LockEdge.from_dict(e) for e in raw["lock_edges"]],
            resources=[ResourceSummary.from_dict(r)
                       for r in raw["resources"]],
            var_types=dict(raw["var_types"]),
            class_name=raw.get("class_name", ""))


@dataclass
class ClassSummary:
    """Methods, bases, and constructor-typed attributes of one class."""

    name: str
    line: int
    methods: list[str]
    bases: list[str]            # raw base names (resolved at build time)
    attr_types: dict[str, str]  # self.attr -> raw constructor text

    def to_dict(self) -> dict:
        return {"name": self.name, "line": self.line,
                "methods": self.methods, "bases": self.bases,
                "attr_types": self.attr_types}

    @staticmethod
    def from_dict(raw: dict) -> "ClassSummary":
        return ClassSummary(name=raw["name"], line=raw["line"],
                            methods=list(raw["methods"]),
                            bases=list(raw["bases"]),
                            attr_types=dict(raw["attr_types"]))


@dataclass
class ModuleSummary:
    """The per-file slice of the project symbol table."""

    rel: str
    module: str
    imports: dict[str, str]        # local alias -> dotted target
    functions: dict[str, FunctionSummary]  # qualname -> summary
    classes: dict[str, ClassSummary]
    module_locals: list[str]       # module-level assigned names

    def to_dict(self) -> dict:
        return {
            "version": SUMMARY_VERSION,
            "rel": self.rel, "module": self.module,
            "imports": self.imports,
            "functions": {q: f.to_dict()
                          for q, f in self.functions.items()},
            "classes": {n: c.to_dict() for n, c in self.classes.items()},
            "module_locals": self.module_locals,
        }

    @staticmethod
    def from_dict(raw: dict) -> "ModuleSummary":
        return ModuleSummary(
            rel=raw["rel"], module=raw["module"],
            imports=dict(raw["imports"]),
            functions={q: FunctionSummary.from_dict(f)
                       for q, f in raw["functions"].items()},
            classes={n: ClassSummary.from_dict(c)
                     for n, c in raw["classes"].items()},
            module_locals=list(raw["module_locals"]))


# ---------------------------------------------------------------------
# Extraction: one parsed module -> ModuleSummary
# ---------------------------------------------------------------------
class _Extractor:
    """Single pass over one module's AST producing its summary."""

    def __init__(self, rel: str, tree: ast.AST, config: LintConfig):
        self.rel = rel
        self.module = rel_to_module(rel)
        self.config = config
        self.tree = tree
        self.imports: dict[str, str] = {}
        self.functions: dict[str, FunctionSummary] = {}
        self.classes: dict[str, ClassSummary] = {}
        self.module_locals: list[str] = []

    def run(self) -> ModuleSummary:
        for node in self.tree.body if isinstance(self.tree, ast.Module) \
                else []:
            self._collect_imports(node)
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.module_locals.append(target.id)
            elif isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name):
                self.module_locals.append(node.target.id)
        self._walk_defs(self.tree, prefix="", class_name="")
        return ModuleSummary(rel=self.rel, module=self.module,
                             imports=self.imports,
                             functions=self.functions,
                             classes=self.classes,
                             module_locals=self.module_locals)

    def _collect_imports(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for name in node.names:
                alias = name.asname or name.name.split(".")[0]
                # `import a.b` binds `a`; `import a.b as c` binds the leaf.
                self.imports[alias] = name.name if name.asname \
                    else name.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.names:
            base = node.module or ""
            if node.level:  # relative import: anchor at this package
                package = self.module.split(".")
                if self.rel.endswith("__init__.py"):
                    anchor = package[:len(package) - node.level + 1]
                else:
                    anchor = package[:len(package) - node.level]
                base = ".".join(anchor + ([node.module]
                                          if node.module else []))
            for name in node.names:
                if name.name == "*":
                    continue
                alias = name.asname or name.name
                self.imports[alias] = f"{base}.{name.name}" if base \
                    else name.name

    # -- defs ----------------------------------------------------------
    def _walk_defs(self, node: ast.AST, prefix: str,
                   class_name: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                self.functions[qualname] = self._summarise_function(
                    child, qualname, class_name)
                self._walk_defs(child, prefix=f"{qualname}.",
                                class_name="")
            elif isinstance(child, ast.ClassDef):
                qualname = f"{prefix}{child.name}"
                self.classes[qualname] = self._summarise_class(
                    child, qualname)
                self._walk_defs(child, prefix=f"{qualname}.",
                                class_name=qualname)
            elif not isinstance(child, (ast.Lambda,)):
                self._walk_defs(child, prefix=prefix,
                                class_name=class_name)

    def _summarise_class(self, node: ast.ClassDef,
                         qualname: str) -> ClassSummary:
        methods = [child.name for child in node.body
                   if isinstance(child, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))]
        bases = []
        for base in node.bases:
            chain = _attr_chain(base)
            if chain:
                bases.append(".".join(chain))
        attr_types: dict[str, str] = {}
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Assign) or \
                    not isinstance(inner.value, ast.Call):
                continue
            ctor = _attr_chain(inner.value.func)
            if ctor is None:
                continue
            for target in inner.targets:
                if isinstance(target, ast.Attribute) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == "self":
                    previous = attr_types.get(target.attr)
                    dotted = ".".join(ctor)
                    if previous is not None and previous != dotted:
                        attr_types[target.attr] = ""  # conflicting types
                    else:
                        attr_types[target.attr] = dotted
        attr_types = {attr: dotted for attr, dotted in attr_types.items()
                      if dotted}
        return ClassSummary(name=qualname, line=node.lineno,
                            methods=methods, bases=bases,
                            attr_types=attr_types)

    # -- function bodies ----------------------------------------------
    def _summarise_function(self, node, qualname: str,
                            class_name: str) -> FunctionSummary:
        args = node.args
        params = [a.arg for a in (args.posonlyargs + args.args
                                  + args.kwonlyargs)]
        if args.vararg:
            params.append(args.vararg.arg)
        if args.kwarg:
            params.append(args.kwarg.arg)
        deadline_params = [p for p in params
                           if _DEADLINE_PARAM_RE.search(p)]

        tainted = self._taint_set(node, set(deadline_params))
        var_types = self._local_types(node)

        calls: list[CallSummary] = []
        locks: list[str] = []
        lock_edges: list[LockEdge] = []

        def lock_id(expr: ast.AST) -> str | None:
            return self._lock_id(expr, qualname, class_name, params,
                                 var_types)

        def visit(stmts: Iterable[ast.stmt], held: tuple[str, ...],
                  guarded: bool) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue  # nested defs run later, outside these locks
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    new_held = list(held)
                    for item in stmt.items:
                        self._scan_expr(item.context_expr, calls, held,
                                        tainted, guarded)
                        this_lock = lock_id(item.context_expr)
                        if this_lock is not None:
                            for outer in new_held:
                                lock_edges.append(LockEdge(
                                    outer=outer, inner=this_lock,
                                    line=item.context_expr.lineno))
                            if this_lock not in locks:
                                locks.append(this_lock)
                            new_held.append(this_lock)
                    visit(stmt.body, tuple(new_held), guarded)
                    continue
                if isinstance(stmt, (ast.If, ast.While)):
                    self._scan_expr(stmt.test, calls, held, tainted,
                                    guarded)
                    test_guard = guarded or bool(
                        _names_in(stmt.test) & tainted)
                    visit(stmt.body, held, test_guard)
                    visit(stmt.orelse, held, test_guard)
                    continue
                if isinstance(stmt, ast.For):
                    self._scan_expr(stmt.iter, calls, held, tainted,
                                    guarded)
                    visit(stmt.body, held, guarded)
                    visit(stmt.orelse, held, guarded)
                    continue
                if isinstance(stmt, ast.Try):
                    visit(stmt.body, held, guarded)
                    for handler in stmt.handlers:
                        visit(handler.body, held, guarded)
                    visit(stmt.orelse, held, guarded)
                    visit(stmt.finalbody, held, guarded)
                    continue
                # Generic statement: scan every expression inside it.
                for child in ast.walk(stmt):
                    if isinstance(child, (ast.FunctionDef,
                                          ast.AsyncFunctionDef,
                                          ast.Lambda, ast.ClassDef)):
                        continue
                    if isinstance(child, ast.Call):
                        self._record_call(child, calls, held, tainted,
                                          guarded)

        visit(node.body, (), False)
        resources = self._scan_resources(node, var_types)
        return FunctionSummary(
            qualname=qualname, line=node.lineno, params=params,
            deadline_params=deadline_params, calls=calls, locks=locks,
            lock_edges=lock_edges, resources=resources,
            var_types=var_types, class_name=class_name)

    def _scan_expr(self, expr: ast.AST, calls, held, tainted,
                   guarded) -> None:
        for child in ast.walk(expr):
            if isinstance(child, (ast.Lambda,)):
                continue
            if isinstance(child, ast.Call):
                self._record_call(child, calls, held, tainted, guarded)

    def _record_call(self, node: ast.Call, calls: list[CallSummary],
                     held: tuple[str, ...], tainted: set[str],
                     guarded: bool) -> None:
        chain = _attr_chain(node.func)
        if chain is None:
            return
        arg_names: set[str] = set()
        bounded = False
        for arg in node.args:
            arg_names |= _names_in(arg)
        for kw in node.keywords:
            arg_names |= _names_in(kw.value)
            if kw.arg is not None and (
                    kw.arg in _BOUND_KWARGS
                    or _DEADLINE_PARAM_RE.search(kw.arg)):
                bounded = True
        attr = chain[-1]
        if attr in ("wait", "wait_for", "acquire", "result", "recv",
                    "sleep") and node.args:
            bounded = True  # positional timeout-shaped argument
        if attr == "get" and len(node.args) >= 2:
            bounded = True  # Queue.get(block, timeout)
        is_tainted = bool(arg_names & tainted)
        # `deadline.remaining()` threaded as a receiver method is a use.
        if set(chain[:-1]) & tainted:
            is_tainted = True
        if is_tainted:
            bounded = True
        # "utf-8"-style literals or an `encoding=`-named variable mark a
        # codec call (str.encode), not a model encode.
        const_str_args = bool(node.args) and all(
            (isinstance(a, ast.Constant) and isinstance(a.value, str))
            or (isinstance(a, ast.Name)
                and re.search(r"encoding|codec", a.id, re.IGNORECASE))
            for a in node.args)
        calls.append(CallSummary(chain=chain, line=node.lineno,
                                 col=node.col_offset,
                                 locks_held=list(held), bounded=bounded,
                                 tainted=is_tainted, guarded=guarded,
                                 nargs=len(node.args),
                                 const_str_args=const_str_args))

    def _taint_set(self, node, seeds: set[str]) -> set[str]:
        """Names derived (transitively, via simple assignment) from the
        function's deadline/timeout parameters."""
        if not seeds:
            return set()
        tainted = set(seeds)
        for _ in range(4):  # fixpoint; chains deeper than 4 are unheard of
            grew = False
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Assign):
                    value_names = _names_in(stmt.value)
                    if value_names & tainted:
                        for target in stmt.targets:
                            if isinstance(target, ast.Name) and \
                                    target.id not in tainted:
                                tainted.add(target.id)
                                grew = True
                elif isinstance(stmt, ast.AnnAssign) and stmt.value and \
                        isinstance(stmt.target, ast.Name):
                    if _names_in(stmt.value) & tainted and \
                            stmt.target.id not in tainted:
                        tainted.add(stmt.target.id)
                        grew = True
            if not grew:
                break
        return tainted

    def _local_types(self, node) -> dict[str, str]:
        """``var = SomeClass(...)`` constructor types (raw dotted text)."""
        types: dict[str, str] = {}
        for stmt in ast.walk(node):
            if not isinstance(stmt, ast.Assign) or \
                    not isinstance(stmt.value, ast.Call):
                continue
            ctor = _attr_chain(stmt.value.func)
            if ctor is None:
                continue
            dotted = ".".join(ctor)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    previous = types.get(target.id)
                    if previous is not None and previous != dotted:
                        types[target.id] = ""
                    else:
                        types[target.id] = dotted
        return {var: dotted for var, dotted in types.items() if dotted}

    # -- lock identity -------------------------------------------------
    def _lock_id(self, expr: ast.AST, qualname: str, class_name: str,
                 params: list[str],
                 var_types: dict[str, str]) -> str | None:
        """Normalise a with-item to a project-wide lock identity.

        ``self._lock`` in class ``C`` of module ``m`` -> ``m.C._lock``;
        a module-level lock name -> ``m.<name>``; a local/parameter lock
        -> ``m.<qualname>.<name>`` (function-scoped identity).  Non-locky
        expressions return None.
        """
        node = expr
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if chain and chain[-1] == "acquire":
                node = node.func.value  # `with lock.acquire():` idiom
            elif chain and _LOCKY_RE.search(".".join(chain)):
                # `with make_lock():` — identify by the factory call site.
                return f"{self.module}.{qualname}.{'.'.join(chain)}()"
            else:
                return None
        chain = _attr_chain(node)
        if chain is None:
            return None
        text = ".".join(chain)
        if not _LOCKY_RE.search(text):
            return None
        root = chain[0]
        if root in ("self", "cls"):
            owner = class_name or qualname
            return f"{self.module}.{owner}." + ".".join(chain[1:])
        if root in self.imports:
            resolved = self.imports[root]
            return ".".join([resolved] + chain[1:])
        if root in self.module_locals:
            return f"{self.module}.{text}"
        # Parameter or local variable: function-scoped identity.
        return f"{self.module}.{qualname}.{text}"

    # -- resources -----------------------------------------------------
    def _opener_kind(self, call: ast.Call) -> str | None:
        chain = _attr_chain(call.func)
        if chain is None:
            return None
        root = self.imports.get(chain[0], chain[0])
        dotted = ".".join([root] + chain[1:])
        for suffix in self.config.resource_openers:
            if dotted == suffix or dotted.endswith("." + suffix):
                # mmap-mode np.load only hands back a handle when asked.
                if suffix == "numpy.load" and not any(
                        kw.arg == "mmap_mode" for kw in call.keywords):
                    return None
                return suffix
        return None

    def _scan_resources(self, node,
                        var_types: dict[str, str]
                        ) -> list[ResourceSummary]:
        resources: list[ResourceSummary] = []
        opens: dict[str, tuple[str, int, int]] = {}
        with_vars: set[str] = set()
        for stmt in ast.walk(node):
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if isinstance(item.context_expr, ast.Call) and \
                            self._opener_kind(item.context_expr):
                        if isinstance(item.optional_vars, ast.Name):
                            with_vars.add(item.optional_vars.id)
            elif isinstance(stmt, ast.Assign) and \
                    isinstance(stmt.value, ast.Call):
                kind = self._opener_kind(stmt.value)
                if kind is None:
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        opens[target.id] = (kind, stmt.value.lineno,
                                            stmt.value.col_offset)
        for var, (kind, line, col) in opens.items():
            if var in with_vars:
                continue
            aliases = self._resource_aliases(node, var)
            escapes = self._escapes(node, aliases)
            closed = self._close_state(node, aliases)
            resources.append(ResourceSummary(
                var=var, kind=kind, line=line, col=col, closed=closed,
                escapes=escapes))
        return resources

    def _resource_aliases(self, node, var: str) -> set[str]:
        aliases = {var}
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign) and \
                    isinstance(stmt.value, ast.Name) and \
                    stmt.value.id in aliases:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
        return aliases

    def _escapes(self, node, aliases: set[str]) -> bool:
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Return) and stmt.value is not None \
                    and _names_in(stmt.value) & aliases:
                return True
            if isinstance(stmt, (ast.Yield, ast.YieldFrom)) and \
                    stmt.value is not None and \
                    _names_in(stmt.value) & aliases:
                return True
            if isinstance(stmt, ast.Assign):
                if isinstance(stmt.value, ast.Name) and \
                        stmt.value.id in aliases:
                    for target in stmt.targets:
                        if isinstance(target, (ast.Attribute,
                                               ast.Subscript)):
                            return True  # stored: ownership transferred
            if isinstance(stmt, ast.Call):
                chain = _attr_chain(stmt.func)
                receiver_is_resource = chain is not None and \
                    chain[0] in aliases
                if receiver_is_resource:
                    continue  # its own method calls are uses, not escapes
                for arg in list(stmt.args) + \
                        [kw.value for kw in stmt.keywords]:
                    if _names_in(arg) & aliases:
                        return True  # handed to someone else
        return False

    def _close_state(self, node, aliases: set[str]) -> str:
        """'guaranteed' / 'conditional' / 'none' for the close calls."""
        best = "none"
        parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(node):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        for stmt in ast.walk(node):
            if not isinstance(stmt, ast.Call):
                continue
            chain = _attr_chain(stmt.func)
            if chain is None or len(chain) < 2:
                continue
            if chain[0] not in aliases or chain[-1] not in _CLOSE_ATTRS:
                continue
            state = "guaranteed"
            cursor: ast.AST | None = stmt
            while cursor is not None and cursor is not node:
                parent = parents.get(cursor)
                if isinstance(parent, ast.Try):
                    in_finally = any(cursor is s or any(
                        cursor is d for d in ast.walk(s))
                        for s in parent.finalbody)
                    if in_finally:
                        break  # finally runs on every path: guaranteed
                    state = "conditional"  # try/except body may be skipped
                elif isinstance(parent, (ast.If, ast.While, ast.For,
                                         ast.ExceptHandler)):
                    state = "conditional"
                elif isinstance(parent, (ast.FunctionDef,
                                         ast.AsyncFunctionDef,
                                         ast.Lambda)) and \
                        parent is not node:
                    state = "conditional"  # a nested closure may never run
                cursor = parent
            if state == "guaranteed":
                return "guaranteed"
            best = "conditional"
        return best


def summarise_module(tree: ast.AST, rel: str,
                     config: LintConfig) -> ModuleSummary:
    """Extract the cacheable per-file summary from a parsed module."""
    return _Extractor(rel, tree, config).run()


# ---------------------------------------------------------------------
# ProjectContext: the global graphs
# ---------------------------------------------------------------------
@dataclass
class LockCycle:
    """One lock-order inversion: the lock ids around the cycle plus the
    acquisition sites (rel, line, qualname, outer, inner) that close it."""

    locks: tuple[str, ...]
    sites: tuple[tuple[str, int, str, str, str], ...]


class ProjectContext:
    """Symbol table + call graph + flow fixpoints over every module.

    Built once per lint run from the per-file :class:`ModuleSummary`
    objects (freshly extracted or replayed from the cache); the
    project-scope rules (RL008-RL011) read it instead of a
    :class:`~repro.lint.core.ModuleContext`.
    """

    def __init__(self, modules: dict[str, ModuleSummary],
                 sources: dict[str, str], config: LintConfig):
        self.config = config
        self.modules = modules                 # rel -> summary
        self.sources = sources                 # rel -> source text
        self.by_module: dict[str, ModuleSummary] = {
            summary.module: summary for summary in modules.values()}
        #: FQN ("module:qualname") -> (ModuleSummary, FunctionSummary)
        self.functions: dict[str, tuple[ModuleSummary, FunctionSummary]] \
            = {}
        for summary in modules.values():
            for qualname, fn in summary.functions.items():
                self.functions[f"{summary.module}:{qualname}"] = \
                    (summary, fn)
        self._edges: dict[str, list[tuple[str, CallSummary]]] = {}
        self._resolve_all_calls()
        self._may_block: dict[str, tuple[str, int] | None] | None = None
        self._acquired: dict[str, set[str]] | None = None

    # -- symbol resolution --------------------------------------------
    def _resolve_dotted(self, dotted: str,
                        seen: frozenset[str] = frozenset()
                        ) -> str | None:
        """Resolve a dotted path to a project function/class FQN.

        Walks re-export chains: if ``repro.lint.__init__`` imports
        ``main`` from ``repro.lint.cli``, ``repro.lint.main`` resolves to
        ``repro.lint.cli:main``.
        """
        if dotted in seen:
            return None  # import cycle
        seen = seen | {dotted}
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            module = ".".join(parts[:cut])
            summary = self.by_module.get(module)
            if summary is None:
                continue
            remainder = parts[cut:]
            if not remainder:
                return None  # a bare module is not callable
            return self._resolve_in_module(summary, remainder, seen)
        return None

    def _resolve_in_module(self, summary: ModuleSummary,
                           remainder: list[str],
                           seen: frozenset[str]) -> str | None:
        head = remainder[0]
        qual = ".".join(remainder)
        if qual in summary.functions:
            return f"{summary.module}:{qual}"
        if head in summary.classes:
            if len(remainder) == 1:
                return self._class_init(summary.module, head)
            method = self.resolve_method(summary.module, head,
                                         remainder[1])
            if method is not None and len(remainder) == 2:
                return method
            return None
        if head in summary.imports:
            target = ".".join([summary.imports[head]] + remainder[1:])
            return self._resolve_dotted(target, seen)
        return None

    def _class_init(self, module: str, class_name: str) -> str | None:
        """Constructing a class enters its ``__init__`` (possibly
        inherited)."""
        return self.resolve_method(module, class_name, "__init__")

    def resolve_method(self, module: str, class_name: str, method: str,
                       _depth: int = 0) -> str | None:
        """``self.method`` resolution, walking project-local bases."""
        if _depth > 8:
            return None
        summary = self.by_module.get(module)
        if summary is None or class_name not in summary.classes:
            return None
        cls = summary.classes[class_name]
        qual = f"{class_name}.{method}"
        if qual in summary.functions:
            return f"{module}:{qual}"
        for base in cls.bases:
            resolved = self._resolve_class(summary, base)
            if resolved is None:
                continue
            base_module, base_name = resolved
            found = self.resolve_method(base_module, base_name, method,
                                        _depth + 1)
            if found is not None:
                return found
        return None

    def _resolve_class(self, summary: ModuleSummary,
                       dotted: str) -> tuple[str, str] | None:
        """Resolve a raw class reference to (module, class qualname)."""
        parts = dotted.split(".")
        head = parts[0]
        if dotted in summary.classes:
            return (summary.module, dotted)
        if head in summary.imports:
            target = ".".join([summary.imports[head]] + parts[1:])
            return self._resolve_class_dotted(target)
        return self._resolve_class_dotted(dotted)

    def _resolve_class_dotted(self, dotted: str,
                              seen: frozenset[str] = frozenset()
                              ) -> tuple[str, str] | None:
        if dotted in seen:
            return None
        seen = seen | {dotted}
        parts = dotted.split(".")
        # The longest module prefix is authoritative: falling through to
        # a shorter prefix would re-resolve through the package
        # __init__'s re-exports and can grow the path without bound
        # (e.g. a function named like its own module).
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            summary = self.by_module.get(module)
            if summary is None:
                continue
            remainder = parts[cut:]
            name = ".".join(remainder)
            if name in summary.classes:
                return (summary.module, name)
            if remainder[0] in summary.imports:
                target = ".".join([summary.imports[remainder[0]]]
                                  + remainder[1:])
                return self._resolve_class_dotted(target, seen)
            return None
        return None

    def resolve_call(self, summary: ModuleSummary, fn: FunctionSummary,
                     call: CallSummary) -> str | None:
        """Resolve one call site to a project function FQN (or None)."""
        chain = call.chain
        head = chain[0]
        if head in ("self", "cls") and fn.class_name:
            if len(chain) == 2:
                return self.resolve_method(summary.module, fn.class_name,
                                           chain[1])
            if len(chain) == 3:
                # self.attr.method() through the attribute's constructor
                # type (`self.attr = SomeClass(...)` anywhere in the class).
                cls = summary.classes.get(fn.class_name)
                ctor = cls.attr_types.get(chain[1]) if cls else None
                if ctor:
                    resolved = self._resolve_class(summary, ctor)
                    if resolved is not None:
                        return self.resolve_method(resolved[0],
                                                   resolved[1], chain[2])
            return None
        if len(chain) >= 2 and head in fn.var_types:
            # var = SomeClass(...); var.method()
            resolved = self._resolve_class(summary, fn.var_types[head])
            if resolved is not None and len(chain) == 2:
                return self.resolve_method(resolved[0], resolved[1],
                                           chain[1])
            return None
        if len(chain) == 1:
            # Bare name: sibling function, class constructor, or import.
            if head in summary.functions:
                return f"{summary.module}:{head}"
            if head in summary.classes:
                return self._class_init(summary.module, head)
            if head in summary.imports:
                return self._resolve_dotted(summary.imports[head])
            return None
        if head in summary.imports:
            dotted = ".".join([summary.imports[head]] + chain[1:])
            return self._resolve_dotted(dotted)
        return None

    # -- call graph ----------------------------------------------------
    def _resolve_all_calls(self) -> None:
        for fqn, (summary, fn) in self.functions.items():
            edges: list[tuple[str, CallSummary]] = []
            for call in fn.calls:
                callee = self.resolve_call(summary, fn, call)
                if callee is not None and callee != fqn:
                    edges.append((callee, call))
            self._edges[fqn] = edges

    def callees(self, fqn: str) -> list[tuple[str, CallSummary]]:
        """Resolved (callee FQN, call site) pairs for one function."""
        return self._edges.get(fqn, [])

    # -- transitive blocking (RL009) ----------------------------------
    def may_block(self, fqn: str) -> tuple[str, int] | None:
        """Witness (description, line) if the function may block without
        a bound — directly or through any resolved callee."""
        if self._may_block is None:
            self._compute_may_block()
        return self._may_block.get(fqn)

    def _direct_block_witness(self, summary: ModuleSummary,
                              fn: FunctionSummary
                              ) -> tuple[str, int] | None:
        for call in fn.calls:
            attr = call.attr
            if attr not in _TRANSITIVE_BLOCKING or call.bounded:
                continue
            receiver = call.receiver
            if attr == "get" and call.nargs:
                continue  # dict.get(key[, default]) — not a queue
            if attr == "join" and not _THREADY_RE.search(receiver):
                continue  # str.join / path join
            if attr == "encode" and call.const_str_args:
                continue  # text.encode("utf-8")
            if attr in ("wait", "wait_for") and any(
                    receiver.rsplit(".", 1)[-1] == held.rsplit(".", 1)[-1]
                    for held in call.locks_held):
                continue  # condition-variable wait releases its own lock
            if self.resolve_call(summary, fn, call) is not None:
                continue  # project-internal: judged by its own summary
            return (f"{'.'.join(call.chain)}() "
                    f"[{summary.rel}:{call.line}]", call.line)
        return None

    def _compute_may_block(self) -> None:
        self._may_block = {}
        for fqn, (summary, fn) in self.functions.items():
            witness = self._direct_block_witness(summary, fn)
            if witness is not None:
                self._may_block[fqn] = witness
        # Propagate backwards over unbounded call edges to a fixpoint.
        changed = True
        while changed:
            changed = False
            for fqn, (summary, fn) in self.functions.items():
                if fqn in self._may_block:
                    continue
                for callee, call in self._edges.get(fqn, []):
                    if call.bounded or call.guarded:
                        continue
                    inner = self._may_block.get(callee)
                    if inner is None:
                        continue
                    short = callee.split(":")[-1]
                    self._may_block[fqn] = (f"{short} -> {inner[0]}",
                                            call.line)
                    changed = True
                    break

    def block_chain(self, fqn: str) -> str | None:
        witness = self.may_block(fqn)
        return witness[0] if witness else None

    # -- transitive lock acquisition + lock graph (RL008) -------------
    def acquires_transitive(self, fqn: str) -> set[str]:
        if self._acquired is None:
            self._compute_acquired()
        return self._acquired.get(fqn, set())

    def _compute_acquired(self) -> None:
        self._acquired = {fqn: set(fn.locks)
                          for fqn, (_, fn) in self.functions.items()}
        changed = True
        while changed:
            changed = False
            for fqn in self.functions:
                mine = self._acquired[fqn]
                for callee, _ in self._edges.get(fqn, []):
                    extra = self._acquired.get(callee, set()) - mine
                    if extra:
                        mine |= extra
                        changed = True

    def lock_graph(self) -> dict[tuple[str, str],
                                 list[tuple[str, int, str]]]:
        """Directed edges outer->inner with their acquisition sites."""
        edges: dict[tuple[str, str], list[tuple[str, int, str]]] = {}

        def add(outer: str, inner: str, rel: str, line: int,
                qualname: str) -> None:
            if outer == inner:
                return  # re-entrant self-acquire: RLock territory, and
            edges.setdefault((outer, inner), []).append(
                (rel, line, qualname))

        for fqn, (summary, fn) in self.functions.items():
            for edge in fn.lock_edges:
                add(edge.outer, edge.inner, summary.rel, edge.line,
                    fn.qualname)
            for callee, call in self._edges.get(fqn, []):
                if not call.locks_held:
                    continue
                for inner in self.acquires_transitive(callee):
                    for outer in call.locks_held:
                        add(outer, inner, summary.rel, call.line,
                            fn.qualname)
        return edges

    def lock_cycles(self) -> list[LockCycle]:
        """Every elementary inversion (2-lock cycles and longer ones),
        reported once with a deterministic representative rotation."""
        edges = self.lock_graph()
        adjacency: dict[str, set[str]] = {}
        for (outer, inner) in edges:
            adjacency.setdefault(outer, set()).add(inner)
        cycles: dict[tuple[str, ...], LockCycle] = {}

        def canonical(path: tuple[str, ...]) -> tuple[str, ...]:
            pivot = min(range(len(path)), key=lambda i: path[i])
            return path[pivot:] + path[:pivot]

        def dfs(start: str, node: str, path: tuple[str, ...]) -> None:
            for succ in sorted(adjacency.get(node, ())):
                if succ == start:
                    cycle = canonical(path)
                    if cycle in cycles:
                        continue
                    sites = []
                    ring = list(cycle) + [cycle[0]]
                    for outer, inner in zip(ring, ring[1:]):
                        rel, line, qualname = sorted(
                            edges[(outer, inner)])[0]
                        sites.append((rel, line, qualname, outer, inner))
                    cycles[cycle] = LockCycle(locks=cycle,
                                              sites=tuple(sites))
                elif succ not in path and succ > start and \
                        len(path) < 6:
                    dfs(start, succ, path + (succ,))

        for start in sorted(adjacency):
            dfs(start, start, (start,))
        return [cycles[key] for key in sorted(cycles)]

    # -- introspection (CLI --graph) ----------------------------------
    def graph_dump(self) -> dict:
        """JSON-able call + lock graphs for ``repro lint --graph``."""
        calls = {}
        for fqn in sorted(self._edges):
            edges = self._edges[fqn]
            if edges:
                calls[fqn] = sorted({callee for callee, _ in edges})
        lock_edges = []
        for (outer, inner), sites in sorted(self.lock_graph().items()):
            rel, line, qualname = sorted(sites)[0]
            lock_edges.append({"outer": outer, "inner": inner,
                               "site": f"{rel}:{line}",
                               "qualname": qualname,
                               "occurrences": len(sites)})
        return {
            "modules": sorted(self.by_module),
            "functions": len(self.functions),
            "call_edges": calls,
            "lock_edges": lock_edges,
            "lock_cycles": [list(c.locks) for c in self.lock_cycles()],
        }

    # -- finding construction -----------------------------------------
    def line_text(self, rel: str, line: int) -> str:
        source = self.sources.get(rel)
        if source is None:
            return ""
        lines = source.splitlines()
        if 1 <= line <= len(lines):
            return lines[line - 1]
        return ""

    def finding(self, code: str, rel: str, line: int, col: int,
                qualname: str, message: str) -> Finding:
        meta = RULES[code]
        return Finding(rule=code, severity=meta.severity, path=rel,
                       line=line, col=col, message=message,
                       line_text=self.line_text(rel, line),
                       qualname=qualname)


def build_project(module_contexts: Iterable[ModuleContext],
                  config: LintConfig,
                  cached: dict[str, ModuleSummary] | None = None,
                  sources: dict[str, str] | None = None
                  ) -> ProjectContext:
    """Build the project context from parsed modules + cached summaries.

    ``cached`` maps rel -> already-extracted summary (from the cache);
    files present there are not re-summarised.  ``sources`` supplies
    text for cached files that were never parsed this run.
    """
    modules: dict[str, ModuleSummary] = dict(cached or {})
    all_sources: dict[str, str] = dict(sources or {})
    for context in module_contexts:
        modules[context.rel] = summarise_module(context.tree, context.rel,
                                                config)
        all_sources[context.rel] = context.source
    return ProjectContext(modules=modules, sources=all_sources,
                          config=config)


# ---------------------------------------------------------------------
# Summary cache (tools/.lint_cache.json)
# ---------------------------------------------------------------------
CACHE_VERSION = 1


def source_sha(source: str) -> str:
    """Cache key for one file's content (sha1 of the source text)."""
    return hashlib.sha1(source.encode("utf-8")).hexdigest()


def cache_key(config: LintConfig, select) -> str:
    """Invalidate wholesale when the rule set / config / selection moves."""
    parts = [str(CACHE_VERSION), str(SUMMARY_VERSION),
             ",".join(sorted(RULES)), repr(config),
             ",".join(sorted(select)) if select else "<all>"]
    return hashlib.sha1("|".join(parts).encode("utf-8")).hexdigest()[:16]


class SummaryCache:
    """File-SHA-keyed cache of per-file summaries and module findings.

    A hit skips the parse *and* the module-rule pass for that file; the
    project fixpoints always rerun (they are cheap graph walks).  The
    cache is advisory: any read problem degrades to a cold start.
    """

    def __init__(self, path: str | Path, key: str):
        self.path = Path(path)
        self.key = key
        self.files: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if raw.get("version") != CACHE_VERSION or raw.get("key") != \
                self.key:
            return
        files = raw.get("files")
        if isinstance(files, dict):
            self.files = files

    def lookup(self, rel: str, sha: str) -> dict | None:
        entry = self.files.get(rel)
        if entry is None or entry.get("sha") != sha:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(self, rel: str, sha: str, summary: ModuleSummary,
              findings: list[Finding],
              suppressed_lines: list[list]) -> None:
        self.files[rel] = {
            "sha": sha,
            "summary": summary.to_dict(),
            "findings": [f.to_dict() for f in findings],
            "suppressions": suppressed_lines,
        }

    def prune(self, live: set[str]) -> None:
        self.files = {rel: entry for rel, entry in self.files.items()
                      if rel in live}

    def save(self) -> None:
        payload = {"version": CACHE_VERSION, "key": self.key,
                   "files": self.files}
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                "w", dir=str(self.path.parent), suffix=".tmp",
                delete=False, encoding="utf-8")
            with handle:
                json.dump(payload, handle)
            os.replace(handle.name, self.path)
        except OSError:
            return  # best-effort: a cache that cannot be written is cold


__all__ = [
    "CACHE_VERSION",
    "CallSummary",
    "ClassSummary",
    "FunctionSummary",
    "LockCycle",
    "LockEdge",
    "ModuleSummary",
    "ProjectContext",
    "ResourceSummary",
    "SUMMARY_VERSION",
    "SummaryCache",
    "build_project",
    "cache_key",
    "rel_to_module",
    "source_sha",
    "summarise_module",
]
