"""Framework core: findings, rule registry, suppressions, file driver.

Everything here is dependency-free (stdlib ``ast`` + ``tokenize``), so the
linter runs in any environment that can parse the sources — including CI
tiers that have not installed the package's numeric dependencies.

Design points
-------------

*Fingerprints, not line numbers.*  A finding's identity is the SHA-1 of
``rule | path | enclosing qualname | normalised source line``.  Unrelated
edits that shift line numbers leave fingerprints (and therefore the
committed baseline) untouched; editing the offending line itself makes the
finding "new" again, which is exactly when a human should re-look.

*Suppressions need a reason.*  ``# repro-lint: allow[RL001] holding the
lock here is bounded by X`` trailing the violating line (or standing
alone on the line directly above it) suppresses that rule on that line
only.  A suppression without a reason is itself a finding (``RL000``) —
silencing a checker is an auditable decision, not a shrug.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

#: Severities a rule (or finding) can carry.  ``error`` fails the run;
#: ``warning`` is reported but never changes the exit code.
SEVERITIES = ("error", "warning")

#: Framework-level diagnostics (parse failures, malformed suppressions)
#: are reported under this pseudo-rule code.
FRAMEWORK_CODE = "RL000"

_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*allow\[(?P<codes>[A-Z0-9,\s]+)\]\s*(?P<reason>.*)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str          # repo-relative posix path (stable across machines)
    line: int
    col: int
    message: str
    line_text: str = ""
    qualname: str = "<module>"

    @property
    def fingerprint(self) -> str:
        """Line-drift-tolerant identity used by the baseline."""
        normalised = " ".join(self.line_text.split())
        key = f"{self.rule}|{self.path}|{self.qualname}|{normalised}"
        return hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict:
        """JSON-ready representation (includes the fingerprint)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "line_text": self.line_text,
            "qualname": self.qualname,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        """``path:line:col: RL00x [severity] message`` for the text report."""
        return (f"{self.path}:{self.line}:{self.col}: {self.rule} "
                f"[{self.severity}] {self.message}")

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)


#: Scopes a rule can run at: ``module`` rules see one file
#: (:class:`ModuleContext`); ``project`` rules see the whole program
#: (:class:`repro.lint.project.ProjectContext`).
SCOPES = ("module", "project")


@dataclass(frozen=True)
class Rule:
    """A registered checker: metadata plus its check callable."""

    code: str
    title: str
    severity: str
    check: Callable[..., list[Finding]]
    rationale: str = ""
    scope: str = "module"


#: The pluggable registry; populated by the :func:`rule` decorator at
#: import time of :mod:`repro.lint.rules` /
#: :mod:`repro.lint.flowrules` (or of third-party extensions).
RULES: dict[str, Rule] = {}


def rule(code: str, title: str, severity: str = "error",
         scope: str = "module"):
    """Class-decorator-free registration: ``@rule("RL001", "...")``.

    The decorated callable receives a :class:`ModuleContext` (``scope=
    "module"``) or a :class:`~repro.lint.project.ProjectContext`
    (``scope="project"``) and returns a list of :class:`Finding`; its
    docstring becomes the rule's rationale (shown by ``--list-rules``).
    """
    if severity not in SEVERITIES:
        raise ValueError(f"severity must be one of {SEVERITIES}")
    if scope not in SCOPES:
        raise ValueError(f"scope must be one of {SCOPES}")

    def decorate(check: Callable[..., list[Finding]]):
        if code in RULES:
            raise ValueError(f"duplicate rule code {code}")
        RULES[code] = Rule(code=code, title=title, severity=severity,
                           check=check,
                           rationale=(check.__doc__ or "").strip(),
                           scope=scope)
        return check

    return decorate


@dataclass(frozen=True)
class LintConfig:
    """Repo-aware scoping knobs shared by every rule.

    Paths are repo-relative posix prefixes.  Tests inject synthetic
    ``rel`` paths (e.g. ``src/repro/serving/fixture.py``) to place a
    fixture inside or outside a rule's scope without touching the tree.
    """

    #: RL002 (unbounded waits) applies under these prefixes.
    bounded_wait_scope: tuple[str, ...] = (
        "src/repro/serving/", "src/repro/training/", "src/repro/service/",
        "src/repro/netserve/", "src/repro/loadgen/", "src/repro/index/")
    #: RL004 (atomic writes) applies under these prefixes.
    atomic_scope: tuple[str, ...] = (
        "src/repro/models/", "src/repro/serving/", "src/repro/training/",
        "src/repro/tokenization/")
    #: Functions implementing the atomic-write discipline itself are
    #: exempt from RL004 (they are its temp-file machinery).
    atomic_impl_prefixes: tuple[str, ...] = ("atomic_write",)
    #: The one module allowed to define metric-name literals.
    metric_names_module: str = "src/repro/serving/metric_names.py"
    #: The one module allowed to define ``bench.*`` benchmark-id literals.
    bench_registry_module: str = "src/repro/bench/registry.py"
    #: The one module allowed to define prompt-token literals.
    prompt_templates_module: str = "src/repro/prompts/templates.py"
    #: Prompt tokens whose literal occurrence elsewhere is drift (RL007).
    prompt_tokens: tuple[str, ...] = (
        "[ALM]", "[KPI]", "[ATTR]", "[ENT]", "[REL]", "[DOC]", "[LOC]",
        "[NUM]", "[SIG]", "[CFG]")
    #: Modules where a bare ``"|"`` literal counts as prompt-separator
    #: drift (prompt-construction layers only; ASCII art elsewhere is fine).
    separator_scope: tuple[str, ...] = (
        "src/repro/corpus/", "src/repro/models/", "src/repro/tasks/",
        "src/repro/prompts/")
    #: ``np.random.<fn>`` attributes that are *not* global-state RNG use.
    rng_allowed: tuple[str, ...] = (
        "default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64",
        "Philox", "MT19937")
    #: ``random.<fn>`` (stdlib) attributes that are instance constructors,
    #: not module-global state.
    stdlib_rng_allowed: tuple[str, ...] = ("Random", "SystemRandom")
    #: Calls that hand back a resource needing an explicit lifecycle
    #: (RL011).  Matched against alias-resolved dotted call targets by
    #: suffix, so ``sock = socket.socket(...)``, ``shm =
    #: shared_memory.SharedMemory(...)``, and ``block = SharedArray(...)``
    #: all register however they were imported.
    resource_openers: tuple[str, ...] = (
        "open", "io.open", "socket.socket", "socket.create_connection",
        "socket.accept", "mmap.mmap", "numpy.memmap", "numpy.load",
        "shared_memory.SharedMemory", "multiprocessing.shared_memory."
        "SharedMemory", "SharedArray", "tempfile.NamedTemporaryFile",
        "gzip.open", "tarfile.open", "zipfile.ZipFile")
    #: RL009/RL010/RL011 (the interprocedural flow rules) apply under
    #: these prefixes — the production stack, where a liveness bug is an
    #: outage.  RL008 (lock-order) is global: an inversion is a bug
    #: wherever the locks live.
    flow_scope: tuple[str, ...] = (
        "src/repro/serving/", "src/repro/training/", "src/repro/service/",
        "src/repro/netserve/", "src/repro/loadgen/", "src/repro/index/",
        "src/repro/tasks/")
    #: Per-prefix rule exemptions: (path prefix, exempted rule codes).
    #: Tests and benchmarks run a test-appropriate subset — seeded
    #: fixtures make global-RNG use fine (RL005), fixture threads are
    #: joined by the harness (RL003), scratch handles live inside
    #: tmp_path fixtures (RL011), literal metric names / prompt tokens
    #: are *deliberate* in assertions — pinning the string is how a test
    #: catches drift in the source of truth (RL007) — and failure-path
    #: probes swallow on purpose (RL006, tests only).  Tools keep
    #: everything except RL005 (CLI entry points seed their own
    #: generators).
    path_rule_exemptions: tuple[tuple[str, tuple[str, ...]], ...] = (
        ("tests/", ("RL005", "RL003", "RL011", "RL009", "RL010",
                    "RL007", "RL006")),
        ("benchmarks/", ("RL005", "RL003", "RL011", "RL009", "RL010",
                         "RL007")),
        ("tools/", ("RL005",)),
    )

    def exempt(self, rel: str, code: str) -> bool:
        """Whether ``code`` is switched off for files under ``rel``."""
        return any(rel.startswith(prefix) and code in codes
                   for prefix, codes in self.path_rule_exemptions)


@dataclass
class ModuleContext:
    """Everything a rule needs to check one parsed module."""

    rel: str                      # repo-relative posix path
    source: str
    tree: ast.AST
    config: LintConfig
    lines: list[str] = field(default_factory=list)
    _parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    _qualnames: dict[ast.AST, str] = field(default_factory=dict)

    def __post_init__(self):
        self.lines = self.source.splitlines()
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # -- structure helpers --------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def qualname(self, node: ast.AST) -> str:
        """Dotted enclosing ``Class.method`` chain (cached per node)."""
        if node in self._qualnames:
            return self._qualnames[node]
        parts: list[str] = []
        cursor: ast.AST | None = node
        while cursor is not None:
            if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                parts.append(cursor.name)
            cursor = self._parents.get(cursor)
        qualname = ".".join(reversed(parts)) or "<module>"
        self._qualnames[node] = qualname
        return qualname

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def in_scope(self, prefixes: Iterable[str]) -> bool:
        return any(self.rel.startswith(prefix) for prefix in prefixes)

    def is_docstring(self, node: ast.Constant) -> bool:
        """Whether this string constant is a bare expression statement
        (docstrings and block comments-as-strings — never executed as
        data, so exempt from literal-drift rules)."""
        parent = self._parents.get(node)
        return isinstance(parent, ast.Expr)

    # -- finding construction -----------------------------------------
    def finding(self, code: str, node: ast.AST, message: str) -> Finding:
        meta = RULES[code]
        lineno = getattr(node, "lineno", 1)
        return Finding(rule=code, severity=meta.severity, path=self.rel,
                       line=lineno, col=getattr(node, "col_offset", 0),
                       message=message, line_text=self.line_text(lineno),
                       qualname=self.qualname(node))


# ---------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class _Suppression:
    line: int
    codes: frozenset[str]
    reason: str


def _parse_suppressions(source: str) -> tuple[list[_Suppression],
                                              list[tuple[int, str]]]:
    """Extract ``# repro-lint: allow[...]`` comments via ``tokenize``.

    A trailing comment suppresses its own line; a standalone comment line
    suppresses the line below it (and only that line — suppressions never
    bleed onto neighbouring findings).

    Returns (suppressions, problems) where problems are (line, message)
    pairs for malformed suppressions (missing reason / empty code list).
    """
    suppressions: list[_Suppression] = []
    problems: list[tuple[int, str]] = []
    lines = source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [t for t in tokens if t.type == tokenize.COMMENT]
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions, problems
    for token in comments:
        match = _SUPPRESSION_RE.search(token.string)
        if match is None:
            if "repro-lint" in token.string:
                problems.append(
                    (token.start[0],
                     "malformed repro-lint comment (expected "
                     "'# repro-lint: allow[RL00x] reason')"))
            continue
        codes = frozenset(c.strip() for c in match.group("codes").split(",")
                          if c.strip())
        reason = match.group("reason").strip()
        if not codes:
            problems.append((token.start[0],
                             "suppression lists no rule codes"))
            continue
        if not reason:
            problems.append(
                (token.start[0],
                 "suppression without a reason — say why the rule does "
                 "not apply here"))
            continue
        row, col = token.start
        prefix = lines[row - 1][:col] if row <= len(lines) else ""
        target = row + 1 if not prefix.strip() else row
        suppressions.append(_Suppression(line=target, codes=codes,
                                         reason=reason))
    return suppressions, problems


def _apply_suppressions(findings: list[Finding],
                        suppressions: list[_Suppression]) -> list[Finding]:
    """Drop findings whose line a suppression targets."""
    if not suppressions:
        return findings
    by_line: dict[int, set[str]] = {}
    for suppression in suppressions:
        by_line.setdefault(suppression.line, set()).update(suppression.codes)
    return [finding for finding in findings
            if finding.rule not in by_line.get(finding.line, set())]


# ---------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------
def _validate_select(select: Iterable[str] | None) -> set[str] | None:
    """Resolve ``select`` to a code set; unknown codes are a usage error."""
    if select is None:
        return None
    selected = set(select)
    unknown = selected - set(RULES) - {FRAMEWORK_CODE}
    if unknown:
        raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
    return selected


def _module_findings(context: ModuleContext,
                     selected: set[str] | None) -> list[Finding]:
    """Run the selected module-scope rules over one parsed module."""
    findings: list[Finding] = []
    for meta in RULES.values():
        if meta.scope != "module":
            continue
        if selected is not None and meta.code not in selected:
            continue
        findings.extend(meta.check(context))
    return findings


def _framework_findings(problems: list[tuple[int, str]], rel: str,
                        line_text, selected: set[str] | None
                        ) -> list[Finding]:
    if selected is not None and FRAMEWORK_CODE not in selected:
        return []
    return [Finding(rule=FRAMEWORK_CODE, severity="error", path=rel,
                    line=line, col=0, message=message,
                    line_text=line_text(line), qualname="<module>")
            for line, message in problems]


def _apply_exemptions(findings: list[Finding],
                      config: LintConfig) -> list[Finding]:
    return [f for f in findings if not config.exempt(f.path, f.rule)]


def analyze_sources(sources: dict[str, str],
                    config: LintConfig | None = None,
                    select: Iterable[str] | None = None,
                    cache=None) -> list[Finding]:
    """Lint a set of in-memory modules as one program.

    ``sources`` maps repo-relative posix paths to source text.  The
    module-scope rules run per file; the project-scope rules (RL008+) run
    once over the :class:`~repro.lint.project.ProjectContext` built from
    every parseable file.  ``cache`` is an optional
    :class:`~repro.lint.project.SummaryCache`: files whose SHA it knows
    replay their summary and module findings without re-parsing.
    """
    from repro.lint.project import (ModuleSummary, build_project,
                                    source_sha, summarise_module)

    config = config or LintConfig()
    selected = _validate_select(select)
    findings: list[Finding] = []
    contexts: list[ModuleContext] = []
    cached_summaries: dict[str, ModuleSummary] = {}
    suppressions_by_rel: dict[str, list[_Suppression]] = {}

    for rel in sorted(sources):
        source = sources[rel]
        if cache is not None:
            sha = source_sha(source)
            entry = cache.lookup(rel, sha)
            if entry is not None:
                cached_summaries[rel] = ModuleSummary.from_dict(
                    entry["summary"])
                findings.extend(Finding(**{
                    key: value for key, value in raw.items()
                    if key != "fingerprint"})
                    for raw in entry["findings"])
                suppressions_by_rel[rel] = [
                    _Suppression(line=line, codes=frozenset(codes),
                                 reason=reason)
                    for line, codes, reason in entry["suppressions"]]
                continue
        try:
            tree = ast.parse(source)
        except SyntaxError as error:
            findings.append(Finding(
                rule=FRAMEWORK_CODE, severity="error", path=rel,
                line=error.lineno or 1, col=error.offset or 0,
                message=f"syntax error: {error.msg}"))
            continue
        context = ModuleContext(rel=rel, source=source, tree=tree,
                                config=config)
        contexts.append(context)
        module_findings = _module_findings(context, selected)
        suppressions, problems = _parse_suppressions(source)
        suppressions_by_rel[rel] = suppressions
        module_findings = _apply_suppressions(module_findings,
                                              suppressions)
        module_findings.extend(_framework_findings(
            problems, rel, context.line_text, selected))
        findings.extend(module_findings)
        if cache is not None:
            cache.store(rel, source_sha(source),
                        summarise_module(tree, rel, config),
                        module_findings,
                        [[s.line, sorted(s.codes), s.reason]
                         for s in suppressions])

    project_rules = [meta for meta in RULES.values()
                     if meta.scope == "project"
                     and (selected is None or meta.code in selected)]
    if project_rules:
        project = build_project(contexts, config,
                                cached=cached_summaries, sources=sources)
        project_findings: list[Finding] = []
        for meta in project_rules:
            project_findings.extend(meta.check(project))
        by_rel: dict[str, list[Finding]] = {}
        for finding in project_findings:
            by_rel.setdefault(finding.path, []).append(finding)
        for rel, batch in by_rel.items():
            findings.extend(_apply_suppressions(
                batch, suppressions_by_rel.get(rel, [])))

    if cache is not None:
        cache.prune(set(sources))
    return sorted(_apply_exemptions(findings, config), key=Finding.sort_key)


def analyze_source(source: str, rel: str,
                   config: LintConfig | None = None,
                   select: Iterable[str] | None = None) -> list[Finding]:
    """Run the (selected) rules over one module's source text.

    ``rel`` is the repo-relative posix path used for scoping and
    fingerprints; it does not need to exist on disk, which is what makes
    fixture-based rule tests cheap.  Project-scope rules run too, over a
    one-module program — intra-module call chains still resolve.
    """
    return analyze_sources({rel: source}, config=config, select=select)


def iter_python_files(paths: Iterable[str | Path],
                      root: Path) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (files or directories), sorted."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def analyze_paths(paths: Iterable[str | Path], root: str | Path,
                  config: LintConfig | None = None,
                  select: Iterable[str] | None = None,
                  cache=None) -> list[Finding]:
    """Lint every Python file under ``paths``; findings sorted by location.

    ``root`` is the repository root: file paths are recorded relative to
    it so fingerprints are stable across checkouts.  ``cache`` is an
    optional :class:`~repro.lint.project.SummaryCache` (the caller saves
    it after the run).
    """
    root = Path(root).resolve()
    _validate_select(select)  # fail fast even when no file matches
    findings: list[Finding] = []
    sources: dict[str, str] = {}
    for path in iter_python_files(paths, root):
        try:
            rel = path.resolve().relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        try:
            sources[rel] = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            findings.append(Finding(
                rule=FRAMEWORK_CODE, severity="error", path=rel, line=1,
                col=0, message=f"unreadable file: {error}"))
    findings.extend(analyze_sources(sources, config=config, select=select,
                                    cache=cache))
    return sorted(findings, key=Finding.sort_key)


__all__ = [
    "FRAMEWORK_CODE",
    "Finding",
    "LintConfig",
    "ModuleContext",
    "RULES",
    "Rule",
    "SCOPES",
    "SEVERITIES",
    "analyze_paths",
    "analyze_source",
    "analyze_sources",
    "iter_python_files",
    "rule",
]
