"""The built-in repo-aware rules (RL001-RL007).

Each rule is distilled from a bug class PRs 2-4 fixed by hand; the
docstrings carry the rationale shown by ``--list-rules``.  Rules are pure
functions over a :class:`~repro.lint.core.ModuleContext` registered via
the :func:`~repro.lint.core.rule` decorator — adding a rule is writing one
function, no framework changes.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.lint.core import Finding, ModuleContext, rule

# ---------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------
_LOCKY_RE = re.compile(r"(lock|cond|mutex|sem)", re.IGNORECASE)
_THREADY_RE = re.compile(r"(thread|worker|proc|pool)", re.IGNORECASE)

#: Method names whose call can block for unbounded time (RL001 inside a
#: lock; the wait-shaped subset again in RL002).
_BLOCKING_ATTRS = frozenset({
    "encode", "encode_names", "encode_texts", "embed", "result", "wait",
    "wait_for", "acquire", "join", "get", "flush", "recv", "sleep",
})

_WAIT_ATTRS = frozenset({"wait", "wait_for", "get", "result", "acquire",
                         "join"})


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover  # repro-lint: allow[RL006] placeholder keeps the rule running when unparse fails; nothing to log
        return "<expr>"


def _walk_shallow(nodes: Iterable[ast.AST]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested defs/lambdas.

    A lambda *defined* inside a ``with lock:`` block does not run under
    the lock, so its body must not be attributed to the lock's critical
    section.
    """
    stack = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _import_aliases(tree: ast.AST) -> dict[str, str]:
    """Map local alias -> imported module dotted path (top-level only)."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = name.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for name in node.names:
                aliases[name.asname or name.name] = \
                    f"{node.module}.{name.name}"
    return aliases


def _attr_chain(node: ast.AST) -> list[str] | None:
    """``np.random.seed`` -> ["np", "random", "seed"]; None if not a
    plain name/attribute chain."""
    parts: list[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        parts.append(cursor.id)
        return list(reversed(parts))
    return None


def _enclosing_function_names(ctx: ModuleContext, node: ast.AST) -> list[str]:
    names = []
    cursor: ast.AST | None = node
    while cursor is not None:
        if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.append(cursor.name)
        cursor = ctx.parent(cursor)
    return names


# ---------------------------------------------------------------------
# RL001 — blocking call while holding a lock
# ---------------------------------------------------------------------
@rule("RL001", "blocking call inside a `with <lock>:` block")
def check_blocking_in_lock(ctx: ModuleContext) -> list[Finding]:
    """Holding a lock across a blocking call (`encode`, `.result()`,
    `.wait()`, `.get()`, `.join()`, `flush`, `sleep`) serializes every
    other path that needs the lock behind the slowest caller — and turns
    a hung provider into a stack-wide deadlock (the PR-4 bug class).
    Compute the blocking result outside the lock and re-acquire to
    publish it (last-write-wins), as `CachedProvider.encode_names` does.
    Waiting on the *same* condition variable the block holds is exempt:
    `Condition.wait` releases the lock while sleeping."""
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        contexts = [_unparse(item.context_expr) for item in node.items]
        if not any(_LOCKY_RE.search(text) for text in contexts):
            continue
        held = {text.split(".acquire")[0] for text in contexts}
        for inner in _walk_shallow(node.body):
            if not isinstance(inner, ast.Call) or \
                    not isinstance(inner.func, ast.Attribute):
                continue
            attr = inner.func.attr
            if attr not in _BLOCKING_ATTRS:
                continue
            receiver = _unparse(inner.func.value)
            if attr in ("wait", "wait_for") and receiver in held:
                continue  # condition-variable wait releases the lock
            if attr == "get" and inner.args:
                continue  # dict.get(key[, default]) — not a queue
            if attr == "join" and not _THREADY_RE.search(receiver):
                continue  # str.join / path join — not a thread join
            if attr == "encode" and (
                    isinstance(inner.func.value, (ast.Call, ast.Constant))
                    or all(isinstance(a, ast.Constant)
                           and isinstance(a.value, str)
                           for a in inner.args)):
                continue  # str.encode("utf-8") — not a model encode
            findings.append(ctx.finding(
                "RL001", inner,
                f"blocking call `{receiver}.{attr}(...)` while holding "
                f"`{' / '.join(sorted(held))}` — move it outside the "
                f"lock (compute, then re-acquire to publish)"))
    return findings


# ---------------------------------------------------------------------
# RL002 — unbounded waits in the serving/training stack
# ---------------------------------------------------------------------
@rule("RL002", "unbounded blocking primitive in serving/training code")
def check_unbounded_wait(ctx: ModuleContext) -> list[Finding]:
    """In `repro.serving` / `repro.training` / `repro.service`, every
    `.wait()` / `.get()` / `.result()` / `.acquire()` / `.join()` must
    carry a timeout: an unbounded wait on work that never completes
    wedges the worker (and, pre-PR4, the whole process at exit).  Pass a
    bound — even a generous one — so the caller regains control and the
    deadline/fallback policy can engage."""
    if not ctx.in_scope(ctx.config.bounded_wait_scope):
        return []
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or \
                not isinstance(node.func, ast.Attribute):
            continue
        attr = node.func.attr
        if attr not in _WAIT_ATTRS:
            continue
        if node.args or node.keywords:
            continue  # some bound (or at least an explicit argument) given
        receiver = _unparse(node.func.value)
        if attr == "join" and not _THREADY_RE.search(receiver):
            continue
        findings.append(ctx.finding(
            "RL002", node,
            f"`{receiver}.{attr}()` without a timeout — bound the wait "
            f"(or suppress with the reason it cannot block)"))
    return findings


# ---------------------------------------------------------------------
# RL003 — non-daemon threads in library code
# ---------------------------------------------------------------------
@rule("RL003", "threading.Thread without daemon=True")
def check_nondaemon_thread(ctx: ModuleContext) -> list[Finding]:
    """A non-daemon thread is joined at interpreter exit; if it is stuck
    on a hung provider, the *process* becomes unkillable short of
    SIGKILL.  Library threads must be `daemon=True` and owned by an
    explicit lifecycle (`close()` / context manager) instead of relying
    on interpreter-exit joins."""
    aliases = _import_aliases(ctx.tree)
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if chain is None:
            continue
        dotted = ".".join(aliases.get(chain[0], chain[0]).split(".")
                          + chain[1:])
        if not dotted.endswith("threading.Thread") and \
                dotted != "threading.Thread":
            continue
        daemon = next((kw for kw in node.keywords if kw.arg == "daemon"),
                      None)
        if daemon is None:
            findings.append(ctx.finding(
                "RL003", node,
                "threading.Thread without daemon=True — a wedged worker "
                "must not block interpreter exit"))
        elif not (isinstance(daemon.value, ast.Constant)
                  and daemon.value.value is True):
            findings.append(ctx.finding(
                "RL003", node,
                "threading.Thread daemon flag is not literally True — "
                "library threads must be daemons"))
    return findings


# ---------------------------------------------------------------------
# RL004 — non-atomic checkpoint/store writes
# ---------------------------------------------------------------------
_BUFFERY_RE = re.compile(r"(buffer|buf|stream|bytesio|stringio)",
                         re.IGNORECASE)


@rule("RL004", "file write bypassing the atomic temp+fsync+rename "
               "discipline")
def check_non_atomic_write(ctx: ModuleContext) -> list[Finding]:
    """Checkpoint and store modules must write through
    `repro.ioutil.atomic_write_bytes` (temp file + fsync + rename) or an
    append-only log: a plain truncating write (`open(..., "w")`,
    `Path.write_text`, `np.savez(path)`) that crashes mid-way leaves a
    torn file where the previous complete artifact used to be — the
    exact corruption class `SnapshotStore` was built to prevent.
    Serialise to memory, then hand the bytes to the atomic writer."""
    if not ctx.in_scope(ctx.config.atomic_scope):
        return []
    aliases = _import_aliases(ctx.tree)
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        enclosing = _enclosing_function_names(ctx, node)
        if any(name.startswith(prefix)
               for name in enclosing
               for prefix in ctx.config.atomic_impl_prefixes):
            continue
        # Path.write_text / Path.write_bytes
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in ("write_text", "write_bytes"):
            receiver = _unparse(node.func.value)
            findings.append(ctx.finding(
                "RL004", node,
                f"`{receiver}.{node.func.attr}(...)` is a truncating "
                f"write — use atomic_write_bytes/_text "
                f"(temp+fsync+rename)"))
            continue
        # open(path, "w"...) — truncating modes only; append is the
        # sanctioned journal/log discipline (torn tails are tolerated).
        chain = _attr_chain(node.func)
        if chain is not None and chain[-1] == "open" and \
                len(chain) <= 2:
            mode = None
            if len(node.args) >= 2 and isinstance(node.args[1],
                                                  ast.Constant):
                mode = node.args[1].value
            for kw in node.keywords:
                if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                    mode = kw.value.value
            if isinstance(mode, str) and ("w" in mode or "x" in mode):
                findings.append(ctx.finding(
                    "RL004", node,
                    f"open(..., {mode!r}) truncates in place — write "
                    f"via atomic_write_bytes or an append-only log"))
            continue
        # np.savez / np.save straight to a path (a BytesIO target is the
        # atomic pattern's serialisation step and is fine).
        if chain is not None and len(chain) >= 2 and \
                chain[-1] in ("save", "savez", "savez_compressed"):
            dotted = aliases.get(chain[0], chain[0])
            if dotted not in ("numpy",):
                continue
            if node.args and not _BUFFERY_RE.search(_unparse(node.args[0])):
                findings.append(ctx.finding(
                    "RL004", node,
                    f"np.{chain[-1]} writes the target in place — "
                    f"serialise to io.BytesIO and atomic_write_bytes "
                    f"the result"))
    return findings


# ---------------------------------------------------------------------
# RL005 — global-RNG use
# ---------------------------------------------------------------------
@rule("RL005", "global RNG state (random.* / np.random.*) in library code")
def check_global_rng(ctx: ModuleContext) -> list[Finding]:
    """Bit-exact resume (`repro.training.runtime`) snapshots every RNG
    stream it owns; a module-level `random.*` / `np.random.*` call draws
    from hidden global state that no snapshot captures, so a resumed run
    silently diverges from the uninterrupted one.  Thread an explicit
    seeded `np.random.default_rng(...)` Generator through the caller
    instead."""
    aliases = _import_aliases(ctx.tree)
    findings: list[Finding] = []
    allowed_np = set(ctx.config.rng_allowed)
    allowed_std = set(ctx.config.stdlib_rng_allowed)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module in (
                "random", "numpy.random"):
            allowed = allowed_std if node.module == "random" else allowed_np
            for name in node.names:
                if name.name not in allowed:
                    findings.append(ctx.finding(
                        "RL005", node,
                        f"`from {node.module} import {name.name}` pulls "
                        f"global-RNG state — use a seeded "
                        f"np.random.default_rng Generator"))
            continue
        if not isinstance(node, ast.Attribute):
            continue
        chain = _attr_chain(node)
        if chain is None or len(chain) < 2:
            continue
        root = aliases.get(chain[0], chain[0])
        # np.random.<fn> / numpy.random.<fn>
        if root == "numpy" and len(chain) >= 3 and chain[1] == "random":
            if chain[2] not in allowed_np:
                findings.append(ctx.finding(
                    "RL005", node,
                    f"`np.random.{chain[2]}` uses the module-global RNG "
                    f"— breaks bit-exact resume; use a seeded Generator"))
        elif root == "numpy.random" and chain[1] not in allowed_np:
            findings.append(ctx.finding(
                "RL005", node,
                f"`{chain[0]}.{chain[1]}` uses the module-global RNG — "
                f"use a seeded Generator"))
        elif root == "random" and len(chain) == 2 and \
                chain[1] not in allowed_std:
            findings.append(ctx.finding(
                "RL005", node,
                f"`random.{chain[1]}` draws from the global stdlib RNG "
                f"— use a seeded np.random.default_rng Generator"))
    return findings


# ---------------------------------------------------------------------
# RL006 — silent broad excepts
# ---------------------------------------------------------------------
_BROAD_NAMES = ("Exception", "BaseException")


def _exception_names(node: ast.expr | None) -> list[str]:
    if node is None:
        return []
    if isinstance(node, ast.Tuple):
        names = []
        for element in node.elts:
            names.extend(_exception_names(element))
        return names
    chain = _attr_chain(node)
    return [chain[-1]] if chain else []


@rule("RL006", "bare/over-broad except that swallows silently")
def check_silent_broad_except(ctx: ModuleContext) -> list[Finding]:
    """A bare `except:` (or `except Exception:` whose body neither
    re-raises, nor calls anything — logging, metrics, a structured-event
    emit — nor even reads the caught exception) erases the failure: the
    serving stack reports a healthy response for a request that actually
    died.  Narrow the type, re-raise, or record a structured event."""
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            findings.append(ctx.finding(
                "RL006", node,
                "bare `except:` catches everything (including "
                "KeyboardInterrupt) — name the exception type"))
            continue
        if not any(name in _BROAD_NAMES
                   for name in _exception_names(node.type)):
            continue
        has_raise = any(isinstance(n, ast.Raise)
                        for n in _walk_shallow(node.body))
        has_call = any(isinstance(n, ast.Call)
                       for n in _walk_shallow(node.body))
        uses_name = node.name is not None and any(
            isinstance(n, ast.Name) and n.id == node.name
            and isinstance(n.ctx, ast.Load)
            for n in _walk_shallow(node.body))
        if has_raise or has_call or uses_name:
            continue
        findings.append(ctx.finding(
            "RL006", node,
            "broad `except` swallows the failure silently — re-raise, "
            "narrow the type, or log a structured event"))
    return findings


# ---------------------------------------------------------------------
# RL007 — metric-name / prompt-token literal drift
# ---------------------------------------------------------------------
_METRIC_SHAPE_RE = re.compile(
    r"(serving|train|netserve|bench|index)\.[a-z0-9_]+(\.[a-z0-9_]+)*\.?")

#: Strings shaped like a metric id but actually a file name (a prefix
#: word followed by an extension, e.g. ``"index.json"``) are not drift.
_FILE_NAME_RE = re.compile(r".*\.(csv|json|jsonl|log|md|npy|npz|py|txt|"
                           r"ya?ml)$")

#: The linter's own configuration necessarily spells the tokens it hunts.
_SELF_PREFIX = "src/repro/lint/"


@rule("RL007", "string drift from a single source of truth "
               "(metric names / prompt tokens)")
def check_literal_drift(ctx: ModuleContext) -> list[Finding]:
    """Serving metric names live in `repro.serving.metric_names`;
    `bench.*` benchmark ids live in `repro.bench.registry`; the paper's
    prompt special tokens (`[ALM]`, `[KPI]`, ..., `|`) live in
    `repro.prompts.templates`.  A hard-coded copy anywhere else drifts
    silently when the canonical spelling changes — dashboards chart a
    metric nobody emits any more, the regression gate checks a benchmark
    nobody runs, or the tokenizer stops recognising a prompt marker.
    Import the constant (or a helper) instead."""
    if ctx.rel.startswith(_SELF_PREFIX):
        return []
    findings: list[Finding] = []
    tokens = ctx.config.prompt_tokens
    in_templates = ctx.rel == ctx.config.prompt_templates_module
    in_metric_names = ctx.rel == ctx.config.metric_names_module
    in_bench_registry = ctx.rel == ctx.config.bench_registry_module
    separator_scoped = ctx.in_scope(ctx.config.separator_scope)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Constant) or \
                not isinstance(node.value, str):
            continue
        if ctx.is_docstring(node):
            continue
        value = node.value
        if _METRIC_SHAPE_RE.fullmatch(value) and \
                not _FILE_NAME_RE.fullmatch(value):
            if value.startswith("bench."):
                if not in_bench_registry:
                    findings.append(ctx.finding(
                        "RL007", node,
                        f"hard-coded benchmark id {value!r} — import it "
                        f"from repro.bench.registry"))
                continue
            if not in_metric_names:
                findings.append(ctx.finding(
                    "RL007", node,
                    f"hard-coded metric name {value!r} — import it from "
                    f"repro.serving.metric_names"))
                continue
        if in_templates:
            continue
        hit = next((token for token in tokens if token in value), None)
        if hit is not None:
            findings.append(ctx.finding(
                "RL007", node,
                f"hard-coded prompt token {hit!r} in {value!r} — import "
                f"it from repro.prompts.templates"))
        elif value == "|" and separator_scoped:
            findings.append(ctx.finding(
                "RL007", node,
                "hard-coded prompt field separator '|' — use "
                "repro.prompts.templates.FIELD_SEPARATOR"))
    return findings
