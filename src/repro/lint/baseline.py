"""Committed-baseline support: track legacy findings without letting new
ones in.

The baseline (``tools/lint_baseline.json``) is a list of fingerprint
entries, each with a mandatory ``tracking`` comment explaining why the
finding is grandfathered rather than fixed.  A lint run then partitions
its findings into *baselined* (reported as informational, exit 0) and
*new* (fail the run).  Entries whose fingerprint no longer matches any
finding are *stale* — the debt was paid down — and ``--update-baseline``
drops them, so the file ratchets monotonically toward empty.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.core import Finding

#: Format marker so a future schema change can migrate old files.
BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding, identified by fingerprint."""

    fingerprint: str
    rule: str
    path: str
    tracking: str  # why this is tracked instead of fixed

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "tracking": self.tracking,
        }


@dataclass
class Baseline:
    """The set of grandfathered fingerprints plus match bookkeeping."""

    entries: list[BaselineEntry] = field(default_factory=list)

    @property
    def fingerprints(self) -> set[str]:
        return {entry.fingerprint for entry in self.entries}

    def partition(self, findings: list[Finding]
                  ) -> tuple[list[Finding], list[Finding],
                             list[BaselineEntry]]:
        """Split findings into (new, baselined) and report stale entries.

        A stale entry matched no finding this run — its debt was fixed
        (or the code deleted); ``--update-baseline`` prunes it.
        """
        known = self.fingerprints
        new = [f for f in findings if f.fingerprint not in known]
        baselined = [f for f in findings if f.fingerprint in known]
        live = {f.fingerprint for f in baselined}
        stale = [entry for entry in self.entries
                 if entry.fingerprint not in live]
        return new, baselined, stale

    @staticmethod
    def from_findings(findings: list[Finding],
                      tracking: str = "baselined — link a tracking "
                                      "issue") -> "Baseline":
        entries = [BaselineEntry(fingerprint=f.fingerprint, rule=f.rule,
                                 path=f.path, tracking=tracking)
                   for f in findings]
        # One entry per fingerprint, stable order.
        unique: dict[str, BaselineEntry] = {}
        for entry in entries:
            unique.setdefault(entry.fingerprint, entry)
        return Baseline(entries=sorted(
            unique.values(), key=lambda e: (e.path, e.rule, e.fingerprint)))


def load_baseline(path: str | Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return Baseline()
    data = json.loads(path.read_text(encoding="utf-8"))
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} in {path} "
            f"(expected {BASELINE_VERSION})")
    entries = []
    for raw in data.get("entries", []):
        missing = {"fingerprint", "rule", "path", "tracking"} - set(raw)
        if missing:
            raise ValueError(
                f"baseline entry missing field(s) {sorted(missing)}: {raw}")
        if not str(raw["tracking"]).strip():
            raise ValueError(
                f"baseline entry for {raw['fingerprint']} has an empty "
                f"tracking comment — every grandfathered finding needs "
                f"an owner note")
        entries.append(BaselineEntry(
            fingerprint=raw["fingerprint"], rule=raw["rule"],
            path=raw["path"], tracking=raw["tracking"]))
    return Baseline(entries=entries)


def save_baseline(baseline: Baseline, path: str | Path) -> None:
    """Write the baseline deterministically (sorted, trailing newline)."""
    path = Path(path)
    entries = sorted(baseline.entries,
                     key=lambda e: (e.path, e.rule, e.fingerprint))
    payload = {
        "version": BASELINE_VERSION,
        "comment": "Grandfathered repro-lint findings. Entries are "
                   "removed as the underlying debt is fixed; do not add "
                   "entries for new code — fix it instead.",
        "entries": [entry.to_dict() for entry in entries],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


__all__ = [
    "BASELINE_VERSION",
    "Baseline",
    "BaselineEntry",
    "load_baseline",
    "save_baseline",
]
