"""The interprocedural flow rules (RL008-RL011, ``repro.lint.flow``).

Each rule reads the :class:`~repro.lint.project.ProjectContext` — the
repo-wide symbol table, call graph, and per-function summaries — instead
of a single module, so it sees the bug shapes the per-module rules
structurally cannot: a blocking call two frames below a ``with lock:``,
a lock-acquisition cycle split across classes, a ``deadline`` parameter
that dies one call short of the wait it was meant to bound, a
``SharedArray`` whose unlink lives on only one of three exit paths.

Like the module rules, these are distilled from bug classes fixed by
hand: PR 4 (hung encoder under the store lock), PR 7 (leaked ``/dev/shm``
segments on crash paths), PR 9 (mmap shard handles).  RL009-RL011 are
scoped to the production stack (``LintConfig.flow_scope``); RL008 is
global because a lock-order inversion is a bug wherever the locks live.
"""

from __future__ import annotations

from repro.lint.core import Finding, rule
from repro.lint.project import _WAIT_ATTRS, ProjectContext


def _in_flow_scope(project: ProjectContext, rel: str) -> bool:
    return any(rel.startswith(prefix)
               for prefix in project.config.flow_scope)


# ---------------------------------------------------------------------
# RL008 — lock-order inversion
# ---------------------------------------------------------------------
@rule("RL008", "lock-order inversion (cycle in the global "
               "lock-acquisition graph)", scope="project")
def check_lock_order(project: ProjectContext) -> list[Finding]:
    """Thread 1 takes A then B; thread 2 takes B then A; both stall
    forever holding the half the other needs.  No single function shows
    the bug — each ordering is locally reasonable — so the rule builds
    the *global* lock-acquisition-order graph (an edge A->B whenever B is
    acquired while A is held, including acquisitions made by callees
    resolved through the call graph) and reports every cycle.  Fix by
    picking one canonical order and acquiring in that order everywhere,
    or by narrowing one critical section until it no longer nests.
    Re-entrant self-acquisition is not reported (RLock territory, and
    instance-level lock identities would alias)."""
    findings: list[Finding] = []
    for cycle in project.lock_cycles():
        ring = " -> ".join(cycle.locks + (cycle.locks[0],))
        for rel, line, qualname, outer, inner in cycle.sites:
            findings.append(project.finding(
                "RL008", rel, line, 0, qualname,
                f"lock-order inversion: `{inner}` is acquired while "
                f"holding `{outer}`, closing the cycle {ring} — pick one "
                f"global order and acquire in it everywhere"))
    return findings


# ---------------------------------------------------------------------
# RL009 — transitive blocking under a lock
# ---------------------------------------------------------------------
@rule("RL009", "call chain from a critical section to an unbounded "
               "blocking sink", scope="project")
def check_transitive_blocking(project: ProjectContext) -> list[Finding]:
    """RL001 catches `with lock: provider.encode(...)`; it cannot catch
    `with lock: self._refresh()` where `_refresh` (or anything *it*
    calls) ends in an unbounded `.wait()` / `.get()` / `.encode(...)`.
    The result is the same PR-4 deadlock — every thread that needs the
    lock queues behind a provider that never returns — just hidden one
    or more frames down.  This rule propagates "may block without a
    bound" backwards over the resolved call graph and flags any call
    made while holding a lock whose callee's closure reaches such a
    sink.  Bound the sink (timeout/deadline argument), or move the call
    out of the critical section and re-acquire to publish the result."""
    findings: list[Finding] = []
    for fqn, (summary, fn) in sorted(project.functions.items()):
        if not _in_flow_scope(project, summary.rel):
            continue
        for callee, call in project.callees(fqn):
            if not call.locks_held or call.bounded or call.guarded:
                continue
            witness = project.may_block(callee)
            if witness is None:
                continue
            held = " / ".join(sorted(set(call.locks_held)))
            chain = f"{callee.split(':')[-1]} -> {witness[0]}"
            findings.append(project.finding(
                "RL009", summary.rel, call.line, call.col, fn.qualname,
                f"call chain `{chain}` can block without a bound while "
                f"holding `{held}` — bound the sink or move the call "
                f"outside the critical section"))
    return findings


# ---------------------------------------------------------------------
# RL010 — dropped deadline
# ---------------------------------------------------------------------
def _wait_shaped(call) -> bool:
    if call.attr not in _WAIT_ATTRS:
        return False
    if call.attr == "get" and call.nargs:
        return False  # dict.get
    if call.attr == "join" and call.receiver and \
            not any(token in call.receiver.lower()
                    for token in ("thread", "worker", "proc", "pool")):
        return False  # str.join
    return True


@rule("RL010", "deadline/timeout parameter accepted but not threaded "
               "to the wait it should bound", scope="project")
def check_dropped_deadline(project: ProjectContext) -> list[Finding]:
    """A `deadline=` parameter is a promise: every wait downstream of
    this frame is bounded by it.  A function that accepts one and then
    reaches a wait-shaped sink — `.wait()`, `.result()`, a call into a
    callee that itself takes a deadline — without passing the deadline
    (or a value derived from it, e.g. `deadline.remaining()`) silently
    converts the caller's budget into `forever`: exactly how the pre-PR4
    stack hung while every layer above believed it had a timeout.
    Thread the parameter through (any expression derived from it
    counts), or guard the unbounded branch on the deadline itself
    (`if deadline is None: ...`)."""
    findings: list[Finding] = []
    for fqn, (summary, fn) in sorted(project.functions.items()):
        if not _in_flow_scope(project, summary.rel):
            continue
        if not fn.deadline_params:
            continue
        params = ", ".join(fn.deadline_params)
        for call in fn.calls:
            if call.tainted or call.guarded:
                continue
            if _wait_shaped(call):
                findings.append(project.finding(
                    "RL010", summary.rel, call.line, call.col,
                    fn.qualname,
                    f"`{'.'.join(call.chain)}(...)` does not use the "
                    f"`{params}` this function accepted — pass "
                    f"the remaining budget so the wait stays bounded"))
                continue
            callee = project.resolve_call(summary, fn, call)
            if callee is None:
                continue
            callee_fn = project.functions[callee][1]
            if callee_fn.deadline_params and not call.bounded:
                findings.append(project.finding(
                    "RL010", summary.rel, call.line, call.col,
                    fn.qualname,
                    f"`{'.'.join(call.chain)}(...)` drops the deadline: "
                    f"the callee accepts "
                    f"`{', '.join(callee_fn.deadline_params)}` but this "
                    f"call forwards neither `{params}` nor anything "
                    f"derived from it"))
    return findings


# ---------------------------------------------------------------------
# RL011 — resource lifecycle
# ---------------------------------------------------------------------
@rule("RL011", "resource opened but not closed on every path",
      scope="project")
def check_resource_lifecycle(project: ProjectContext) -> list[Finding]:
    """A `SharedArray` that is not unlinked survives the process in
    `/dev/shm`; an unclosed socket holds its FD and its peer's accept
    slot; an unclosed mmap pins the shard file against the next
    generation's GC (the PR-7 and PR-9 crash-path leaks).  This rule
    tracks every handle-producing call (`open`, `socket.socket`,
    `np.memmap`, `SharedMemory`, `SharedArray`, ...) bound to a local
    name and requires a lifecycle the code can prove: a `with` block, a
    close/unlink/release in a `try/finally`, straight-line close on the
    only path, or an ownership transfer (returned, yielded, stored on
    `self`, handed to another call).  A close reachable on only *some*
    paths — inside one `if` branch, or in a `try` body an exception can
    skip — is reported as such."""
    findings: list[Finding] = []
    for fqn, (summary, fn) in sorted(project.functions.items()):
        if not _in_flow_scope(project, summary.rel):
            continue
        for resource in fn.resources:
            if resource.escapes or resource.closed in ("with",
                                                       "guaranteed"):
                continue
            if resource.closed == "conditional":
                message = (
                    f"`{resource.var}` ({resource.kind}) is closed on "
                    f"some paths only — move the close into a `finally` "
                    f"(or manage it with `with`) so every exit releases "
                    f"it")
            else:
                message = (
                    f"`{resource.var}` ({resource.kind}) is opened but "
                    f"never closed in this function and never handed "
                    f"off — use `with`, or close/unlink it in a "
                    f"`try/finally`")
            findings.append(project.finding(
                "RL011", summary.rel, resource.line, resource.col,
                fn.qualname, message))
    return findings


__all__ = [
    "check_dropped_deadline",
    "check_lock_order",
    "check_resource_lifecycle",
    "check_transitive_blocking",
]
