"""repro.lint — repo-aware static analysis for the reproduction codebase.

PRs 2-4 each fixed a *class* of latent bug by hand: locks held across
blocking encodes, unbounded ``Event.wait()``s that deadlocked the serving
stack, non-atomic checkpoint writes, and global-RNG use that breaks the
bit-exact resume guarantee of :mod:`repro.training.runtime`.  This package
turns those invariants into enforced rules so regressions fail CI instead
of being rediscovered in production.

Framework (stdlib ``ast``/``tokenize`` only, no new dependencies):

* a pluggable checker registry (:data:`~repro.lint.core.RULES`, populated
  by the :func:`~repro.lint.core.rule` decorator) with per-rule severity;
* inline suppressions — ``# repro-lint: allow[RL00x] reason`` on the
  violating line or the line above (a reason is mandatory);
* a committed baseline (``tools/lint_baseline.json``) keyed by
  line-drift-tolerant fingerprints, so new violations fail CI while any
  tracked legacy ones are burned down to zero;
* text/JSON/SARIF reporting with CI-friendly exit codes via
  ``tools/run_lint.py`` and ``python -m repro lint``;
* a whole-program layer (:mod:`repro.lint.project`): repo-wide symbol
  table, call graph, and per-function lock/deadline/resource summaries,
  cached per file SHA in ``tools/.lint_cache.json``, that the
  project-scope rules (:mod:`repro.lint.flowrules`) reason over.

Shipped rules (see :mod:`repro.lint.rules` and
:mod:`repro.lint.flowrules` for the full rationale):

========  ============================================================
RL001     blocking call inside a ``with <lock>:`` block
RL002     unbounded ``.wait()``/``.get()``/``.result()``/``.acquire()``
          in the serving/training stack
RL003     ``threading.Thread`` without ``daemon=True`` in library code
RL004     checkpoint/store writes bypassing temp+fsync+rename
RL005     global-RNG calls (``random.*`` / ``np.random.*``) instead of a
          seeded ``Generator``
RL006     bare/over-broad ``except`` that swallows silently
RL007     metric-name / prompt-token string drift from the single source
          of truth
RL008     lock-order inversion — a cycle in the global
          lock-acquisition graph, including edges through callees
RL009     call chain from a critical section to an unbounded blocking
          sink (the interprocedural RL001)
RL010     ``deadline``/``timeout`` parameter accepted but not threaded
          to the wait it was meant to bound
RL011     resource handle (socket, mmap, ``SharedArray``, file, ...)
          not closed/unlinked on every exit path
========  ============================================================
"""

from repro.lint.baseline import Baseline, load_baseline, save_baseline
from repro.lint.cli import main as lint_main
from repro.lint.core import (
    RULES,
    Finding,
    LintConfig,
    Rule,
    analyze_paths,
    analyze_source,
    analyze_sources,
    iter_python_files,
    rule,
)
from repro.lint.project import ProjectContext, SummaryCache, build_project
from repro.lint import rules as _rules  # registers the module rules
from repro.lint import flowrules as _flowrules  # registers RL008-RL011

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "ProjectContext",
    "RULES",
    "Rule",
    "SummaryCache",
    "analyze_paths",
    "analyze_source",
    "analyze_sources",
    "build_project",
    "iter_python_files",
    "lint_main",
    "load_baseline",
    "rule",
    "save_baseline",
]
