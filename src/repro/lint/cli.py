"""Command-line driver for :mod:`repro.lint`.

Exit codes (CI contract):

* ``0`` — clean, or every error-severity finding is in the baseline;
* ``1`` — at least one *new* error-severity finding;
* ``2`` — usage error (unknown rule code, unreadable baseline, ...).

Used both by ``tools/run_lint.py`` (no-install entry point) and
``python -m repro lint``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.baseline import Baseline, load_baseline, save_baseline
from repro.lint.core import RULES, Finding, analyze_paths

#: Default lint targets relative to the repo root.
DEFAULT_PATHS = ("src/repro",)


def find_repo_root(start: Path | None = None) -> Path:
    """Walk up from ``start`` to the directory containing ``pyproject.toml``.

    Falls back to the current working directory so the linter still runs
    on a bare source tree.
    """
    cursor = (start or Path.cwd()).resolve()
    for candidate in (cursor, *cursor.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return cursor


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the lint driver (shared by tests and main)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Repo-aware static analysis for the repro codebase "
                    "(concurrency, RNG discipline, atomic IO, literal "
                    "drift).")
    parser.add_argument(
        "paths", nargs="*", default=None,
        help=f"files or directories to lint (default: {DEFAULT_PATHS})")
    parser.add_argument(
        "--root", default=None,
        help="repository root for scoping and fingerprints "
             "(default: auto-detected via pyproject.toml)")
    parser.add_argument(
        "--baseline", default=None,
        help="baseline JSON file; findings whose fingerprint it lists "
             "are reported but do not fail the run")
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline to exactly the current findings "
             "(prunes stale entries) and exit 0")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--select", action="append", default=None, metavar="RL00x",
        help="run only these rule codes (repeatable)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules with rationale and exit")
    return parser


def _list_rules() -> str:
    blocks = []
    for code in sorted(RULES):
        meta = RULES[code]
        block = f"{code} [{meta.severity}] {meta.title}"
        if meta.rationale:
            indented = "\n".join("    " + line for line in
                                 meta.rationale.splitlines())
            block += "\n" + indented
        blocks.append(block)
    return "\n\n".join(blocks)


def _render_text(new: list[Finding], baselined: list[Finding],
                 stale_count: int) -> str:
    lines = []
    for finding in new:
        lines.append(finding.render())
    for finding in baselined:
        lines.append(f"{finding.render()} (baselined)")
    if stale_count:
        lines.append(f"note: {stale_count} stale baseline entr"
                     f"{'y' if stale_count == 1 else 'ies'} — the debt "
                     f"was fixed; run --update-baseline to prune")
    errors = sum(1 for f in new if f.severity == "error")
    warnings = sum(1 for f in new if f.severity == "warning")
    lines.append(
        f"repro-lint: {errors} new error(s), {warnings} new warning(s), "
        f"{len(baselined)} baselined")
    return "\n".join(lines)


def _render_json(new: list[Finding], baselined: list[Finding],
                 stale_count: int, exit_code: int) -> str:
    return json.dumps({
        "version": 1,
        "new": [f.to_dict() for f in new],
        "baselined": [f.to_dict() for f in baselined],
        "stale_baseline_entries": stale_count,
        "summary": {
            "new_errors": sum(1 for f in new if f.severity == "error"),
            "new_warnings": sum(1 for f in new
                                if f.severity == "warning"),
            "baselined": len(baselined),
            "exit_code": exit_code,
        },
    }, indent=2)


def main(argv: Sequence[str] | None = None,
         stdout=None, stderr=None) -> int:
    """Run the lint driver; returns the CI exit code (see module doc).

    ``stdout``/``stderr`` are injectable for tests; they default to the
    process streams.
    """
    stdout = stdout or sys.stdout
    stderr = stderr or sys.stderr
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules(), file=stdout)
        return 0

    root = Path(args.root).resolve() if args.root else find_repo_root()
    paths = args.paths or [root / p for p in DEFAULT_PATHS]

    try:
        findings = analyze_paths(paths, root=root, select=args.select)
    except ValueError as error:  # unknown --select code
        print(f"repro-lint: {error}", file=stderr)
        return 2

    baseline = Baseline()
    baseline_path = None
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_absolute():
            baseline_path = root / baseline_path
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, json.JSONDecodeError) as error:
            print(f"repro-lint: bad baseline {baseline_path}: {error}",
                  file=stderr)
            return 2

    if args.update_baseline:
        if baseline_path is None:
            print("repro-lint: --update-baseline requires --baseline",
                  file=stderr)
            return 2
        errors = [f for f in findings if f.severity == "error"]
        save_baseline(Baseline.from_findings(errors), baseline_path)
        print(f"repro-lint: baseline updated with {len(errors)} "
              f"entr{'y' if len(errors) == 1 else 'ies'} at "
              f"{baseline_path}", file=stdout)
        return 0

    new, baselined, stale = baseline.partition(findings)
    exit_code = 1 if any(f.severity == "error" for f in new) else 0

    if args.format == "json":
        print(_render_json(new, baselined, len(stale), exit_code),
              file=stdout)
    else:
        print(_render_text(new, baselined, len(stale)), file=stdout)
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
