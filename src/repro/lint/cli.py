"""Command-line driver for :mod:`repro.lint`.

Exit codes (CI contract):

* ``0`` — clean, or every error-severity finding is in the baseline;
* ``1`` — at least one *new* error-severity finding, or the
  ``--max-seconds`` wall-time budget was exceeded;
* ``2`` — usage error (unknown rule code, unreadable baseline, ...).

Besides the plain lint run the driver exposes:

* ``--format json|sarif`` — machine-readable reports; SARIF 2.1.0 is
  what GitHub code scanning ingests for inline PR annotations;
* ``--graph`` — dump the resolved call graph and lock-acquisition
  graph as JSON (the inputs RL008/RL009 reason over) and exit;
* ``baseline prune`` — drop baseline entries whose debt was paid down,
  reporting each one, so the file ratchets toward empty;
* ``--cache`` / ``--no-cache`` — per-file summary cache
  (``tools/.lint_cache.json``), keyed by file SHA and invalidated
  wholesale when the rule set or config changes.

Used both by ``tools/run_lint.py`` (no-install entry point) and
``python -m repro lint``.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.lint.baseline import Baseline, load_baseline, save_baseline
from repro.lint.core import (
    RULES,
    Finding,
    LintConfig,
    ModuleContext,
    analyze_paths,
    iter_python_files,
)

#: Default lint targets relative to the repo root.  Tests, benchmarks,
#: and tools run a test-appropriate rule subset via
#: :attr:`~repro.lint.core.LintConfig.path_rule_exemptions`.
DEFAULT_PATHS = ("src/repro", "tools", "benchmarks", "tests")

#: Default on-disk summary cache, relative to the repo root.
DEFAULT_CACHE = "tools/.lint_cache.json"

#: SARIF severity levels for our two finding severities.
_SARIF_LEVEL = {"error": "error", "warning": "warning"}


def find_repo_root(start: Path | None = None) -> Path:
    """Walk up from ``start`` to the directory containing ``pyproject.toml``.

    Falls back to the current working directory so the linter still runs
    on a bare source tree.
    """
    cursor = (start or Path.cwd()).resolve()
    for candidate in (cursor, *cursor.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return cursor


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the lint driver (shared by tests and main)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Repo-aware static analysis for the repro codebase "
                    "(concurrency, RNG discipline, atomic IO, literal "
                    "drift, and interprocedural lock/deadline/resource "
                    "flow).")
    parser.add_argument(
        "paths", nargs="*", default=None,
        help=f"files or directories to lint (default: {DEFAULT_PATHS})")
    parser.add_argument(
        "--root", default=None,
        help="repository root for scoping and fingerprints "
             "(default: auto-detected via pyproject.toml)")
    parser.add_argument(
        "--baseline", default=None,
        help="baseline JSON file; findings whose fingerprint it lists "
             "are reported but do not fail the run")
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline to exactly the current findings "
             "(prunes stale entries) and exit 0")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text); sarif is the GitHub "
             "code-scanning upload format")
    parser.add_argument(
        "--select", action="append", default=None, metavar="RL00x",
        help="run only these rule codes (repeatable)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules with rationale and exit")
    parser.add_argument(
        "--graph", action="store_true",
        help="dump the resolved call graph and lock-acquisition graph "
             "as JSON and exit (no findings are reported)")
    parser.add_argument(
        "--cache", default=None, metavar="PATH",
        help=f"summary cache file (default: <root>/{DEFAULT_CACHE}); "
             f"files whose SHA is cached skip the parse and module-rule "
             f"pass")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the summary cache for this run")
    parser.add_argument(
        "--max-seconds", type=float, default=None, metavar="S",
        help="fail (exit 1) if the analysis itself takes longer than "
             "this — the CI wall-time regression gate")
    return parser


def _list_rules() -> str:
    blocks = []
    for code in sorted(RULES):
        meta = RULES[code]
        block = f"{code} [{meta.severity}/{meta.scope}] {meta.title}"
        if meta.rationale:
            indented = "\n".join("    " + line for line in
                                 meta.rationale.splitlines())
            block += "\n" + indented
        blocks.append(block)
    return "\n\n".join(blocks)


def _render_text(new: list[Finding], baselined: list[Finding],
                 stale_count: int) -> str:
    lines = []
    for finding in new:
        lines.append(finding.render())
    for finding in baselined:
        lines.append(f"{finding.render()} (baselined)")
    if stale_count:
        lines.append(f"note: {stale_count} stale baseline entr"
                     f"{'y' if stale_count == 1 else 'ies'} — the debt "
                     f"was fixed; run `baseline prune` to drop them")
    errors = sum(1 for f in new if f.severity == "error")
    warnings = sum(1 for f in new if f.severity == "warning")
    lines.append(
        f"repro-lint: {errors} new error(s), {warnings} new warning(s), "
        f"{len(baselined)} baselined")
    return "\n".join(lines)


def _render_json(new: list[Finding], baselined: list[Finding],
                 stale_count: int, exit_code: int) -> str:
    return json.dumps({
        "version": 1,
        "new": [f.to_dict() for f in new],
        "baselined": [f.to_dict() for f in baselined],
        "stale_baseline_entries": stale_count,
        "summary": {
            "new_errors": sum(1 for f in new if f.severity == "error"),
            "new_warnings": sum(1 for f in new
                                if f.severity == "warning"),
            "baselined": len(baselined),
            "exit_code": exit_code,
        },
    }, indent=2)


def _sarif_result(finding: Finding, baselined: bool) -> dict:
    result = {
        "ruleId": finding.rule,
        "level": _SARIF_LEVEL.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path,
                    "uriBaseId": "SRCROOT",
                },
                "region": {
                    "startLine": max(1, finding.line),
                    # SARIF columns are 1-based; ours are 0-based.
                    "startColumn": finding.col + 1,
                },
            },
        }],
        "partialFingerprints": {
            "reproLint/v1": finding.fingerprint,
        },
    }
    if baselined:
        # GitHub treats non-"new" states as already-triaged: the
        # annotation stays visible but does not gate the PR.
        result["baselineState"] = "unchanged"
        result["level"] = "note"
    return result


def _render_sarif(new: list[Finding], baselined: list[Finding]) -> str:
    rules = []
    for code in sorted(RULES):
        meta = RULES[code]
        rule = {
            "id": code,
            "name": code,
            "shortDescription": {"text": meta.title},
            "defaultConfiguration": {
                "level": _SARIF_LEVEL.get(meta.severity, "warning"),
            },
        }
        if meta.rationale:
            rule["fullDescription"] = {
                "text": " ".join(meta.rationale.split()),
            }
        rules.append(rule)
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://example.invalid/repro-lint",
                    "rules": rules,
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": ([_sarif_result(f, baselined=False) for f in new]
                        + [_sarif_result(f, baselined=True)
                           for f in baselined]),
        }],
    }
    return json.dumps(payload, indent=2)


def _read_sources(paths, root: Path) -> dict[str, str]:
    sources: dict[str, str] = {}
    for path in iter_python_files(paths, root):
        try:
            rel = path.resolve().relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        try:
            sources[rel] = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
    return sources


def _dump_graph(paths, root: Path, stdout) -> int:
    """Print the call/lock graphs RL008-RL011 reason over, as JSON."""
    from repro.lint.project import build_project

    config = LintConfig()
    sources = _read_sources(paths, root)
    contexts = []
    for rel in sorted(sources):
        try:
            tree = ast.parse(sources[rel])
        except SyntaxError:
            continue
        contexts.append(ModuleContext(rel=rel, source=sources[rel],
                                      tree=tree, config=config))
    project = build_project(contexts, config, sources=sources)
    print(json.dumps(project.graph_dump(), indent=2), file=stdout)
    return 0


def _prune_baseline(argv: Sequence[str], stdout, stderr) -> int:
    """``repro lint baseline prune`` — drop entries whose debt is paid."""
    parser = argparse.ArgumentParser(
        prog="repro-lint baseline",
        description="Baseline maintenance: prune drops entries whose "
                    "fingerprint no longer matches any finding and "
                    "reports each one.")
    parser.add_argument("action", choices=("prune",))
    parser.add_argument(
        "paths", nargs="*", default=None,
        help=f"paths to re-lint when deciding staleness "
             f"(default: {DEFAULT_PATHS})")
    parser.add_argument("--root", default=None)
    parser.add_argument(
        "--baseline", default="tools/lint_baseline.json",
        help="baseline file to prune (default: "
             "tools/lint_baseline.json)")
    parser.add_argument(
        "--dry-run", action="store_true",
        help="report what would be dropped without rewriting the file")
    # intermixed: options may appear between the action and the paths.
    args = parser.parse_intermixed_args(argv)

    root = Path(args.root).resolve() if args.root else find_repo_root()
    baseline_path = Path(args.baseline)
    if not baseline_path.is_absolute():
        baseline_path = root / baseline_path
    try:
        baseline = load_baseline(baseline_path)
    except (ValueError, json.JSONDecodeError) as error:
        print(f"repro-lint: bad baseline {baseline_path}: {error}",
              file=stderr)
        return 2
    if not baseline.entries:
        print("repro-lint: baseline is empty — nothing to prune",
              file=stdout)
        return 0

    paths = args.paths or [root / p for p in DEFAULT_PATHS]
    findings = analyze_paths(paths, root=root)
    _, kept, stale = baseline.partition(findings)
    if not stale:
        print(f"repro-lint: all {len(baseline.entries)} baseline "
              f"entr{'y is' if len(baseline.entries) == 1 else 'ies are'}"
              f" still live — nothing to prune", file=stdout)
        return 0
    for entry in stale:
        print(f"pruned {entry.fingerprint} {entry.rule} {entry.path} "
              f"({entry.tracking})", file=stdout)
    if args.dry_run:
        print(f"repro-lint: would prune {len(stale)} stale entr"
              f"{'y' if len(stale) == 1 else 'ies'} (dry run)",
              file=stdout)
        return 0
    live = {f.fingerprint for f in kept}
    baseline.entries = [entry for entry in baseline.entries
                        if entry.fingerprint in live]
    save_baseline(baseline, baseline_path)
    print(f"repro-lint: pruned {len(stale)} stale entr"
          f"{'y' if len(stale) == 1 else 'ies'}; "
          f"{len(baseline.entries)} remain", file=stdout)
    return 0


def main(argv: Sequence[str] | None = None,
         stdout=None, stderr=None) -> int:
    """Run the lint driver; returns the CI exit code (see module doc).

    ``stdout``/``stderr`` are injectable for tests; they default to the
    process streams.
    """
    stdout = stdout or sys.stdout
    stderr = stderr or sys.stderr
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["baseline"]:
        return _prune_baseline(argv[1:], stdout, stderr)
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules(), file=stdout)
        return 0

    root = Path(args.root).resolve() if args.root else find_repo_root()
    paths = args.paths or [root / p for p in DEFAULT_PATHS]

    if args.graph:
        return _dump_graph(paths, root, stdout)

    cache = None
    if not args.no_cache:
        from repro.lint.project import SummaryCache, cache_key

        cache_path = Path(args.cache) if args.cache \
            else root / DEFAULT_CACHE
        if not cache_path.is_absolute():
            cache_path = root / cache_path
        cache = SummaryCache(cache_path,
                             cache_key(LintConfig(), args.select))

    started = time.monotonic()
    try:
        findings = analyze_paths(paths, root=root, select=args.select,
                                 cache=cache)
    except ValueError as error:  # unknown --select code
        print(f"repro-lint: {error}", file=stderr)
        return 2
    elapsed = time.monotonic() - started
    if cache is not None:
        cache.save()

    baseline = Baseline()
    baseline_path = None
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_absolute():
            baseline_path = root / baseline_path
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, json.JSONDecodeError) as error:
            print(f"repro-lint: bad baseline {baseline_path}: {error}",
                  file=stderr)
            return 2

    if args.update_baseline:
        if baseline_path is None:
            print("repro-lint: --update-baseline requires --baseline",
                  file=stderr)
            return 2
        errors = [f for f in findings if f.severity == "error"]
        save_baseline(Baseline.from_findings(errors), baseline_path)
        print(f"repro-lint: baseline updated with {len(errors)} "
              f"entr{'y' if len(errors) == 1 else 'ies'} at "
              f"{baseline_path}", file=stdout)
        return 0

    new, baselined, stale = baseline.partition(findings)
    exit_code = 1 if any(f.severity == "error" for f in new) else 0

    if args.format == "json":
        print(_render_json(new, baselined, len(stale), exit_code),
              file=stdout)
    elif args.format == "sarif":
        print(_render_sarif(new, baselined), file=stdout)
    else:
        print(_render_text(new, baselined, len(stale)), file=stdout)

    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(f"repro-lint: analysis took {elapsed:.2f}s, over the "
              f"--max-seconds budget of {args.max_seconds:.2f}s — the "
              f"summary cache or the analyzer regressed", file=stderr)
        return 1
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
