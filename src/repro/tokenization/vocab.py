"""Vocabulary with reserved special tokens and growable special-token tail."""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

from repro.ioutil import atomic_write_text

PAD = "[PAD]"
UNK = "[UNK]"
CLS = "[CLS]"
SEP = "[SEP]"
MASK = "[MASK]"

CORE_SPECIALS = (PAD, UNK, CLS, SEP, MASK)


class Vocab:
    """Bidirectional token/id mapping.

    The five BERT control tokens always occupy ids 0–4.  Additional special
    tokens (prompt tokens, mined tele tokens) can be appended at any time via
    :meth:`add_special_tokens`; callers that hold embedding tables react by
    growing them (see :meth:`repro.nn.Embedding.grow`).
    """

    def __init__(self, tokens: Iterable[str] = ()):
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        self._special: set[str] = set()
        for token in CORE_SPECIALS:
            self._add(token, special=True)
        for token in tokens:
            self._add(token)

    # ------------------------------------------------------------------
    def _add(self, token: str, special: bool = False) -> int:
        if token in self._token_to_id:
            if special:
                # Promote an existing plain token (e.g. a "[KPI]" literal seen
                # in raw corpus text) to special status.
                self._special.add(token)
            return self._token_to_id[token]
        index = len(self._id_to_token)
        self._token_to_id[token] = index
        self._id_to_token.append(token)
        if special:
            self._special.add(token)
        return index

    def add_tokens(self, tokens: Iterable[str]) -> int:
        """Add plain tokens; returns how many were new."""
        before = len(self)
        for token in tokens:
            self._add(token)
        return len(self) - before

    def add_special_tokens(self, tokens: Iterable[str]) -> int:
        """Add special tokens (never masked, never split); returns new count."""
        before = len(self)
        for token in tokens:
            self._add(token, special=True)
        return len(self) - before

    @classmethod
    def build(cls, sentences: Iterable[Sequence[str]], min_freq: int = 1,
              max_size: int | None = None) -> "Vocab":
        """Build from tokenised sentences keeping tokens with ``freq >= min_freq``."""
        counts = Counter()
        for sentence in sentences:
            counts.update(sentence)
        ranked = [t for t, c in counts.most_common() if c >= min_freq]
        if max_size is not None:
            ranked = ranked[: max(max_size - len(CORE_SPECIALS), 0)]
        return cls(ranked)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def token_to_id(self, token: str) -> int:
        return self._token_to_id.get(token, self._token_to_id[UNK])

    def id_to_token(self, index: int) -> str:
        return self._id_to_token[index]

    def encode(self, tokens: Sequence[str]) -> list[int]:
        return [self.token_to_id(t) for t in tokens]

    def decode(self, ids: Sequence[int]) -> list[str]:
        return [self.id_to_token(i) for i in ids]

    def is_special(self, token: str) -> bool:
        return token in self._special

    @property
    def special_tokens(self) -> frozenset[str]:
        return frozenset(self._special)

    @property
    def num_special(self) -> int:
        """Number of special tokens; O(1) cache key for special-id caches."""
        return len(self._special)

    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK]

    @property
    def cls_id(self) -> int:
        return self._token_to_id[CLS]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[SEP]

    @property
    def mask_id(self) -> int:
        return self._token_to_id[MASK]

    def special_ids(self) -> set[int]:
        """Ids of all special tokens (excluded from MLM target sampling)."""
        return {self._token_to_id[t] for t in self._special}

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        payload = {"tokens": self._id_to_token,
                   "special": sorted(self._special)}
        atomic_write_text(path, json.dumps(payload, ensure_ascii=False))

    @classmethod
    def load(cls, path: str | Path) -> "Vocab":
        payload = json.loads(Path(path).read_text())
        vocab = cls.__new__(cls)
        vocab._token_to_id = {t: i for i, t in enumerate(payload["tokens"])}
        vocab._id_to_token = list(payload["tokens"])
        vocab._special = set(payload["special"])
        return vocab
