"""Byte-pair encoding (Sennrich et al. 2016) and tele special-token mining.

The paper (Sec. IV-A3) runs BPE over the Tele-Corpus and keeps learned symbols
that (i) are 2–4 characters long and (ii) occur at least a threshold number of
times while being absent from the base vocabulary — these are overwhelmingly
domain abbreviations ("RAN", "MML", "PGW", "MME", "SGW", "NF") and become
special tokens of KTeleBERT.  :func:`mine_special_tokens` implements exactly
that filter.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

END_OF_WORD = "</w>"


def _word_to_symbols(word: str) -> tuple[str, ...]:
    return tuple(word) + (END_OF_WORD,)


def _pair_counts(vocab: dict[tuple[str, ...], int]) -> Counter:
    pairs: Counter = Counter()
    for symbols, freq in vocab.items():
        for a, b in zip(symbols, symbols[1:]):
            pairs[(a, b)] += freq
    return pairs


def _merge_pair(symbols: tuple[str, ...], pair: tuple[str, str]) -> tuple[str, ...]:
    merged: list[str] = []
    i = 0
    while i < len(symbols):
        if i + 1 < len(symbols) and (symbols[i], symbols[i + 1]) == pair:
            merged.append(symbols[i] + symbols[i + 1])
            i += 2
        else:
            merged.append(symbols[i])
            i += 1
    return tuple(merged)


def learn_bpe(words: Iterable[str], num_merges: int) -> list[tuple[str, str]]:
    """Learn up to ``num_merges`` BPE merges from an iterable of words.

    Returns the ordered merge list; ties are broken deterministically by the
    lexicographic order of the pair so results are reproducible.
    """
    word_counts = Counter(words)
    vocab: dict[tuple[str, ...], int] = {
        _word_to_symbols(w): c for w, c in word_counts.items()}
    merges: list[tuple[str, str]] = []
    for _ in range(num_merges):
        pairs = _pair_counts(vocab)
        if not pairs:
            break
        best_count = max(pairs.values())
        if best_count < 2:
            break
        best = min(p for p, c in pairs.items() if c == best_count)
        merges.append(best)
        vocab = {_merge_pair(symbols, best): freq
                 for symbols, freq in vocab.items()}
    return merges


class BpeCodec:
    """Apply a learned merge list to segment words into subword symbols."""

    def __init__(self, merges: Sequence[tuple[str, str]]):
        self.merges = list(merges)
        self._rank = {pair: i for i, pair in enumerate(self.merges)}

    def segment(self, word: str) -> list[str]:
        """Split ``word`` into BPE symbols (end-of-word marker stripped)."""
        symbols = list(_word_to_symbols(word))
        while len(symbols) > 1:
            candidate = None
            candidate_rank = None
            for a, b in zip(symbols, symbols[1:]):
                rank = self._rank.get((a, b))
                if rank is not None and (candidate_rank is None or rank < candidate_rank):
                    candidate, candidate_rank = (a, b), rank
            if candidate is None:
                break
            symbols = list(_merge_pair(tuple(symbols), candidate))
        cleaned = []
        for symbol in symbols:
            symbol = symbol.replace(END_OF_WORD, "")
            if symbol:
                cleaned.append(symbol)
        return cleaned

    def learned_symbols(self) -> set[str]:
        """All multi-character symbols the merge list can produce."""
        symbols = set()
        for a, b in self.merges:
            symbols.add((a + b).replace(END_OF_WORD, ""))
        symbols.discard("")
        return symbols


def mine_special_tokens(sentences: Iterable[Sequence[str]],
                        base_vocabulary: Iterable[str],
                        min_length: int = 2, max_length: int = 4,
                        min_frequency: int = 10,
                        num_merges: int = 2000) -> list[str]:
    """Mine tele special tokens per Sec. IV-A3.

    Runs BPE over the corpus words, then keeps learned symbols whose character
    length is in ``[min_length, max_length]``, whose corpus frequency (as a
    standalone word) is at least ``min_frequency``, and which are not in the
    base vocabulary.  Ordered by descending frequency then alphabetically.
    """
    base = set(base_vocabulary)
    word_counts: Counter = Counter()
    for sentence in sentences:
        word_counts.update(sentence)

    codec = BpeCodec(learn_bpe(word_counts.elements(), num_merges))
    learned = codec.learned_symbols()

    candidates = []
    for symbol in learned:
        if not min_length <= len(symbol) <= max_length:
            continue
        if symbol in base:
            continue
        freq = word_counts.get(symbol, 0)
        if freq < min_frequency:
            continue
        candidates.append((symbol, freq))
    candidates.sort(key=lambda item: (-item[1], item[0]))
    return [symbol for symbol, _ in candidates]
