"""Word-level tokenizer with prompt-token awareness and batch encoding."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.tokenization.vocab import CLS, SEP, Vocab

# Order matters: bracketed prompt tokens first, then words/numbers/punctuation.
_TOKEN_PATTERN = re.compile(
    r"\[[A-Za-z_]+\]"          # prompt/special tokens like [ALM], [KPI]
    r"|[A-Za-z][A-Za-z0-9_\-]*"  # words, identifiers, hyphenated jargon
    r"|\d+(?:\.\d+)?"           # integers / decimals
    r"|\|"                      # the field separator used by prompt templates
    r"|[^\sA-Za-z0-9]"          # any remaining single punctuation mark
)


def basic_tokenize(text: str, lowercase: bool = False) -> list[str]:
    """Split text into word/number/punctuation tokens.

    Bracketed prompt tokens (``[ALM]`` etc.) and the ``|`` separator survive
    as single tokens.  ``lowercase`` leaves bracketed tokens untouched.
    """
    tokens = _TOKEN_PATTERN.findall(text)
    if lowercase:
        tokens = [t if t.startswith("[") else t.lower() for t in tokens]
    return tokens


@dataclass
class Encoding:
    """Result of encoding one sentence (or a padded batch row)."""

    ids: np.ndarray            # (T,) int token ids
    attention_mask: np.ndarray  # (T,) 1 for real tokens, 0 for padding
    tokens: list[str]          # tokens including [CLS]/[SEP], without padding

    def __len__(self) -> int:
        return int(self.attention_mask.sum())


class WordTokenizer:
    """Tokenizer mapping raw text to id sequences against a :class:`Vocab`.

    Encodes as ``[CLS] tokens... [SEP]`` (Sec. III-B), truncating to
    ``max_length`` and padding batches to a common length.
    """

    def __init__(self, vocab: Vocab, max_length: int = 64,
                 lowercase: bool = False):
        if max_length < 3:
            raise ValueError("max_length must allow [CLS] + 1 token + [SEP]")
        self.vocab = vocab
        self.max_length = max_length
        self.lowercase = lowercase

    def tokenize(self, text: str) -> list[str]:
        return basic_tokenize(text, lowercase=self.lowercase)

    def encode(self, text: str) -> Encoding:
        """Encode a single sentence; no padding is applied."""
        tokens = self.tokenize(text)[: self.max_length - 2]
        wrapped = [CLS] + tokens + [SEP]
        ids = np.asarray(self.vocab.encode(wrapped), dtype=np.int64)
        mask = np.ones(len(wrapped), dtype=np.int64)
        return Encoding(ids=ids, attention_mask=mask, tokens=wrapped)

    def encode_batch_with_tokens(
            self, texts: Sequence[str], pad_to: int | None = None
    ) -> tuple[np.ndarray, np.ndarray, list[list[str]]]:
        """Like :meth:`encode_batch` but also returns per-row token lists.

        Tokenizes each text exactly once — callers that need both the padded
        id matrices and the token strings (the stage-2 masking path) should
        use this instead of calling :meth:`encode_batch` and :meth:`encode`
        separately, which doubles the tokenization work per training step.
        """
        encodings = [self.encode(t) for t in texts]
        ids, mask = self._pad(encodings, pad_to)
        return ids, mask, [e.tokens for e in encodings]

    def encode_batch(self, texts: Sequence[str],
                     pad_to: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Encode texts into padded ``(ids, attention_mask)`` matrices."""
        return self._pad([self.encode(t) for t in texts], pad_to)

    def _pad(self, encodings: Sequence[Encoding],
             pad_to: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        length = pad_to or max(len(e.ids) for e in encodings)
        ids = np.full((len(encodings), length), self.vocab.pad_id,
                      dtype=np.int64)
        mask = np.zeros((len(encodings), length), dtype=np.int64)
        for row, enc in enumerate(encodings):
            n = min(len(enc.ids), length)
            ids[row, :n] = enc.ids[:n]
            mask[row, :n] = enc.attention_mask[:n]
        return ids, mask

    def decode(self, ids: Iterable[int], skip_special: bool = True) -> str:
        """Best-effort detokenization (space-joined)."""
        tokens = self.vocab.decode(list(ids))
        if skip_special:
            tokens = [t for t in tokens if not self.vocab.is_special(t)]
        return " ".join(tokens)

    def oov_rate(self, sentences: Sequence[str]) -> float:
        """Fraction of corpus tokens that map to ``[UNK]``.

        A coverage diagnostic: stage-2 data pipelines use it to decide which
        extra vocabulary to register before re-training.
        """
        total = 0
        unknown = 0
        for sentence in sentences:
            for token in self.tokenize(sentence):
                total += 1
                if self.vocab.token_to_id(token) == self.vocab.unk_id:
                    unknown += 1
        if total == 0:
            raise ValueError("no tokens in the given sentences")
        return unknown / total

    @classmethod
    def from_corpus(cls, sentences: Sequence[str], min_freq: int = 1,
                    max_length: int = 64, lowercase: bool = False,
                    max_vocab: int | None = None) -> "WordTokenizer":
        """Build vocabulary from raw sentences and return a tokenizer."""
        tokenised = [basic_tokenize(s, lowercase=lowercase) for s in sentences]
        vocab = Vocab.build(tokenised, min_freq=min_freq, max_size=max_vocab)
        return cls(vocab, max_length=max_length, lowercase=lowercase)
