"""Whole-word masking segmentation.

The paper masks *whole words* using a 372k-entry tele vocabulary of proper
nouns and phrases as the segmentation lexicon (Sec. III-B), falling back to
the LTP segmenter for Chinese (Sec. IV-C2).  Here the corpus is ASCII, so the
segmenter groups consecutive tokens that form a known multi-token phrase
(longest match wins) into a single maskable unit, and every other token is its
own unit.  The MLM masker then masks units, not tokens, which is exactly the
WWM contract.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class WholeWordSegmenter:
    """Greedy longest-match phrase grouping over token sequences."""

    def __init__(self, phrases: Iterable[Sequence[str]] = ()):
        self._phrases: dict[tuple[str, ...], None] = {}
        self.max_phrase_len = 1
        for phrase in phrases:
            self.add_phrase(phrase)

    def add_phrase(self, phrase: Sequence[str]) -> None:
        """Register a multi-token phrase (single tokens are accepted, inert)."""
        key = tuple(phrase)
        if not key:
            raise ValueError("empty phrase")
        self._phrases[key] = None
        self.max_phrase_len = max(self.max_phrase_len, len(key))

    @classmethod
    def from_strings(cls, phrases: Iterable[str],
                     tokenizer=None) -> "WholeWordSegmenter":
        """Build from whitespace-separated phrase strings.

        ``tokenizer`` may be a callable mapping string -> token list; defaults
        to ``str.split``.
        """
        split = tokenizer or str.split
        return cls(split(p) for p in phrases)

    def __len__(self) -> int:
        return len(self._phrases)

    def __contains__(self, phrase: Sequence[str]) -> bool:
        return tuple(phrase) in self._phrases

    def segment(self, tokens: Sequence[str]) -> list[list[int]]:
        """Group token indices into whole-word units.

        Returns a list of index groups covering ``range(len(tokens))`` in
        order; each group is either a matched phrase span or a single token.
        """
        groups: list[list[int]] = []
        i = 0
        n = len(tokens)
        while i < n:
            matched = None
            upper = min(self.max_phrase_len, n - i)
            for length in range(upper, 1, -1):
                if tuple(tokens[i:i + length]) in self._phrases:
                    matched = length
                    break
            if matched:
                groups.append(list(range(i, i + matched)))
                i += matched
            else:
                groups.append([i])
                i += 1
        return groups
