"""Tokenization substrate: vocabulary, BPE, tele special tokens, WWM.

The paper (Sec. III-B, IV-A3) tokenizes Chinese/English telecom text with a
MacBERT wordpiece vocabulary extended by (a) prompt tokens (``[ALM]``,
``[KPI]``, ...) and (b) tele special tokens mined with BPE (character length
2–4, corpus frequency above a threshold, absent from the base vocabulary —
e.g. "RAN", "MML", "PGW").  Our synthetic corpus is ASCII telecom jargon, so
the base segmentation is word-level with punctuation splitting, while BPE is
used exactly as in the paper to *mine* the special-token collection, and the
whole-word-masking segmenter plays the role of the LTP word segmenter.
"""

from repro.tokenization.vocab import Vocab
from repro.tokenization.bpe import BpeCodec, learn_bpe, mine_special_tokens
from repro.tokenization.tokenizer import Encoding, WordTokenizer, basic_tokenize
from repro.tokenization.wwm import WholeWordSegmenter

__all__ = [
    "BpeCodec",
    "Encoding",
    "Vocab",
    "WholeWordSegmenter",
    "WordTokenizer",
    "basic_tokenize",
    "learn_bpe",
    "mine_special_tokens",
]
