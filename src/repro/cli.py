"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``reproduce``  regenerate one or all paper tables/figures
               (``--table 4`` or ``--table all``, ``--seeds 0,1``).
``pretrain``   run the full two-stage pipeline and save a KTeleBERT
               checkpoint directory.
``encode``     load a checkpoint and print service embeddings for texts.
``simulate``   generate a synthetic world + fault episodes and print stats.
``serve``      long-lived JSON-lines inference loop over stdin with dynamic
               micro-batching, a persistent embedding store, and a
               ``--stats`` metrics dump (see :mod:`repro.serving`).
``serve-net``  the same service behind a multi-client TCP socket frontend:
               per-tenant API keys with token-bucket rate limits and
               concurrency quotas, admission control with structured
               ``retry_after_s`` rejections, and graceful drain on
               SIGTERM (see :mod:`repro.netserve`).
``loadgen``    open/closed-loop traffic generator against a serve-net
               endpoint: configurable op mixes, bursty arrivals, latency/
               fairness reports, and ``--sweep`` latency-vs-load curves
               (see :mod:`repro.loadgen`).
``train``      run stage-2 re-training under the fault-tolerant runtime:
               atomic checkpoint/resume, optional multi-process gradient
               workers, SIGINT/SIGTERM trapped into a final checkpoint,
               and a JSONL run journal (see :mod:`repro.training.runtime`).
``lint``       repo-aware static analysis (:mod:`repro.lint`): concurrency,
               RNG discipline, atomic-IO, and literal-drift rules with
               inline suppressions and a committed baseline.
``bench``      benchmark platform (:mod:`repro.bench`): ``check`` gates
               CI on out-of-tolerance regressions vs committed baselines,
               ``report`` renders trend tables + sparklines from the
               per-benchmark history, ``promote`` moves baselines
               intentionally (journaled), ``list`` shows the registry.
``index``      sharded mmap ANN retrieval tier (:mod:`repro.index`):
               ``build`` an index from an embedding store or a synthetic
               world, ``query`` top-k neighbours, ``stats`` geometry.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _parse_seeds(raw: str) -> list[int]:
    seeds = [int(part) for part in raw.split(",") if part.strip()]
    if not seeds:
        raise argparse.ArgumentTypeError("no seeds given")
    return seeds


def _positive_float(raw: str) -> float:
    """Argparse type for strictly-positive float flags.

    Timeouts, backoffs, and rates silently misbehave at zero or below
    (a 0s backoff spins, a negative timeout raises deep inside the
    serving stack) — reject them at the parser with a clear message.
    """
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {raw!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number, got {raw!r}")
    return value


def _positive_int(raw: str) -> int:
    """Argparse type for strictly-positive integer flags."""
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {raw!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {raw!r}")
    return value


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments import (
        ExperimentPipeline,
        PipelineConfig,
        average_tables,
        format_table,
        run_fig10,
        run_table2,
        run_table3,
        run_table4,
        run_table5,
        run_table6,
        run_table7,
        run_table8,
    )

    single_seed = {"2": run_table2, "3": run_table3, "5": run_table5,
                   "7": run_table7}
    multi_seed = {"4": run_table4, "6": run_table6, "8": run_table8}
    targets = (list(single_seed) + list(multi_seed) + ["fig10"]
               if args.table == "all" else [args.table])

    pipelines = [ExperimentPipeline(PipelineConfig(seed=s))
                 for s in args.seeds]
    out_dir = Path(args.out) if args.out else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)

    for target in targets:
        if target in single_seed:
            result = single_seed[target](pipelines[0])
            text = format_table(result)
        elif target in multi_seed:
            runs = [multi_seed[target](p) for p in pipelines]
            text = format_table(average_tables(runs))
        elif target == "fig10":
            text = format_table(run_fig10(pipelines[0]).as_table(),
                                precision=4)
        else:
            print(f"unknown table: {target!r}", file=sys.stderr)
            return 2
        print(text)
        print()
        if out_dir:
            (out_dir / f"table_{target}.txt").write_text(text + "\n")
    return 0


def _cmd_pretrain(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentPipeline, PipelineConfig
    from repro.models import save_ktelebert

    config = PipelineConfig(seed=args.seed,
                            stage1_steps=args.stage1_steps,
                            stage2_steps=args.stage2_steps)
    pipeline = ExperimentPipeline(config)
    model = {"stl": lambda: pipeline.ktelebert_stl,
             "pmtl": lambda: pipeline.ktelebert_pmtl,
             "imtl": lambda: pipeline.ktelebert_imtl}[args.strategy]()
    path = save_ktelebert(model, args.out)
    print(f"saved KTeleBERT ({args.strategy.upper()}) checkpoint to {path}")
    return 0


def _cmd_encode(args: argparse.Namespace) -> int:
    from repro.models import load_ktelebert

    model = load_ktelebert(args.checkpoint)
    texts = args.text or [line.strip() for line in sys.stdin
                          if line.strip()]
    if not texts:
        print("no input texts", file=sys.stderr)
        return 2
    vectors = model.encode_texts(texts)
    for text, vector in zip(texts, vectors):
        payload = {"text": text, "embedding": [round(v, 6) for v in vector]}
        print(json.dumps(payload, ensure_ascii=False))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.kg import build_tele_kg
    from repro.world import TelecomWorld

    world = TelecomWorld.generate(seed=args.seed)
    episodes = world.simulate_episodes(args.episodes)
    kg = build_tele_kg(world)
    chains = [len(e.chain) for e in episodes]
    stats = {
        "alarms": len(world.ontology.alarms),
        "kpis": len(world.ontology.kpis),
        "network_elements": world.topology.num_nodes,
        "causal_edges": world.causal_graph.num_edges,
        "kg": kg.describe(),
        "episodes": len(episodes),
        "mean_chain_length": sum(chains) / len(chains),
        "log_records": sum(len(e.records) for e in episodes),
    }
    print(json.dumps(stats, indent=2))
    return 0


def _build_task_adapters(world_seed: int) -> dict:
    """Tiny-world rca/eap/fct adapters for checkpoint-free serving.

    The load generator rebuilds the same seeded world to sample request
    payloads, so generator and server agree on node/alarm names by
    construction.
    """
    from repro.tasks.eap import EapAdapter, build_eap_dataset
    from repro.tasks.fct import FctAdapter, build_fct_dataset
    from repro.tasks.rca import RcaAdapter, build_rca_dataset
    from repro.world import TelecomWorld

    world = TelecomWorld.generate(seed=world_seed, alarms_per_theme=2,
                                  kpis_per_theme=2, topology_nodes=6)
    episodes = world.simulate_episodes(30)
    return {"rca": RcaAdapter(build_rca_dataset(world, episodes), epochs=2),
            "eap": EapAdapter(build_eap_dataset(world, episodes), epochs=2),
            "fct": FctAdapter(build_fct_dataset(world, episodes), epochs=3)}


def _build_service(args: argparse.Namespace, adapters: dict | None = None):
    """Construct the FaultAnalysisService shared by serve and serve-net."""
    from repro.serving import (
        FaultAnalysisService,
        MetricsRegistry,
        ServiceConfig,
    )
    from repro.service import RandomProvider, WordEmbeddingProvider

    if args.checkpoint:
        from repro.models import checkpoint_fingerprint, load_ktelebert
        from repro.service import KTeleBertProvider

        model = load_ktelebert(args.checkpoint)
        provider = KTeleBertProvider(model, mode="name")
        fingerprint = checkpoint_fingerprint(args.checkpoint)
    else:
        # Stub encoder: deterministic random vectors.  Keeps the request
        # loop, batching, store, and metrics exercisable (smoke tests, CI)
        # without a pretrained checkpoint.
        provider = RandomProvider(dim=args.dim, seed=0)
        fingerprint = f"random-dim{args.dim}"

    fallback = None
    if args.fallback:
        fallback = WordEmbeddingProvider(dim=provider.dim, seed=0)
    config = ServiceConfig(max_batch_size=args.max_batch_size,
                           max_wait_ms=args.max_wait_ms,
                           timeout_s=args.timeout,
                           max_retries=args.retries,
                           backoff_s=args.backoff,
                           flush_timeout_s=args.flush_timeout,
                           close_timeout_s=args.close_timeout)
    index = None
    if getattr(args, "index", None):
        from repro.index import VectorIndex

        index = VectorIndex(args.index, fingerprint=fingerprint)
    return FaultAnalysisService(provider, fallback=fallback, config=config,
                                metrics=MetricsRegistry(),
                                store_dir=args.store,
                                fingerprint=fingerprint,
                                index=index,
                                **(adapters or {}))


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving import serve_loop

    with _build_service(args) as service:
        metrics = service.metrics
        serve_loop(service, sys.stdin, sys.stdout)
        if args.stats:
            stats = service.stats()
            latency = stats["latency"]
            print(metrics.render(), file=sys.stderr)
            print(f"requests: {stats['requests']}", file=sys.stderr)
            print(f"cache hit rate: {stats['cache']['hit_rate']:.3f} "
                  f"(hits={stats['cache']['hits']} "
                  f"misses={stats['cache']['misses']})", file=sys.stderr)
            print(f"latency p50: {latency['p50'] * 1000:.3f}ms  "
                  f"p95: {latency['p95'] * 1000:.3f}ms  "
                  f"p99: {latency['p99'] * 1000:.3f}ms", file=sys.stderr)
    return 0


def _cmd_serve_net(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.netserve import (
        AdmissionConfig,
        AdmissionController,
        NetServeConfig,
        TeleServer,
        TenantRegistry,
    )

    if args.tenants:
        tenants = TenantRegistry.from_file(args.tenants)
    else:
        tenants = TenantRegistry.single(
            args.api_key, rate_per_s=args.rate, burst=args.burst,
            max_concurrency=args.max_concurrency)
    adapters = _build_task_adapters(args.world_seed) if args.adapters \
        else None

    stop = threading.Event()

    def _on_signal(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    with _build_service(args, adapters=adapters) as service:
        admission = AdmissionController(
            AdmissionConfig(max_inflight=args.max_inflight,
                            max_queue_depth=args.max_queue_depth,
                            min_headroom_s=args.min_headroom,
                            retry_after_s=args.retry_after),
            metrics=service.metrics,
            queue_depth_fn=lambda: service.batcher.stats()["pending"])
        config = NetServeConfig(host=args.host, port=args.port,
                                default_deadline_s=args.default_deadline,
                                close_timeout_s=args.close_timeout)
        with TeleServer(service, tenants, admission=admission,
                        config=config) as server:
            host, port = server.start()
            # Parsed by tooling (smoke test, loadgen wrappers) to
            # discover an ephemeral --port 0 binding; keep the shape.
            print(f"netserve listening on {host}:{port}", file=sys.stderr,
                  flush=True)
            while not stop.wait(0.5):
                pass
            print("netserve draining", file=sys.stderr, flush=True)
            drained = server.drain(args.close_timeout)
            if not drained:
                print(f"netserve drain timed out after "
                      f"{args.close_timeout:g}s", file=sys.stderr,
                      flush=True)
        if args.stats:
            print(service.metrics.render(), file=sys.stderr)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.loadgen import (
        LoadgenConfig,
        parse_mix,
        render_curve,
        run_load,
        sweep,
    )

    config = LoadgenConfig(
        host=args.host, port=args.port,
        api_keys=tuple(args.api_key or ["dev-key"]),
        mode=args.mode, duration_s=args.duration,
        rate_per_s=args.rate, workers=args.workers,
        concurrency=args.concurrency, mix=parse_mix(args.mix),
        bursty=args.bursty, burst_factor=args.burst_factor,
        seed=args.seed, world_seed=args.world_seed,
        timeout_s=args.timeout,
        deadline_ms=args.deadline_ms)
    if args.sweep:
        rates = [float(r) for r in args.sweep.split(",") if r.strip()]
        if not rates:
            print("--sweep needs a comma-separated rate list",
                  file=sys.stderr)
            return 2
        reports = sweep(config, rates)
        print(render_curve(reports))
        protocol_errors = sum(r.counts["protocol_error"] for r in reports)
        total = sum(r.total for r in reports)
    else:
        report = run_load(config)
        print(report.render())
        protocol_errors = report.counts["protocol_error"]
        total = report.total
    if total == 0:
        print("loadgen: no requests completed", file=sys.stderr)
        return 1
    if protocol_errors:
        print(f"loadgen: {protocol_errors} protocol error(s)",
              file=sys.stderr)
        return 1
    return 0


#: Model/data geometry presets for ``repro train``; kept deliberately coarse
#: so a run directory pins its build with a handful of JSON scalars.
_TRAIN_SIZES = {
    "smoke": {"alarms_per_theme": 2, "kpis_per_theme": 2,
              "topology_nodes": 8, "episodes": 4, "stage1_steps": 2,
              "d_model": 16, "num_layers": 1, "num_heads": 2, "d_ff": 32,
              "max_len": 24, "ke_negatives": 3},
    "small": {"alarms_per_theme": 3, "kpis_per_theme": 3,
              "topology_nodes": 12, "episodes": 8, "stage1_steps": 30,
              "d_model": 32, "num_layers": 2, "num_heads": 4, "d_ff": 64,
              "max_len": 32, "ke_negatives": 5},
    "full": {"alarms_per_theme": 4, "kpis_per_theme": 4,
             "topology_nodes": 20, "episodes": 16, "stage1_steps": 300,
             "d_model": 64, "num_layers": 2, "num_heads": 4, "d_ff": 128,
             "max_len": 48, "ke_negatives": 10},
}

#: The build-identity keys persisted to ``<run-dir>/config.json``.  Resuming
#: reuses the stored values so the rebuilt model/data match the snapshot.
_TRAIN_IDENTITY = ("seed", "size", "strategy", "steps", "batch_size",
                   "ke_batch_size", "learning_rate")


def _build_train_retrainer(config: dict):
    """Deterministically build a stage-2 retrainer from a config dict."""
    from repro.corpus import build_tele_corpus
    from repro.kg import build_tele_kg
    from repro.models import KTeleBert, KTeleBertConfig, TeleBertTrainer
    from repro.training import build_strategy
    from repro.training.retrainer import KTeleBertRetrainer
    from repro.training.stage2 import build_stage2_data
    from repro.world import TelecomWorld

    seed = config["seed"]
    size = _TRAIN_SIZES[config["size"]]
    world = TelecomWorld.generate(
        seed=seed, alarms_per_theme=size["alarms_per_theme"],
        kpis_per_theme=size["kpis_per_theme"],
        topology_nodes=size["topology_nodes"])
    corpus = build_tele_corpus(world, seed=seed)
    kg = build_tele_kg(world)
    episodes = world.simulate_episodes(size["episodes"])
    trainer = TeleBertTrainer(corpus.sentences, seed=seed,
                              d_model=size["d_model"],
                              num_layers=size["num_layers"],
                              num_heads=size["num_heads"], d_ff=size["d_ff"],
                              max_len=size["max_len"])
    trainer.train(steps=size["stage1_steps"])
    data = build_stage2_data(corpus, episodes, kg, seed=seed,
                             ke_negatives=size["ke_negatives"])
    model = KTeleBert.from_telebert(
        trainer,
        KTeleBertConfig(anenc_layers=1, anenc_meta=2, lora_rank=2,
                        ke_negatives=size["ke_negatives"]),
        tag_names=data.tag_names, normalizer=data.normalizer,
        extra_vocabulary=data.vocabulary(), seed=seed)
    strategy = build_strategy(config["strategy"], config["steps"])
    return KTeleBertRetrainer(model, data, strategy, seed=seed,
                              learning_rate=config["learning_rate"],
                              batch_size=config["batch_size"],
                              ke_batch_size=config["ke_batch_size"])


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.models import atomic_write_bytes
    from repro.training import RuntimeConfig, TrainingRuntime

    run_dir = Path(args.run_dir)
    config = {"seed": args.seed, "size": args.size,
              "strategy": args.strategy, "steps": args.steps,
              "batch_size": args.batch_size,
              "ke_batch_size": args.ke_batch_size,
              "learning_rate": args.learning_rate}
    config_path = run_dir / "config.json"
    if config_path.exists():
        stored = json.loads(config_path.read_text())
        changed = [k for k in _TRAIN_IDENTITY if stored.get(k) != config[k]]
        if changed:
            print(f"note: reusing stored run config for {changed} "
                  f"(a run directory pins its build identity)",
                  file=sys.stderr)
        config = {k: stored[k] for k in _TRAIN_IDENTITY}
    else:
        run_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(config_path,
                           json.dumps(config, sort_keys=True).encode())

    print(f"building stage-2 pipeline (size={config['size']}, "
          f"seed={config['seed']}, strategy={config['strategy']}, "
          f"steps={config['steps']})", file=sys.stderr)
    retrainer = _build_train_retrainer(config)
    runtime = TrainingRuntime(retrainer, RuntimeConfig(
        run_dir=run_dir, workers=args.workers,
        checkpoint_every_steps=args.checkpoint_every,
        checkpoint_every_s=args.checkpoint_every_s,
        keep_last=args.keep_last,
        straggler_timeout_s=args.straggler_timeout,
        pool_retry_steps=args.pool_retry_steps,
        pool_max_failures=args.pool_max_failures))

    if runtime.journal.is_interrupted():
        print("journal shows an interrupted run; attempting resume",
              file=sys.stderr)
    resumed = runtime.resume_if_available()
    if resumed is not None:
        print(f"resumed from snapshot at step {resumed}", file=sys.stderr)

    log = runtime.run(max_steps=args.stop_after)
    step = retrainer.step_index
    total = retrainer.strategy.total_steps
    if runtime.interrupted:
        print(f"interrupted at step {step}/{total}; checkpoint written — "
              f"re-run the same command to resume", file=sys.stderr)
        return 130
    if step < total:
        # runtime.run() already checkpointed the max_steps exit.
        print(f"paused at step {step}/{total} (--stop-after); re-run to "
              f"resume", file=sys.stderr)
        return 0
    if args.export:
        from repro.models import save_ktelebert
        path = save_ktelebert(retrainer.model, args.export)
        print(f"exported KTeleBERT checkpoint to {path}", file=sys.stderr)
    final = log.total[-1] if log.total else float("nan")
    print(f"completed {step}/{total} steps; final loss {final:.4f}; "
          f"journal at {runtime.journal.path}", file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import lint_main

    return lint_main(args.lint_args)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import bench_main

    return bench_main(args.bench_args)


def _cmd_index(args: argparse.Namespace) -> int:
    from repro.index import index_main

    return index_main(args.index_args)


def _add_serve_args(parser: argparse.ArgumentParser) -> None:
    """Service flags shared by ``serve`` (stdin) and ``serve-net`` (TCP)."""
    parser.add_argument("--checkpoint", default=None,
                        help="KTeleBERT checkpoint directory; omit for the "
                             "deterministic stub encoder")
    parser.add_argument("--dim", type=_positive_int, default=32,
                        help="embedding dim of the stub encoder")
    parser.add_argument("--store", default=None,
                        help="directory for the persistent embedding store")
    parser.add_argument("--index", default=None,
                        help="directory for the ANN vector index; enables "
                             "the knn/retrieve op (built or synced from "
                             "the store/provider, keyed by the checkpoint "
                             "fingerprint)")
    parser.add_argument("--max-batch-size", type=_positive_int, default=32)
    parser.add_argument("--max-wait-ms", type=_positive_float, default=5.0)
    parser.add_argument("--timeout", type=_positive_float, default=30.0,
                        help="per-attempt deadline in seconds (the total "
                             "request budget is timeout x (retries + 1) "
                             "plus backoff)")
    parser.add_argument("--retries", type=int, default=2)
    parser.add_argument("--backoff", type=_positive_float, default=0.05,
                        help="first-retry backoff in seconds; doubles per "
                             "attempt")
    parser.add_argument("--flush-timeout", type=_positive_float,
                        default=None,
                        help="watchdog bound on one encoder flush inside "
                             "the micro-batcher (seconds; defaults to "
                             "--timeout)")
    parser.add_argument("--close-timeout", type=_positive_float,
                        default=5.0,
                        help="upper bound on shutdown: a hung encoder "
                             "cannot hold process exit hostage longer "
                             "than this")
    parser.add_argument("--fallback", action="store_true",
                        help="degrade to a word-embedding provider when "
                             "the primary is exhausted")
    parser.add_argument("--stats", action="store_true",
                        help="dump the metrics registry to stderr at exit")


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Tele-Knowledge Pre-training for "
                    "Fault Analysis' (ICDE 2023)")
    sub = parser.add_subparsers(dest="command", required=True)

    reproduce = sub.add_parser("reproduce",
                               help="regenerate paper tables/figures")
    reproduce.add_argument("--table", default="all",
                           help="2,3,4,5,6,7,8, fig10, or all")
    reproduce.add_argument("--seeds", type=_parse_seeds, default=[0],
                           help="comma-separated seeds for result tables")
    reproduce.add_argument("--out", default=None,
                           help="directory to save rendered tables")
    reproduce.set_defaults(func=_cmd_reproduce)

    pretrain = sub.add_parser("pretrain",
                              help="run both stages, save a checkpoint")
    pretrain.add_argument("--out", required=True)
    pretrain.add_argument("--seed", type=int, default=0)
    pretrain.add_argument("--strategy", choices=("stl", "pmtl", "imtl"),
                          default="pmtl")
    pretrain.add_argument("--stage1-steps", type=int, default=300)
    pretrain.add_argument("--stage2-steps", type=int, default=300)
    pretrain.set_defaults(func=_cmd_pretrain)

    encode = sub.add_parser("encode",
                            help="service embeddings from a checkpoint")
    encode.add_argument("--checkpoint", required=True)
    encode.add_argument("--text", action="append",
                        help="repeatable; reads stdin when omitted")
    encode.set_defaults(func=_cmd_encode)

    simulate = sub.add_parser("simulate",
                              help="generate a world and print statistics")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--episodes", type=int, default=50)
    simulate.set_defaults(func=_cmd_simulate)

    serve = sub.add_parser("serve",
                           help="JSON-lines inference loop over stdin")
    _add_serve_args(serve)
    serve.set_defaults(func=_cmd_serve)

    serve_net = sub.add_parser(
        "serve-net",
        help="TCP socket frontend with tenant auth and admission control")
    _add_serve_args(serve_net)
    serve_net.add_argument("--host", default="127.0.0.1")
    serve_net.add_argument("--port", type=int, default=0,
                           help="0 binds an ephemeral port; the bound "
                                "address is printed to stderr as "
                                "'netserve listening on HOST:PORT'")
    serve_net.add_argument("--tenants", default=None,
                           help="JSON tenant config file "
                                "({'tenants': [...]}); omit for a single "
                                "tenant built from --api-key/--rate/"
                                "--burst/--max-concurrency")
    serve_net.add_argument("--api-key", default="dev-key",
                           help="single-tenant API key (without --tenants)")
    serve_net.add_argument("--rate", type=float, default=0.0,
                           help="single-tenant sustained requests/s "
                                "(0 = unlimited)")
    serve_net.add_argument("--burst", type=_positive_int, default=1,
                           help="single-tenant token-bucket burst size")
    serve_net.add_argument("--max-concurrency", type=int, default=0,
                           help="single-tenant concurrent-request quota "
                                "(0 = unlimited)")
    serve_net.add_argument("--max-inflight", type=_positive_int,
                           default=64,
                           help="admission: total requests executing at "
                                "once")
    serve_net.add_argument("--max-queue-depth", type=_positive_int,
                           default=256,
                           help="admission: reject when this many names "
                                "are queued behind the batcher")
    serve_net.add_argument("--min-headroom", type=float, default=0.01,
                           help="admission: reject requests with less "
                                "deadline headroom than this (seconds)")
    serve_net.add_argument("--retry-after", type=_positive_float,
                           default=0.1,
                           help="retry_after_s hint on non-rate-limit "
                                "rejections (seconds)")
    serve_net.add_argument("--default-deadline", type=_positive_float,
                           default=30.0,
                           help="budget for requests without deadline_ms "
                                "(seconds)")
    serve_net.add_argument("--adapters", action="store_true",
                           help="fit tiny-world rca/eap/fct adapters so "
                                "task ops answer without a checkpoint")
    serve_net.add_argument("--world-seed", type=int, default=11,
                           help="seed for --adapters (match loadgen's "
                                "--world-seed)")
    serve_net.set_defaults(func=_cmd_serve_net)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive open/closed-loop traffic at a netserve endpoint")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=_positive_int, required=True)
    loadgen.add_argument("--api-key", action="append", default=None,
                         help="repeatable; one tenant per key "
                              "(default dev-key)")
    loadgen.add_argument("--mode", choices=("open", "closed"),
                         default="open")
    loadgen.add_argument("--duration", type=_positive_float, default=5.0,
                         help="run window in seconds")
    loadgen.add_argument("--rate", type=_positive_float, default=50.0,
                         help="open-loop offered requests/s")
    loadgen.add_argument("--workers", type=_positive_int, default=4,
                         help="open-loop sender threads")
    loadgen.add_argument("--concurrency", type=_positive_int, default=4,
                         help="closed-loop concurrent workers")
    loadgen.add_argument("--mix", default="embed=1",
                         help="op mix, e.g. 'embed=8,fct=2' over "
                              "embed/rca/eap/fct")
    loadgen.add_argument("--bursty", action="store_true",
                         help="half-second on/off arrival windows")
    loadgen.add_argument("--burst-factor", type=_positive_float,
                         default=4.0,
                         help="on-window rate multiplier with --bursty")
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--world-seed", type=int, default=11,
                         help="world seed for rca/eap/fct payloads "
                              "(match serve-net --world-seed)")
    loadgen.add_argument("--timeout", type=_positive_float, default=10.0,
                         help="client-side socket timeout per request")
    loadgen.add_argument("--deadline-ms", type=_positive_float,
                         default=None,
                         help="per-request deadline_ms sent to the server")
    loadgen.add_argument("--sweep", default=None,
                         help="comma-separated offered rates; prints the "
                              "latency-vs-load curve instead of one run")
    loadgen.set_defaults(func=_cmd_loadgen)

    train = sub.add_parser(
        "train",
        help="stage-2 re-training under the fault-tolerant runtime")
    train.add_argument("--run-dir", required=True,
                       help="directory for snapshots, journal, and config")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--size", choices=sorted(_TRAIN_SIZES),
                       default="small",
                       help="model/data geometry preset")
    train.add_argument("--strategy", choices=("stl", "pmtl", "imtl"),
                       default="pmtl")
    train.add_argument("--steps", type=int, default=60,
                       help="total stage-2 steps in the schedule")
    train.add_argument("--batch-size", type=int, default=8)
    train.add_argument("--ke-batch-size", type=int, default=4)
    train.add_argument("--learning-rate", type=float, default=1e-3)
    train.add_argument("--workers", type=int, default=1,
                       help="gradient worker processes (1 = serial)")
    train.add_argument("--checkpoint-every", type=int, default=25,
                       help="snapshot cadence in steps")
    train.add_argument("--checkpoint-every-s", type=float, default=None,
                       help="additional snapshot cadence in seconds")
    train.add_argument("--keep-last", type=int, default=3,
                       help="snapshots retained besides the best-loss one")
    train.add_argument("--straggler-timeout", type=float, default=120.0,
                       help="seconds to wait for a gradient worker")
    train.add_argument("--pool-retry-steps", type=int, default=50,
                       help="serial steps after a pool failure before "
                            "rebuilding the worker pool (0 = never retry)")
    train.add_argument("--pool-max-failures", type=int, default=3,
                       help="consecutive pool failures before parallelism "
                            "is disabled for the rest of the run")
    train.add_argument("--stop-after", type=int, default=None,
                       help="pause (with checkpoint) after N steps; used by "
                            "the train-smoke interrupt/resume cycle")
    train.add_argument("--export", default=None,
                       help="save a serving checkpoint here on completion")
    train.set_defaults(func=_cmd_train)

    lint = sub.add_parser(
        "lint",
        help="repo-aware static analysis over src/repro (repro.lint)")
    lint.add_argument("lint_args", nargs=argparse.REMAINDER,
                      help="forwarded to the lint driver — e.g. "
                           "--baseline tools/lint_baseline.json, "
                           "--format json, --list-rules")
    lint.set_defaults(func=_cmd_lint)

    bench = sub.add_parser(
        "bench",
        help="benchmark platform: regression gate, trend reports, "
             "baseline promotion (repro.bench)")
    bench.add_argument("bench_args", nargs=argparse.REMAINDER,
                       help="forwarded to the bench driver — "
                            "check | report | promote | list, e.g. "
                            "'check --names train_step'")
    bench.set_defaults(func=_cmd_bench)

    index = sub.add_parser(
        "index",
        help="sharded mmap ANN retrieval tier: build | query | stats "
             "(repro.index)")
    index.add_argument("index_args", nargs=argparse.REMAINDER,
                       help="forwarded to the index driver — "
                            "build | query | stats, e.g. "
                            "'build --dir idx --synthetic 10000'")
    index.set_defaults(func=_cmd_index)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["lint"]:
        # Forwarded verbatim: argparse.REMAINDER refuses option-like
        # leading arguments, and the lint driver owns its own --help.
        from repro.lint import lint_main

        return lint_main(argv[1:])
    if argv[:1] == ["bench"]:
        # Same passthrough discipline as lint: the bench driver owns its
        # own subcommands and --help.
        from repro.bench import bench_main

        return bench_main(argv[1:])
    if argv[:1] == ["index"]:
        from repro.index import index_main

        return index_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
