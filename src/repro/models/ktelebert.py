"""KTeleBERT: the stage-2 knowledge-enhanced model (Sec. IV).

Bundles the TeleBERT encoder with

* prompt + mined tele special tokens added to the vocabulary (Sec. IV-A),
* the adaptive numeric encoder injected at ``[NUM]`` positions (Sec. IV-B)
  together with NDec / TGC / `L_num`,
* 40% dynamic whole-word masking over prompt-wrapped corpora (Sec. IV-C),
* the text-enhanced KE objective on serialized triples (Sec. IV-D).

Inputs are *rows*: :class:`TextRow` for plain (causal/alarm) sentences,
:class:`NumericRow` for a sentence carrying one numeric value under a tag
name, and :class:`TripleRow` for a KG fact with its sampled corruptions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.bert import BertConfig, BertForMaskedLM
from repro.models.ke import KnowledgeEmbeddingObjective
from repro.models.telebert import TeleBertTrainer
from repro.numeric.anenc import AdaptiveNumericEncoder
from repro.numeric.heads import NumericDecoder, TagClassifier
from repro.numeric.losses import NumericLossComputer, NumericLossOutput
from repro.numeric.normalization import TagNormalizer
from repro.prompts.templates import (
    ALL_PROMPT_TOKENS,
    ENT,
    EXTENSION_PROMPT_TOKENS,
    NUM,
    REL,
)
from repro.tensor import functional as F
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor
from repro.tokenization.tokenizer import WordTokenizer
from repro.training.masking import DynamicMasker


@dataclass(frozen=True)
class TextRow:
    """A plain prompt-wrapped sentence (causal sentence, alarm log, triple)."""

    text: str


@dataclass(frozen=True)
class NumericRow:
    """A sentence carrying one numeric value under ``tag`` (KPI / attribute)."""

    text: str
    tag: str
    value: float


@dataclass(frozen=True)
class TripleRow:
    """A KG fact by surfaces, with corrupted (head, tail) surface pairs."""

    head: str
    relation: str
    tail: str
    negatives: tuple[tuple[str, str], ...]


@dataclass
class KTeleBertConfig:
    """Stage-2 hyper-parameters (paper values in comments)."""

    use_anenc: bool = True            # ablation switch ("w/o ANEnc" rows)
    use_tag_classifier: bool = True   # L_cls is optional (Sec. IV-B2)
    use_contrastive: bool = True      # L_nc ablation (Fig. 10)
    anenc_layers: int = 2             # L
    anenc_meta: int = 4               # N
    lora_rank: int = 4                # r
    lora_alpha: float = 1.0           # α
    masking_rate: float = 0.4         # 40% (Sec. IV-C1)
    ke_gamma: float = 1.0             # γ = 1.0
    ke_negatives: int = 10            # 10 negatives per entity
    contrastive_temperature: float = 0.05   # τ = 0.05
    orthogonal_weight: float = 1e-4         # λ = 1e-4
    numeric_weight: float = 1.0       # weight of L_num inside the step loss


class KTeleBert:
    """The knowledge-enhanced tele PLM with its numeric and KE machinery."""

    def __init__(self, tokenizer: WordTokenizer, bert_config: BertConfig,
                 config: KTeleBertConfig, tag_names: list[str],
                 normalizer: TagNormalizer, rng: np.random.Generator,
                 mlm_model: BertForMaskedLM | None = None):
        self.tokenizer = tokenizer
        self.config = config
        self.rng = rng
        self.mlm_model = mlm_model or BertForMaskedLM(bert_config, rng)
        self.bert_config = self.mlm_model.config
        self.normalizer = normalizer
        self.tag_names = list(tag_names)
        self.tag_index = {t: i for i, t in enumerate(self.tag_names)}

        d = self.bert_config.d_model
        self.anenc = AdaptiveNumericEncoder(
            d, num_layers=config.anenc_layers, num_meta=config.anenc_meta,
            lora_rank=config.lora_rank, lora_alpha=config.lora_alpha, rng=rng)
        self.ndec = NumericDecoder(d, rng)
        self.tgc = (TagClassifier(d, max(len(self.tag_names), 2), rng)
                    if config.use_tag_classifier else None)
        self.numeric_loss = NumericLossComputer(
            use_tag_classifier=config.use_tag_classifier,
            contrastive_temperature=config.contrastive_temperature,
            orthogonal_weight=config.orthogonal_weight,
            use_contrastive=config.use_contrastive)
        self.ke_objective = KnowledgeEmbeddingObjective(gamma=config.ke_gamma)
        self._num_token_id = tokenizer.vocab.token_to_id(NUM)
        self.last_batch_tokens = 0  # set by _prepare; journal throughput

    # ------------------------------------------------------------------
    # Construction from stage 1
    # ------------------------------------------------------------------
    @classmethod
    def from_telebert(cls, trainer: TeleBertTrainer, config: KTeleBertConfig,
                      tag_names: list[str], normalizer: TagNormalizer,
                      tele_special_tokens: list[str] | None = None,
                      extra_vocabulary: list[str] | None = None,
                      seed: int = 0) -> "KTeleBert":
        """Initialise stage 2 from a stage-1 TeleBERT.

        Adds the prompt tokens and mined tele tokens as vocabulary specials
        with fresh embeddings (Sec. IV-A3), copying all pre-trained weights.
        ``extra_vocabulary`` registers ordinary stage-2 corpus words unseen in
        stage 1 (our tokenizer is word-level, not wordpiece, so coverage must
        be grown explicitly).
        """
        from dataclasses import replace as dc_replace

        rng = np.random.default_rng(seed + 31)
        tokenizer = trainer.tokenizer
        new_tokens = (list(ALL_PROMPT_TOKENS) + list(EXTENSION_PROMPT_TOKENS)
                      + list(tele_special_tokens or []))
        tokenizer.vocab.add_special_tokens(new_tokens)
        tokenizer.vocab.add_tokens(extra_vocabulary or [])

        # Fresh config copy sized to the *stage-1* vocabulary, so repeated
        # calls (one per strategy variant) neither share nor corrupt state.
        stage1_config = dc_replace(
            trainer.config,
            vocab_size=trainer.encoder.token_embedding.num_embeddings)
        mlm_model = BertForMaskedLM(stage1_config, rng)
        # Discriminator weights -> the encoder of the stage-2 model.
        mlm_model.bert.load_state_dict(trainer.encoder.state_dict())
        mlm_model.grow_vocab(
            len(tokenizer.vocab) - stage1_config.vocab_size, rng)
        return cls(tokenizer=tokenizer, bert_config=mlm_model.config,
                   config=config, tag_names=tag_names, normalizer=normalizer,
                   rng=rng, mlm_model=mlm_model)

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    def parameters(self):
        params = self.mlm_model.parameters() + self.anenc.parameters() + \
            self.ndec.parameters() + self.numeric_loss.parameters()
        if self.tgc is not None:
            params += self.tgc.parameters()
        return params

    def train(self):
        self.mlm_model.train()
        self.anenc.train()
        self.ndec.train()
        if self.tgc is not None:
            self.tgc.train()

    def eval(self):
        self.mlm_model.eval()
        self.anenc.eval()
        self.ndec.eval()
        if self.tgc is not None:
            self.tgc.eval()

    # ------------------------------------------------------------------
    # Batch preparation
    # ------------------------------------------------------------------
    def _tag_embeddings(self, tags: list[str]) -> Tensor:
        """Mean-pooled token embeddings of tag names (Sec. IV-B: ``t``)."""
        ids, mask = self.tokenizer.encode_batch(tags)
        embedded = self.mlm_model.bert.token_embedding(ids)
        return F.masked_mean(embedded, mask, axis=1)

    def _prepare(self, rows: list) -> dict:
        """Tokenize rows; locate ``[NUM]`` slots for numeric rows."""
        texts = [r.text for r in rows]
        ids, mask, tokens = self.tokenizer.encode_batch_with_tokens(texts)
        # Cheap throughput accounting for the training runtime's journal;
        # counting here avoids a second tokenization pass per step.
        self.last_batch_tokens = int(mask.sum())
        numeric_rows: list[int] = []
        numeric_positions: list[tuple[int, int]] = []
        values: list[float] = []
        tags: list[str] = []
        excluded: list[set[int]] = [set() for _ in rows]
        for i, row in enumerate(rows):
            if not isinstance(row, NumericRow):
                continue
            row_tokens = tokens[i]
            if NUM not in row_tokens:
                continue  # [NUM] truncated away: treat as plain text
            position = row_tokens.index(NUM)
            numeric_rows.append(i)
            numeric_positions.append((i, position))
            values.append(self.normalizer.transform_one(row.tag, row.value))
            tags.append(row.tag)
            excluded[i].add(position)
            if position + 1 < len(row_tokens):
                excluded[i].add(position + 1)  # the literal value token
        return {
            "ids": ids, "mask": mask, "tokens": tokens,
            "numeric_rows": numeric_rows,
            "numeric_positions": np.array(numeric_positions, dtype=np.int64)
            if numeric_positions else np.zeros((0, 2), dtype=np.int64),
            "values": np.array(values), "tags": tags, "excluded": excluded,
        }

    def _numeric_overrides(self, prep: dict):
        """ANEnc embeddings for the batch's ``[NUM]`` slots (or None)."""
        if not self.config.use_anenc or not len(prep["numeric_positions"]):
            return None, None
        tag_emb = self._tag_embeddings(prep["tags"])
        h = self.anenc(prep["values"], tag_emb)
        return (prep["numeric_positions"], h), h

    # ------------------------------------------------------------------
    # Objectives
    # ------------------------------------------------------------------
    def masked_lm_loss(self, rows: list, masker: DynamicMasker
                       ) -> tuple[Tensor, NumericLossOutput | None]:
        """`L_mask` (+ `L_num` when numeric rows are present and ANEnc is on)."""
        prep = self._prepare(rows)
        masked = masker.mask_batch(prep["ids"], prep["mask"],
                                   tokens=prep["tokens"],
                                   excluded_positions=prep["excluded"])
        overrides, h = self._numeric_overrides(prep)
        hidden = self.mlm_model.bert(masked.ids, attention_mask=prep["mask"],
                                     embedding_overrides=overrides)
        logits = self.mlm_model.mlm_head(hidden)
        loss = F.cross_entropy(logits, masked.labels,
                               ignore_index=self.mlm_model.IGNORE_INDEX)

        numeric_output: NumericLossOutput | None = None
        if h is not None:
            positions = prep["numeric_positions"]
            final_at_num = hidden[positions[:, 0], positions[:, 1]]
            decoded = self.ndec(final_at_num)
            tag_ids = np.array([self.tag_index.get(t, 0) for t in prep["tags"]])
            numeric_output = self.numeric_loss(
                self.anenc, h, decoded, prep["values"],
                tag_classifier=self.tgc,
                tag_ids=tag_ids if self.tgc is not None else None)
            loss = loss + numeric_output.total * self.config.numeric_weight
        return loss, numeric_output

    def _cls(self, texts: list[str], overrides=None) -> Tensor:
        ids, mask = self.tokenizer.encode_batch(texts)
        return self.mlm_model.bert.cls_embeddings(
            ids, mask, embedding_overrides=overrides)

    def ke_loss(self, rows: list[TripleRow]) -> Tensor:
        """`L_ke` (Eq. 10) over a batch of triples with their corruptions."""
        if not rows:
            raise ValueError("empty triple batch")
        n = len(rows[0].negatives)
        if any(len(r.negatives) != n for r in rows) or n == 0:
            raise ValueError("every triple needs the same, nonzero negative count")
        head = self._cls([f"{ENT} {r.head}" for r in rows])
        tail = self._cls([f"{ENT} {r.tail}" for r in rows])
        relation = self._cls([f"{REL} {r.relation}" for r in rows])
        d = head.shape[-1]
        neg_heads = self._cls([f"{ENT} {h}" for r in rows
                               for h, _ in r.negatives]).reshape(len(rows), n, d)
        neg_tails = self._cls([f"{ENT} {t}" for r in rows
                               for _, t in r.negatives]).reshape(len(rows), n, d)
        neg_rel = relation.expand_dims(1)  # broadcast over corruptions
        return self.ke_objective.loss(head, relation, tail,
                                      neg_heads, neg_rel, neg_tails)

    # ------------------------------------------------------------------
    # Service delivery (Sec. V-A3)
    # ------------------------------------------------------------------
    def encode(self, rows: list) -> np.ndarray:
        """Deterministic service embeddings ([CLS] outputs) for mixed rows."""
        self.eval()
        prep = self._prepare(rows)
        with no_grad():
            overrides, _ = self._numeric_overrides(prep)
            out = self.mlm_model.bert.cls_embeddings(
                prep["ids"], prep["mask"],
                embedding_overrides=overrides).data.copy()
        self.train()
        return out

    def encode_texts(self, texts: list[str]) -> np.ndarray:
        """Service embeddings for plain strings."""
        return self.encode([TextRow(t) for t in texts])
