"""Text-enhanced knowledge-embedding objective (Sec. IV-D, Eqs. 10–11).

Following KEPLER, entities and relations are wrapped into prompt sentences and
encoded by the language model itself; the TransE distance
``d_r(h, t) = ||e_h + e_r − e_t||`` scores triples, trained with the
margin-sigmoid negative-sampling loss of Eq. 10 (negatives corrupt the head
with the tail fixed, and vice versa).
"""

from __future__ import annotations

import numpy as np

from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


def transe_distance(head: Tensor, relation: Tensor, tail: Tensor) -> Tensor:
    """``||e_h + e_r − e_t||₂`` row-wise (Eq. 11)."""
    diff = head + relation - tail
    return F.l2_norm(diff, axis=-1, eps=1e-12)


class KnowledgeEmbeddingObjective:
    """Computes ``L_ke`` from already-encoded embeddings.

    Parameters
    ----------
    gamma:
        Margin γ (the paper uses 1.0).
    adversarial_temperature:
        When > 0, negative samples are weighted by the softmax of their
        scores (RotatE-style self-adversarial weighting); 0 gives the uniform
        ``p = 1/n`` weighting.
    """

    def __init__(self, gamma: float = 1.0,
                 adversarial_temperature: float = 0.0):
        self.gamma = gamma
        self.adversarial_temperature = adversarial_temperature

    def loss(self, head: Tensor, relation: Tensor, tail: Tensor,
             neg_heads: Tensor, neg_relations: Tensor,
             neg_tails: Tensor) -> Tensor:
        """Eq. 10 for one batch.

        Positive embeddings are (B, d); negative embeddings are (B, n, d)
        with ``n`` corruptions per positive.
        """
        positive_distance = transe_distance(head, relation, tail)     # (B,)
        positive_term = -(F.sigmoid(
            Tensor(np.full(positive_distance.shape, self.gamma))
            - positive_distance) + 1e-12).log()

        negative_distance = transe_distance(neg_heads, neg_relations,
                                            neg_tails)                # (B, n)
        negative_scores = F.sigmoid(
            negative_distance - self.gamma)                           # (B, n)
        log_negative = -(negative_scores + 1e-12).log()
        if self.adversarial_temperature > 0:
            weights = F.softmax(
                Tensor(-negative_distance.data / self.adversarial_temperature),
                axis=-1)
            negative_term = (weights * log_negative).sum(axis=-1)
        else:
            negative_term = log_negative.mean(axis=-1)

        return (positive_term + negative_term).mean()

    def score_triples(self, head: Tensor, relation: Tensor,
                      tail: Tensor) -> np.ndarray:
        """Distances (lower = more plausible); used for ranking evaluation."""
        return transe_distance(head, relation, tail).data
