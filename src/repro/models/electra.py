"""ELECTRA pre-training (Sec. III-B).

A small MLM *generator* reconstructs masked tokens; its sampled predictions
corrupt the input, and the main model — the *discriminator*, which becomes
TeleBERT — is trained with replaced-token detection (RTD): classify every
position as original vs replaced.  The discriminator objective is weighted by
``rtd_weight`` (ELECTRA uses 50; with our tiny models a smaller weight keeps
the two losses comparable).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

import numpy as np

from repro.models.bert import BertConfig, BertEncoder, BertForMaskedLM
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor
from repro.training.masking import DynamicMasker, IGNORE_INDEX


@dataclass
class ElectraStepOutput:
    """Losses and diagnostics of one ELECTRA step."""

    total: Tensor
    generator_loss: float
    discriminator_loss: float
    replaced_fraction: float


class RtdHead(Module):
    """Per-position binary classifier: was this token replaced?"""

    def __init__(self, d_model: int, rng: np.random.Generator):
        super().__init__()
        self.transform = Linear(d_model, d_model, rng)
        self.output = Linear(d_model, 1, rng)

    def forward(self, hidden: Tensor) -> Tensor:
        """(B, T, D) → (B, T) logits."""
        logits = self.output(F.gelu(self.transform(hidden)))
        return logits.reshape(hidden.shape[0], hidden.shape[1])


class ElectraPretrainer(Module):
    """Generator + discriminator RTD pre-training harness."""

    def __init__(self, config: BertConfig, rng: np.random.Generator,
                 generator_shrink: int = 2, rtd_weight: float = 2.0):
        super().__init__()
        self.config = config
        gen_config = dc_replace(
            config,
            d_model=max(config.d_model // generator_shrink, config.num_heads),
            d_ff=max(config.d_ff // generator_shrink, 8))
        self.generator = BertForMaskedLM(gen_config, rng)
        self.discriminator = BertEncoder(config, rng)
        self.rtd_head = RtdHead(config.d_model, rng)
        self.rtd_weight = rtd_weight
        self.rng = rng

    # ------------------------------------------------------------------
    def _sample_replacements(self, logits: Tensor,
                             masked_positions: np.ndarray) -> np.ndarray:
        """Sample generator tokens at masked positions (no gradient)."""
        probs = F.softmax(logits.detach(), axis=-1).data
        rows, cols = np.nonzero(masked_positions)
        sampled = np.zeros(len(rows), dtype=np.int64)
        for i, (r, c) in enumerate(zip(rows, cols)):
            sampled[i] = self.rng.choice(probs.shape[-1], p=probs[r, c])
        return sampled

    def step(self, ids: np.ndarray, attention_mask: np.ndarray,
             masker: DynamicMasker,
             tokens: list[list[str]] | None = None) -> ElectraStepOutput:
        """One ELECTRA forward: returns combined loss for backprop."""
        masked = masker.mask_batch(ids, attention_mask, tokens=tokens)
        gen_logits = self.generator(masked.ids, attention_mask=attention_mask)
        gen_loss = F.cross_entropy(gen_logits, masked.labels,
                                   ignore_index=IGNORE_INDEX)

        # Corrupt input with sampled generator predictions.
        corrupted = ids.copy()
        rows, cols = np.nonzero(masked.mask_positions)
        if len(rows):
            sampled = self._sample_replacements(gen_logits,
                                                masked.mask_positions)
            corrupted[rows, cols] = sampled
        replaced = (corrupted != ids) & (attention_mask > 0)

        hidden = self.discriminator(corrupted, attention_mask=attention_mask)
        rtd_logits = self.rtd_head(hidden)
        valid = attention_mask > 0
        flat_logits = rtd_logits.reshape(-1)[np.nonzero(valid.reshape(-1))[0]]
        flat_labels = replaced.reshape(-1)[valid.reshape(-1)].astype(float)
        disc_loss = F.binary_cross_entropy_with_logits(flat_logits, flat_labels)

        total = gen_loss + disc_loss * self.rtd_weight
        return ElectraStepOutput(
            total=total,
            generator_loss=float(gen_loss.data),
            discriminator_loss=float(disc_loss.data),
            replaced_fraction=float(replaced.sum() / max(valid.sum(), 1)))
