"""Stage-1 pre-training: TeleBERT (Sec. III).

Drives ELECTRA + SimCSE over the Tele-Corpus with whole-word masking against
the tele phrase vocabulary.  The product is a :class:`TeleBertTrainer` whose
``encoder`` (the ELECTRA discriminator) plus ``tokenizer`` are the TeleBERT
artifact handed to stage 2 and to the downstream tasks.

The same driver pre-trains the MacBERT stand-in when fed the generic corpus —
identical recipe, domain-free data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.bert import BertConfig, BertEncoder
from repro.models.electra import ElectraPretrainer
from repro.nn.losses import info_nce
from repro.nn.optim import Adam, clip_grad_norm
from repro.tokenization.tokenizer import WordTokenizer, basic_tokenize
from repro.tokenization.wwm import WholeWordSegmenter
from repro.training.batching import BatchIterator
from repro.training.masking import DynamicMasker


@dataclass
class TeleBertTrainingLog:
    """Per-step loss history of a pre-training run."""

    total: list[float] = field(default_factory=list)
    generator: list[float] = field(default_factory=list)
    discriminator: list[float] = field(default_factory=list)
    simcse: list[float] = field(default_factory=list)


class TeleBertTrainer:
    """Owns the tokenizer, ELECTRA pretrainer, optimizer, and corpus."""

    def __init__(self, sentences: list[str], seed: int = 0,
                 d_model: int = 32, num_layers: int = 2, num_heads: int = 2,
                 d_ff: int = 64, max_len: int = 32, dropout: float = 0.1,
                 masking_rate: float = 0.15,
                 simcse_weight: float = 0.1, simcse_temperature: float = 0.05,
                 learning_rate: float = 1e-3, batch_size: int = 16,
                 min_token_freq: int = 1,
                 wwm_phrases: list[str] | None = None):
        if not sentences:
            raise ValueError("empty pre-training corpus")
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.tokenizer = WordTokenizer.from_corpus(
            sentences, min_freq=min_token_freq, max_length=max_len)
        self.config = BertConfig(
            vocab_size=len(self.tokenizer.vocab), d_model=d_model,
            num_layers=num_layers, num_heads=num_heads, d_ff=d_ff,
            max_len=max_len, dropout=dropout)
        self.pretrainer = ElectraPretrainer(self.config, self.rng)
        segmenter = None
        if wwm_phrases:
            segmenter = WholeWordSegmenter(
                basic_tokenize(p) for p in wwm_phrases)
        self.masker = DynamicMasker(self.tokenizer.vocab, self.rng,
                                    masking_rate=masking_rate,
                                    segmenter=segmenter)
        self.simcse_weight = simcse_weight
        self.simcse_temperature = simcse_temperature
        self.optimizer = Adam(self.pretrainer.parameters(), lr=learning_rate)
        self.batches = BatchIterator(sentences, batch_size, self.rng)
        self.log = TeleBertTrainingLog()

    # ------------------------------------------------------------------
    @property
    def encoder(self) -> BertEncoder:
        """The pre-trained discriminator encoder (the TeleBERT model)."""
        return self.pretrainer.discriminator

    def _encode_batch(self, sentences: list[str]):
        ids, mask = self.tokenizer.encode_batch(sentences)
        tokens = [self.tokenizer.encode(s).tokens for s in sentences]
        return ids, mask, tokens

    def train_step(self) -> float:
        """One optimization step: ELECTRA losses + SimCSE contrastive."""
        sentences = self.batches.next_batch()
        ids, mask, tokens = self._encode_batch(sentences)
        self.optimizer.zero_grad()

        out = self.pretrainer.step(ids, mask, self.masker, tokens=tokens)
        total = out.total

        simcse_value = 0.0
        if self.simcse_weight > 0 and len(sentences) >= 2:
            # Two dropout passes of the same batch are positives (SimCSE).
            first = self.pretrainer.discriminator.cls_embeddings(ids, mask)
            second = self.pretrainer.discriminator.cls_embeddings(ids, mask)
            simcse = info_nce(first, second,
                              temperature=self.simcse_temperature)
            total = total + simcse * self.simcse_weight
            simcse_value = float(simcse.data)

        total.backward()
        clip_grad_norm(self.optimizer.parameters, 5.0)
        self.optimizer.step()

        self.log.total.append(float(total.data))
        self.log.generator.append(out.generator_loss)
        self.log.discriminator.append(out.discriminator_loss)
        self.log.simcse.append(simcse_value)
        return float(total.data)

    def train(self, steps: int) -> TeleBertTrainingLog:
        """Run ``steps`` optimization steps."""
        self.pretrainer.train()
        for _ in range(steps):
            self.train_step()
        return self.log

    # ------------------------------------------------------------------
    def encode_sentences(self, sentences: list[str]) -> np.ndarray:
        """Service embeddings: deterministic [CLS] vectors for raw sentences."""
        from repro.tensor import no_grad
        self.pretrainer.eval()
        ids, mask = self.tokenizer.encode_batch(sentences)
        # Stage 2 may have grown the shared vocabulary after this encoder was
        # trained; map tokens it never saw to [UNK].
        table_size = self.encoder.token_embedding.num_embeddings
        ids = np.where(ids < table_size, ids, self.tokenizer.vocab.unk_id)
        with no_grad():
            out = self.encoder.cls_embeddings(ids, mask).data.copy()
        self.pretrainer.train()
        return out


    def evaluate_mlm_accuracy(self, sentences: list[str],
                              masking_rate: float = 0.15,
                              seed: int = 0) -> float:
        """Generator masked-token prediction accuracy on held-out sentences.

        A quick intrinsic quality probe for the pre-training run: mask the
        sentences once (deterministically via ``seed``) and measure the
        fraction of masked tokens the ELECTRA generator recovers exactly.
        """
        from repro.tensor import no_grad
        from repro.training.masking import DynamicMasker, IGNORE_INDEX

        if not sentences:
            raise ValueError("no evaluation sentences")
        self.pretrainer.eval()
        masker = DynamicMasker(self.tokenizer.vocab,
                               np.random.default_rng(seed),
                               masking_rate=masking_rate)
        ids, mask = self.tokenizer.encode_batch(sentences)
        masked = masker.mask_batch(ids, mask)
        with no_grad():
            logits = self.pretrainer.generator(masked.ids,
                                               attention_mask=mask)
        predictions = logits.data.argmax(axis=-1)
        targets = masked.labels
        keep = targets != IGNORE_INDEX
        self.pretrainer.train()
        if not keep.any():
            return 0.0
        return float((predictions[keep] == targets[keep]).mean())


def pretrain_telebert(sentences: list[str], steps: int = 200, seed: int = 0,
                      **kwargs) -> TeleBertTrainer:
    """Convenience one-call pre-training (build trainer, run, return it)."""
    trainer = TeleBertTrainer(sentences, seed=seed, **kwargs)
    trainer.train(steps)
    return trainer
