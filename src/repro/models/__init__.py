"""Model zoo: BERT backbone, ELECTRA pre-training, TeleBERT, KTeleBERT.

* :mod:`repro.models.bert` — transformer encoder with MLM head and support
  for injecting external embeddings at marked positions (the ``[NUM]`` slot).
* :mod:`repro.models.electra` — generator/discriminator replaced-token
  detection pre-training (Sec. III-B).
* :mod:`repro.models.ke` — the text-enhanced knowledge-embedding objective
  (KEPLER-style, Eqs. 10–11).
* :mod:`repro.models.telebert` — stage-1 pre-training driver (Tele-Corpus,
  WWM, ELECTRA, SimCSE).
* :mod:`repro.models.ktelebert` — the stage-2 model bundling the encoder with
  ANEnc/NDec/TGC, the MLM objective on prompt-wrapped corpora, and the KE
  objective; provides the service-embedding API used by the tasks.
"""

from repro.models.bert import BertConfig, BertEncoder, BertForMaskedLM, MlmHead
from repro.models.electra import ElectraPretrainer, ElectraStepOutput
from repro.models.ke import KnowledgeEmbeddingObjective
from repro.models.telebert import TeleBertTrainer, pretrain_telebert
from repro.models.checkpoint import (
    TrainState,
    atomic_write_bytes,
    checkpoint_fingerprint,
    load_ktelebert,
    load_train_state,
    model_fingerprint,
    save_ktelebert,
    save_train_state,
)
from repro.models.ktelebert import (
    KTeleBert,
    KTeleBertConfig,
    NumericRow,
    TextRow,
    TripleRow,
)

__all__ = [
    "BertConfig",
    "BertEncoder",
    "BertForMaskedLM",
    "ElectraPretrainer",
    "ElectraStepOutput",
    "KTeleBert",
    "KTeleBertConfig",
    "KnowledgeEmbeddingObjective",
    "MlmHead",
    "NumericRow",
    "TeleBertTrainer",
    "TextRow",
    "TrainState",
    "TripleRow",
    "atomic_write_bytes",
    "checkpoint_fingerprint",
    "load_ktelebert",
    "load_train_state",
    "model_fingerprint",
    "pretrain_telebert",
    "save_ktelebert",
    "save_train_state",
]
