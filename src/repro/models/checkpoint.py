"""Checkpointing: persist and restore a complete KTeleBERT artifact.

A checkpoint directory holds:

* ``meta.json`` — model geometry, stage-2 config, tag names, normaliser
  ranges;
* ``vocab.json`` — the tokenizer vocabulary (with special-token flags);
* ``weights.npz`` — every parameter of the encoder, MLM head, ANEnc, NDec,
  TGC, and the automatic-loss-weighting μ, keyed by component and dotted
  parameter path.

This is what "service delivery" looks like operationally: the pre-training
team ships the directory; task teams load it read-only and call ``encode``.

Besides the shippable artifact, this module also persists *training state*
(:func:`save_train_state` / :func:`load_train_state`): a single-file
``.npz`` snapshot bundling model weights, optimizer moments, and the
training loop's JSON state (RNG stream, batch cursors, step counter, loss
history).  Snapshots are written atomically — serialised to a temporary
file in the target directory, fsynced, then renamed over the final path —
so a crash mid-write can never leave a truncated snapshot behind.  The
fault-tolerant runtime (:mod:`repro.training.runtime`) restores them into
a bit-exact continuation of the interrupted run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.ioutil import atomic_write_bytes, atomic_write_text
from repro.models.bert import BertConfig, BertForMaskedLM
from repro.models.ktelebert import KTeleBert, KTeleBertConfig
from repro.nn.optim import Optimizer
from repro.numeric.normalization import TagNormalizer
from repro.tokenization.tokenizer import WordTokenizer
from repro.tokenization.vocab import Vocab

_FORMAT_VERSION = 1
_TRAIN_STATE_VERSION = 1


def _component_states(model: KTeleBert) -> dict[str, dict[str, np.ndarray]]:
    states = {
        "mlm_model": model.mlm_model.state_dict(),
        "anenc": model.anenc.state_dict(),
        "ndec": model.ndec.state_dict(),
        "awl": model.numeric_loss.awl.state_dict(),
    }
    if model.tgc is not None:
        states["tgc"] = model.tgc.state_dict()
    return states


def save_ktelebert(model: KTeleBert, path: str | Path) -> Path:
    """Write a checkpoint directory; returns its path."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)

    meta = {
        "format_version": _FORMAT_VERSION,
        "bert_config": dataclasses.asdict(model.bert_config),
        "ktelebert_config": dataclasses.asdict(model.config),
        "tag_names": model.tag_names,
        "normalizer": {
            "ranges": {tag: list(bounds)
                       for tag, bounds in model.normalizer.ranges.items()},
            "global_range": list(model.normalizer.global_range)
            if model.normalizer.global_range else None,
        },
        "tokenizer": {
            "max_length": model.tokenizer.max_length,
            "lowercase": model.tokenizer.lowercase,
        },
    }
    atomic_write_text(path / "meta.json",
                      json.dumps(meta, ensure_ascii=False))
    model.tokenizer.vocab.save(path / "vocab.json")

    flat: dict[str, np.ndarray] = {}
    for component, state in _component_states(model).items():
        for name, values in state.items():
            flat[f"{component}/{name}"] = values
    buffer = io.BytesIO()
    np.savez(buffer, **flat)
    atomic_write_bytes(path / "weights.npz", buffer.getvalue())
    return path


_CHECKPOINT_FILES = ("meta.json", "vocab.json", "weights.npz")


def checkpoint_fingerprint(path: str | Path) -> str:
    """Content hash of a checkpoint directory (16 hex chars).

    Streams ``meta.json``, ``vocab.json``, and ``weights.npz`` through
    SHA-256 so any change to geometry, vocabulary, or weights yields a new
    fingerprint.  The serving layer keys its persistent embedding store on
    this value: re-training invalidates stale vectors without any explicit
    cache-busting step.
    """
    path = Path(path)
    digest = hashlib.sha256()
    for name in _CHECKPOINT_FILES:
        file_path = path / name
        if not file_path.exists():
            raise FileNotFoundError(f"checkpoint is missing {name}: {path}")
        digest.update(name.encode())
        with open(file_path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
    return digest.hexdigest()[:16]


def model_fingerprint(model: KTeleBert) -> str:
    """Content hash of an in-memory KTeleBERT (16 hex chars).

    Same role as :func:`checkpoint_fingerprint` for models that were never
    saved: hashes every parameter array plus the model geometry, so the
    embedding store distinguishes differently-trained instances of the
    same architecture.
    """
    digest = hashlib.sha256()
    digest.update(json.dumps(dataclasses.asdict(model.bert_config),
                             sort_keys=True).encode())
    digest.update(json.dumps(dataclasses.asdict(model.config),
                             sort_keys=True).encode())
    for component, state in sorted(_component_states(model).items()):
        for name, values in sorted(state.items()):
            digest.update(f"{component}/{name}".encode())
            digest.update(np.ascontiguousarray(values).tobytes())
    return digest.hexdigest()[:16]


def load_ktelebert(path: str | Path, seed: int = 0) -> KTeleBert:
    """Restore a KTeleBERT from :func:`save_ktelebert` output."""
    path = Path(path)
    meta = json.loads((path / "meta.json").read_text())
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint format: "
                         f"{meta.get('format_version')!r}")

    vocab = Vocab.load(path / "vocab.json")
    tokenizer = WordTokenizer(vocab,
                              max_length=meta["tokenizer"]["max_length"],
                              lowercase=meta["tokenizer"]["lowercase"])
    bert_config = BertConfig(**meta["bert_config"])
    config = KTeleBertConfig(**meta["ktelebert_config"])
    normalizer = TagNormalizer(
        ranges={tag: tuple(bounds)
                for tag, bounds in meta["normalizer"]["ranges"].items()},
        global_range=tuple(meta["normalizer"]["global_range"])
        if meta["normalizer"]["global_range"] else None)

    rng = np.random.default_rng(seed)
    model = KTeleBert(tokenizer=tokenizer, bert_config=bert_config,
                      config=config, tag_names=meta["tag_names"],
                      normalizer=normalizer, rng=rng,
                      mlm_model=BertForMaskedLM(bert_config, rng))

    with np.load(path / "weights.npz") as archive:
        grouped: dict[str, dict[str, np.ndarray]] = {}
        for key in archive.files:
            component, _, name = key.partition("/")
            grouped.setdefault(component, {})[name] = archive[key]
    model.mlm_model.load_state_dict(grouped["mlm_model"])
    model.anenc.load_state_dict(grouped["anenc"])
    model.ndec.load_state_dict(grouped["ndec"])
    model.numeric_loss.awl.load_state_dict(grouped["awl"])
    if model.tgc is not None:
        if "tgc" not in grouped:
            raise ValueError("checkpoint lacks TGC weights but the config "
                             "enables the tag classifier")
        model.tgc.load_state_dict(grouped["tgc"])
    return model


# ----------------------------------------------------------------------
# Training-state snapshots (checkpoint/resume for the training runtime)
# ----------------------------------------------------------------------
@dataclass
class TrainState:
    """A full mid-run snapshot: weights + optimizer moments + loop state.

    ``trainer_state`` is the retrainer's JSON state (RNG stream, batch
    cursors, step counter, loss history, strategy identity);
    ``extra`` carries runtime bookkeeping (e.g. MTL phase, run config).
    """

    step: int
    loss: float
    model_arrays: dict[str, dict[str, np.ndarray]]
    optimizer_scalars: dict
    optimizer_arrays: dict[str, np.ndarray]
    optimizer_kind: str
    trainer_state: dict
    extra: dict

    def apply(self, model: KTeleBert, optimizer: Optimizer) -> None:
        """Restore this snapshot into an identically-built model/optimizer."""
        model.mlm_model.load_state_dict(self.model_arrays["mlm_model"])
        model.anenc.load_state_dict(self.model_arrays["anenc"])
        model.ndec.load_state_dict(self.model_arrays["ndec"])
        model.numeric_loss.awl.load_state_dict(self.model_arrays["awl"])
        if model.tgc is not None:
            if "tgc" not in self.model_arrays:
                raise ValueError("train state lacks TGC weights but the "
                                 "config enables the tag classifier")
            model.tgc.load_state_dict(self.model_arrays["tgc"])
        optimizer.load_state_dict({"kind": self.optimizer_kind,
                                   "scalars": self.optimizer_scalars,
                                   "arrays": self.optimizer_arrays})


def save_train_state(path: str | Path, model: KTeleBert,
                     optimizer: Optimizer, trainer_state: dict, *,
                     step: int, loss: float,
                     extra: dict | None = None) -> Path:
    """Atomically write a single-file ``.npz`` training snapshot."""
    optim_state = optimizer.state_dict()
    meta = {
        "format_version": _TRAIN_STATE_VERSION,
        "step": int(step),
        "loss": float(loss),
        "optimizer": {"kind": optim_state["kind"],
                      "scalars": optim_state["scalars"]},
        "trainer_state": trainer_state,
        "extra": extra or {},
    }
    arrays: dict[str, np.ndarray] = {
        "__meta__": np.frombuffer(
            json.dumps(meta, ensure_ascii=False).encode(), dtype=np.uint8),
    }
    for component, state in _component_states(model).items():
        for name, values in state.items():
            arrays[f"model/{component}/{name}"] = values
    for name, values in optim_state["arrays"].items():
        arrays[f"optim/{name}"] = values

    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return atomic_write_bytes(path, buffer.getvalue())


def load_train_state(path: str | Path) -> TrainState:
    """Read a snapshot produced by :func:`save_train_state`."""
    with np.load(Path(path)) as archive:
        meta = json.loads(bytes(archive["__meta__"]).decode())
        if meta.get("format_version") != _TRAIN_STATE_VERSION:
            raise ValueError(f"unsupported train-state format: "
                             f"{meta.get('format_version')!r}")
        model_arrays: dict[str, dict[str, np.ndarray]] = {}
        optimizer_arrays: dict[str, np.ndarray] = {}
        for key in archive.files:
            if key.startswith("model/"):
                _, component, name = key.split("/", 2)
                model_arrays.setdefault(component, {})[name] = archive[key]
            elif key.startswith("optim/"):
                optimizer_arrays[key[len("optim/"):]] = archive[key]
    return TrainState(step=int(meta["step"]), loss=float(meta["loss"]),
                      model_arrays=model_arrays,
                      optimizer_scalars=meta["optimizer"]["scalars"],
                      optimizer_arrays=optimizer_arrays,
                      optimizer_kind=meta["optimizer"]["kind"],
                      trainer_state=meta["trainer_state"],
                      extra=meta["extra"])
