"""BERT-style encoder backbone with an MLM head.

This is the architecture shared by the MacBERT stand-in, TeleBERT, and
KTeleBERT (the paper keeps MacBERT's architecture and re-trains weights).
The encoder supports *embedding overrides*: external embeddings (the ANEnc
output) can replace the token embedding at chosen positions — how KTeleBERT
injects numeric embeddings at the ``[NUM]`` slots (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear
from repro.nn.module import Module
from repro.nn.transformer import TransformerEncoder
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


@dataclass
class BertConfig:
    """Hyper-parameters of the encoder.

    The defaults are the scaled-down geometry used throughout this
    reproduction (the paper uses MacBERT-base: 12 layers, d=768).
    """

    vocab_size: int
    d_model: int = 32
    num_layers: int = 2
    num_heads: int = 2
    d_ff: int = 64
    max_len: int = 48
    dropout: float = 0.1

    def __post_init__(self):
        if self.vocab_size < 6:
            raise ValueError("vocab_size must cover the core special tokens")
        if self.d_model % self.num_heads:
            raise ValueError("d_model must be divisible by num_heads")


class BertEncoder(Module):
    """Token + position embeddings -> transformer stack."""

    def __init__(self, config: BertConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.d_model, rng)
        self.position_embedding = Embedding(config.max_len, config.d_model, rng)
        self.embedding_norm = LayerNorm(config.d_model)
        self.embedding_dropout = Dropout(config.dropout, rng)
        self.encoder = TransformerEncoder(
            config.num_layers, config.d_model, config.num_heads,
            config.d_ff, rng, dropout=config.dropout)

    # ------------------------------------------------------------------
    def embed(self, ids: np.ndarray,
              embedding_overrides: tuple[np.ndarray, Tensor] | None = None) -> Tensor:
        """Compute input embeddings, optionally overriding marked positions.

        ``embedding_overrides`` is ``(positions, vectors)`` where ``positions``
        is an (M, 2) array of (row, column) indices into the batch and
        ``vectors`` is an (M, d) Tensor whose rows replace the token
        embeddings there (position embeddings still apply).
        """
        ids = np.asarray(ids)
        seq = ids.shape[1]
        if seq > self.config.max_len:
            raise ValueError(
                f"sequence length {seq} exceeds max_len {self.config.max_len}")
        # One fused gather+scatter node instead of the former five-op
        # keep-mask composition (see functional.fused_embedding).
        embedded = F.fused_embedding(
            self.token_embedding.weight, self.position_embedding.weight,
            ids, overrides=embedding_overrides)
        return self.embedding_dropout(self.embedding_norm(embedded))

    def forward(self, ids: np.ndarray, attention_mask: np.ndarray | None = None,
                embedding_overrides: tuple[np.ndarray, Tensor] | None = None,
                return_all_layers: bool = False):
        """Encode a padded id batch to hidden states (B, T, D)."""
        embedded = self.embed(ids, embedding_overrides=embedding_overrides)
        return self.encoder(embedded, attention_mask=attention_mask,
                            return_all_layers=return_all_layers)

    def cls_embeddings(self, ids: np.ndarray,
                       attention_mask: np.ndarray | None = None,
                       embedding_overrides=None) -> Tensor:
        """The ``[CLS]`` (position 0) output embeddings — the service vectors."""
        hidden = self.forward(ids, attention_mask=attention_mask,
                              embedding_overrides=embedding_overrides)
        return hidden[:, 0, :]


class MlmHead(Module):
    """Masked-language-model prediction head (transform + vocab projection)."""

    def __init__(self, config: BertConfig, rng: np.random.Generator):
        super().__init__()
        self.transform = Linear(config.d_model, config.d_model, rng)
        self.norm = LayerNorm(config.d_model)
        self.decoder = Linear(config.d_model, config.vocab_size, rng)

    def forward(self, hidden: Tensor) -> Tensor:
        return self.decoder(self.norm(F.gelu(self.transform(hidden))))


class BertForMaskedLM(Module):
    """Encoder + MLM head with the standard masked cross-entropy loss."""

    IGNORE_INDEX = -100

    def __init__(self, config: BertConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.bert = BertEncoder(config, rng)
        self.mlm_head = MlmHead(config, rng)

    def forward(self, ids: np.ndarray,
                attention_mask: np.ndarray | None = None,
                embedding_overrides=None) -> Tensor:
        hidden = self.bert(ids, attention_mask=attention_mask,
                           embedding_overrides=embedding_overrides)
        return self.mlm_head(hidden)

    def mlm_loss(self, ids: np.ndarray, labels: np.ndarray,
                 attention_mask: np.ndarray | None = None,
                 embedding_overrides=None) -> Tensor:
        """Cross-entropy over positions where ``labels != IGNORE_INDEX``."""
        logits = self(ids, attention_mask=attention_mask,
                      embedding_overrides=embedding_overrides)
        return F.cross_entropy(logits, labels, ignore_index=self.IGNORE_INDEX)

    def grow_vocab(self, extra_tokens: int, rng: np.random.Generator) -> None:
        """Extend the vocabulary (Sec. IV-A3: new special-token embeddings).

        Grows both the token-embedding table and the MLM decoder output.
        """
        if extra_tokens <= 0:
            return
        self.bert.token_embedding.grow(extra_tokens, rng)
        old_w = self.mlm_head.decoder.weight.data
        old_b = self.mlm_head.decoder.bias.data
        extra_w = rng.normal(0.0, 0.02, size=(old_w.shape[0], extra_tokens))
        self.mlm_head.decoder.weight.data = np.concatenate([old_w, extra_w], axis=1)
        self.mlm_head.decoder.weight.grad = None
        self.mlm_head.decoder.bias.data = np.concatenate(
            [old_b, np.zeros(extra_tokens)])
        self.mlm_head.decoder.bias.grad = None
        self.config.vocab_size += extra_tokens
