"""Prompt template construction (Sec. IV-A2, Fig. 3).

Structured machine data and KG triples are disordered relative to natural
language; the paper wraps every input with special prompt tokens announcing
the category of the immediately following content — ``[ALM]`` alarm, ``[KPI]``
KPI, ``[ENT]`` entity, ``[REL]`` relation, ``[ATTR]`` attribute, ``[LOC]``
location, ``[DOC]`` document, ``[NUM]`` numeric — with ``|`` separating type
names from their values.  The ``[NUM]`` token additionally marks the position
whose embedding the adaptive numeric encoder replaces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.world.episodes import LogRecord

ALM = "[ALM]"
KPI = "[KPI]"
ENT = "[ENT]"
REL = "[REL]"
ATTR = "[ATTR]"
LOC = "[LOC]"
DOC = "[DOC]"
NUM = "[NUM]"

#: All prompt tokens of the paper (Fig. 3), inserted as special tokens of
#: KTeleBERT's vocabulary.
ALL_PROMPT_TOKENS: tuple[str, ...] = (ALM, KPI, ENT, REL, ATTR, LOC, DOC, NUM)

# Extension tokens for the paper's declared future-work data sources
# (signaling flow and configuration data, Sec. IV-B).
SIG = "[SIG]"
CFG = "[CFG]"

#: Extension prompt tokens (not part of the paper's Fig. 3 set).
EXTENSION_PROMPT_TOKENS: tuple[str, ...] = (SIG, CFG)

#: Separator between a field's type name and its value.
FIELD_SEPARATOR = "|"


def wrap_alarm_log(name: str, severity: str | None = None,
                   location: str | None = None,
                   attributes: dict[str, str] | None = None) -> str:
    """Wrap one alarm log record: ``[ALM] name | [ATTR] severity | ...``."""
    parts = [f"{ALM} {name}"]
    if severity is not None:
        parts.append(f"{ATTR} severity {FIELD_SEPARATOR} {severity}")
    if location is not None:
        parts.append(f"{LOC} {location}")
    for key, value in (attributes or {}).items():
        parts.append(f"{ATTR} {key} {FIELD_SEPARATOR} {value}")
    return " ".join(parts)


def wrap_kpi_log(tag_name: str, value: float | None = None,
                 location: str | None = None) -> str:
    """Wrap one KPI reading: ``[KPI] tag | [NUM] value``.

    The literal value token after ``[NUM]`` is a placeholder — during encoding
    the ANEnc output embedding is injected at the ``[NUM]`` position (Fig. 4),
    and the value token itself is excluded from MLM targets.
    """
    parts = [f"{KPI} {tag_name}"]
    if value is not None:
        parts.append(f"{NUM} {value:.6g}")
    if location is not None:
        parts.append(f"{LOC} {location}")
    return f" {FIELD_SEPARATOR} ".join(parts)


def wrap_triple(head: str, relation: str, tail: str) -> str:
    """Serialise a relational triple: ``[ENT] h | [REL] r | [ENT] t``."""
    return (f"{ENT} {head} {FIELD_SEPARATOR} {REL} {relation} "
            f"{FIELD_SEPARATOR} {ENT} {tail}")


def wrap_attribute(entity: str, attribute: str, value) -> str:
    """Serialise an attribute triple; numeric values get the ``[NUM]`` marker."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        rendered = f"{NUM} {float(value):.6g}"
    else:
        rendered = str(value)
    return (f"{ENT} {entity} {FIELD_SEPARATOR} {ATTR} {attribute} "
            f"{FIELD_SEPARATOR} {rendered}")


def wrap_entity(name: str, attributes: dict[str, object] | None = None) -> str:
    """Wrap an entity surface, optionally with attribute context appended.

    This is the "entity mapping w/ Attr." service-delivery format
    (Sec. V-A3).
    """
    parts = [f"{ENT} {name}"]
    for key, value in (attributes or {}).items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            parts.append(f"{ATTR} {key} {FIELD_SEPARATOR} {NUM} {float(value):.6g}")
        else:
            parts.append(f"{ATTR} {key} {FIELD_SEPARATOR} {value}")
    return " ".join(parts)


def wrap_document_sentence(sentence: str) -> str:
    """Wrap a document sentence with the ``[DOC]`` prompt."""
    return f"{DOC} {sentence}"


def wrap_signaling(procedure: str, rendered_message: str) -> str:
    """Wrap a signaling-flow record (future-work extension): ``[SIG] ...``."""
    return (f"{SIG} {procedure} {FIELD_SEPARATOR} {rendered_message}")


def wrap_config(node: str, parameter: str, value, kind: str) -> str:
    """Wrap a configuration record (future-work extension): ``[CFG] ...``.

    Numeric parameters get the ``[NUM]`` marker so they flow through ANEnc
    exactly like KPI values.
    """
    if kind == "numeric":
        rendered = f"{NUM} {float(value):.6g}"
    else:
        rendered = str(value)
    return (f"{CFG} {parameter} {FIELD_SEPARATOR} {rendered} "
            f"{FIELD_SEPARATOR} {LOC} {node}")


def wrap_log_record(record: LogRecord) -> str:
    """Dispatch a :class:`~repro.world.episodes.LogRecord` to its template."""
    if record.kind == "alarm":
        return wrap_alarm_log(record.tag, severity=record.severity,
                              location=record.node,
                              attributes={"interface": record.interface}
                              if record.interface else None)
    return wrap_kpi_log(record.tag, value=record.value, location=record.node)


@dataclass(frozen=True)
class PromptTemplates:
    """Namespace object bundling the template functions (convenience API)."""

    alarm = staticmethod(wrap_alarm_log)
    kpi = staticmethod(wrap_kpi_log)
    triple = staticmethod(wrap_triple)
    attribute = staticmethod(wrap_attribute)
    entity = staticmethod(wrap_entity)
    document = staticmethod(wrap_document_sentence)
    log_record = staticmethod(wrap_log_record)
