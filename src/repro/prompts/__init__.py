"""Prompt templates for modality unification (Sec. IV-A2, Fig. 3)."""

from repro.prompts.templates import (
    ALL_PROMPT_TOKENS,
    EXTENSION_PROMPT_TOKENS,
    FIELD_SEPARATOR,
    PromptTemplates,
    wrap_alarm_log,
    wrap_attribute,
    wrap_config,
    wrap_document_sentence,
    wrap_entity,
    wrap_kpi_log,
    wrap_log_record,
    wrap_signaling,
    wrap_triple,
)

__all__ = [
    "ALL_PROMPT_TOKENS",
    "EXTENSION_PROMPT_TOKENS",
    "FIELD_SEPARATOR",
    "PromptTemplates",
    "wrap_alarm_log",
    "wrap_attribute",
    "wrap_config",
    "wrap_document_sentence",
    "wrap_entity",
    "wrap_kpi_log",
    "wrap_log_record",
    "wrap_signaling",
    "wrap_triple",
]
