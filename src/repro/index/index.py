"""Sharded, memory-mapped ANN vector index (pure numpy).

The retrieval tier ROADMAP item 2 calls for: entity embeddings live in
hash-sharded, IVF-coarse-clustered, contiguous float32 ``.npy`` files
served through ``mmap`` (:mod:`repro.index.shards`), so a knowledge graph
of millions of entities answers top-k nearest-neighbour queries without
ever materialising the full matrix in RAM.

Geometry is cosine: every stored vector and every query is L2-normalised
and similarity is the dot product (higher = closer).  A query probes the
``nprobe`` coarse clusters per shard whose centroids score highest and
scans those rows *exactly*, so ``nprobe`` is the recall↔speed knob; when
the probed clusters hold fewer than ``k`` candidates the probe order is
extended automatically (small shards degrade to exact scan, never to an
empty answer).

Durability follows the repo's atomic-write discipline
(:mod:`repro.ioutil`): every build/flush writes a *new generation* of
shard files, fsyncs them, and only then atomically replaces
``manifest.json`` — the single commit point.  A process killed anywhere
mid-rebuild leaves the previous generation complete and referenced;
superseded generations are garbage-collected on the next successful
commit.

Incremental growth goes through :meth:`VectorIndex.add`, an in-memory
buffer that answers queries brute-force immediately and folds into the
affected shards' clustered files on :meth:`VectorIndex.flush`.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

import numpy as np

from repro.ioutil import atomic_write_text

from repro.index.shards import (
    ShardData,
    read_shard,
    shard_for_name,
    shard_stem,
    write_shard,
)

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1

#: Default shard fan-out.  Query cost grows with the shard count (each
#: shard is probed independently), so the default stays small; builds at
#: true million-entity scale raise it for rebuild granularity.
DEFAULT_NUM_SHARDS = 4
#: Upper bound on coarse clusters per shard.
MAX_NLIST = 1024


def default_nlist(shard_count: int) -> int:
    """Default coarse cluster count for one shard of ``n`` rows.

    ``4 * sqrt(n)`` (capped at :data:`MAX_NLIST`): denser than the
    classic ``sqrt`` rule, because the probed-cell scan here is a single
    concatenated matvec whose cost tracks *rows gathered* — smaller
    cells cut gathered rows 4x while global-top-``nprobe`` selection
    keeps the cells that matter.
    """
    if shard_count <= 1:
        return 1
    return int(min(MAX_NLIST,
                   max(1, round(4.0 * float(shard_count) ** 0.5))))


def _normalise_rows(matrix: np.ndarray) -> np.ndarray:
    matrix = np.ascontiguousarray(matrix, dtype=np.float32)
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.maximum(norms, 1e-12)


class _ProbePlan:
    """Query-time view of the committed shards.

    All shards' coarse centroids concatenated into one matrix, each row
    mapped back to its owning shard and contiguous row range.  Built once
    per commit (shards are immutable between commits) so the per-query
    probe is a single matvec + a single argpartition across *all* shards
    instead of one pair per shard — at a handful of numpy calls per
    query, call count is what the hot path pays for.
    """

    __slots__ = ("shards", "centroids", "owner", "starts", "ends")

    def __init__(self, shards: list[ShardData]):
        self.shards = shards
        self.centroids = (np.concatenate([s.centroids for s in shards])
                          if len(shards) > 1 else shards[0].centroids)
        self.owner = np.concatenate(
            [np.full(s.centroids.shape[0], pos, dtype=np.int64)
             for pos, s in enumerate(shards)])
        self.starts = np.concatenate([s.offsets[:-1] for s in shards])
        self.ends = np.concatenate([s.offsets[1:] for s in shards])

    @property
    def ncells(self) -> int:
        return int(self.starts.shape[0])


class IndexCorrupt(RuntimeError):
    """The on-disk manifest/shard set failed validation on open."""


class FingerprintMismatch(RuntimeError):
    """The index was built under a different checkpoint fingerprint."""


class VectorIndex:
    """Sharded mmap IVF index over named embedding vectors.

    Parameters
    ----------
    directory:
        Home of ``manifest.json`` and the shard files.  An existing
        manifest is loaded eagerly; a missing one starts the index empty
        (the first :meth:`build`/:meth:`flush` creates it).
    fingerprint:
        Checkpoint namespace the vectors belong to (same role as
        :class:`~repro.serving.store.EmbeddingStore`'s).  Opening a
        directory built under a different fingerprint raises
        :class:`FingerprintMismatch` — stale geometry is never served.
    num_shards / nlist / nprobe:
        Build-time fan-out, coarse clusters per shard (``None`` =
        ``sqrt`` rule), and the default probe width for queries.
    """

    def __init__(self, directory: str | Path, *,
                 fingerprint: str = "unversioned",
                 num_shards: int = DEFAULT_NUM_SHARDS,
                 nlist: int | None = None, nprobe: int = 4,
                 seed: int = 0):
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        if nprobe < 1:
            raise ValueError("nprobe must be positive")
        if nlist is not None and nlist < 1:
            raise ValueError("nlist must be positive when given")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fingerprint = fingerprint
        self.num_shards = num_shards
        self.nlist = nlist
        self.nprobe = nprobe
        self.seed = seed
        self.dim: int | None = None
        self._lock = threading.RLock()
        self._rebuild_lock = threading.Lock()
        self._generation = 0
        self._shards: list[ShardData | None] = [None] * num_shards
        self._probe_plan: _ProbePlan | None = None
        self._pending: dict[str, np.ndarray] = {}
        self._counters = {"queries": 0, "adds": 0, "flushes": 0,
                          "builds": 0, "rows_scanned": 0}
        self._load_manifest()

    # ------------------------------------------------------------------
    # Manifest / durability
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def _load_manifest(self) -> None:
        if not self.manifest_path.exists():
            return
        try:
            manifest = json.loads(
                self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise IndexCorrupt(f"unreadable manifest: {error}") from error
        if manifest.get("version") != MANIFEST_VERSION:
            raise IndexCorrupt(
                f"manifest version {manifest.get('version')!r} is not "
                f"{MANIFEST_VERSION}")
        stored = manifest.get("fingerprint", "unversioned")
        if stored != self.fingerprint:
            raise FingerprintMismatch(
                f"index at {self.directory} was built under fingerprint "
                f"{stored!r}, not {self.fingerprint!r} — rebuild it")
        self.num_shards = int(manifest["num_shards"])
        self.dim = int(manifest["dim"]) if manifest.get("dim") else None
        self._generation = int(manifest.get("generation", 0))
        shards: list[ShardData | None] = []
        try:
            for entry in manifest["shards"]:
                if entry and entry.get("stem"):
                    shards.append(read_shard(self.directory, entry["stem"]))
                else:
                    shards.append(None)
        except (OSError, ValueError, KeyError) as error:
            raise IndexCorrupt(
                f"shard files do not match the manifest: {error}"
            ) from error
        if len(shards) != self.num_shards:
            raise IndexCorrupt(
                f"manifest names {len(shards)} shards, expected "
                f"{self.num_shards}")
        self._shards = shards

    def _commit(self, shards: list[ShardData | None],
                generation: int) -> None:
        """Atomically publish ``shards`` as generation ``generation``."""
        manifest = {
            "version": MANIFEST_VERSION,
            "generation": generation,
            "fingerprint": self.fingerprint,
            "metric": "cosine",
            "dim": self.dim,
            "num_shards": self.num_shards,
            "count": sum(len(s) for s in shards if s is not None),
            "shards": [({"stem": s.stem, "count": len(s)}
                        if s is not None else {"stem": None, "count": 0})
                       for s in shards],
        }
        atomic_write_text(self.manifest_path,
                          json.dumps(manifest, ensure_ascii=False,
                                     indent=2) + "\n")
        with self._lock:
            self._shards = shards
            self._probe_plan = None
            self._generation = generation
        self._prune_generations({s.stem for s in shards if s is not None})

    def _prune_generations(self, live_stems: set[str]) -> None:
        """Best-effort GC of shard files no manifest references."""
        for path in self.directory.glob("shard-*"):
            stem = path.name
            for suffix in (".meta.json", ".npy"):
                if stem.endswith(suffix):
                    stem = stem[: -len(suffix)]
                    break
            if stem not in live_stems:
                try:
                    path.unlink()
                except OSError:
                    pass  # a concurrent reader may still hold it open

    # ------------------------------------------------------------------
    # Build / incremental growth
    # ------------------------------------------------------------------
    def _check_dim(self, matrix: np.ndarray, what: str) -> None:
        if matrix.ndim != 2:
            raise ValueError(f"{what} must be a 2-d matrix, got shape "
                             f"{matrix.shape}")
        if self.dim is None:
            self.dim = int(matrix.shape[1])
        elif matrix.shape[1] != self.dim:
            raise ValueError(f"{what} dim {matrix.shape[1]} does not match "
                             f"index dim {self.dim}")

    def _nlist_for(self, count: int) -> int:
        return self.nlist if self.nlist is not None else default_nlist(count)

    def build(self, vectors: dict[str, np.ndarray]) -> int:
        """Full (re)build from a name→vector mapping; returns the count.

        Replaces whatever the index held before, including the pending
        buffer.  Crash-safe: the new generation only becomes visible when
        its manifest lands, and the previous generation's files are kept
        until then.
        """
        names = list(vectors)
        with self._rebuild_lock:
            if names:
                matrix = _normalise_rows(
                    np.stack([np.asarray(vectors[n], dtype=np.float32)
                              for n in names]))
                self._check_dim(matrix, "build vectors")
            generation = self._generation + 1
            per_shard: list[list[int]] = [[] for _ in range(self.num_shards)]
            for row, name in enumerate(names):
                per_shard[shard_for_name(name, self.num_shards)].append(row)
            shards: list[ShardData | None] = []
            for shard_id, rows in enumerate(per_shard):
                if not rows:
                    shards.append(None)
                    continue
                stem = shard_stem(generation, shard_id)
                write_shard(self.directory, stem,
                            [names[r] for r in rows], matrix[rows],
                            self._nlist_for(len(rows)),
                            seed=self.seed + shard_id)
                shards.append(read_shard(self.directory, stem))
            with self._lock:
                self._pending.clear()
                self._counters["builds"] += 1
            self._commit(shards, generation)
        return len(names)

    def add(self, vectors: dict[str, np.ndarray]) -> None:
        """Buffer vectors for the next :meth:`flush`.

        Buffered names answer queries immediately (brute-force tier) and
        shadow any same-name rows already in the shards; nothing touches
        disk until :meth:`flush`.
        """
        if not vectors:
            return
        matrix = _normalise_rows(
            np.stack([np.asarray(v, dtype=np.float32)
                      for v in vectors.values()]))
        with self._lock:
            self._check_dim(matrix, "added vectors")
            for row, name in enumerate(vectors):
                self._pending[name] = matrix[row]
            self._counters["adds"] += len(vectors)

    def flush(self) -> int:
        """Fold the pending buffer into its shards; returns rows folded.

        Only the shards a buffered name hashes into are rewritten (new
        generation files for those shards; untouched shards keep their
        current files).  The manifest swap is the commit point, exactly
        as in :meth:`build`.
        """
        with self._rebuild_lock:
            with self._lock:
                pending = dict(self._pending)
                self._pending = {}
                current = list(self._shards)
            if not pending:
                return 0
            per_shard: dict[int, dict[str, np.ndarray]] = {}
            for name, vector in pending.items():
                shard_id = shard_for_name(name, self.num_shards)
                per_shard.setdefault(shard_id, {})[name] = vector
            generation = self._generation + 1
            shards: list[ShardData | None] = list(current)
            for shard_id, fresh in per_shard.items():
                merged: dict[str, np.ndarray] = {}
                existing = current[shard_id]
                if existing is not None:
                    for row, name in enumerate(existing.names):
                        merged[name] = np.asarray(existing.vectors[row])
                merged.update(fresh)             # newest write wins
                stem = shard_stem(generation, shard_id)
                names = list(merged)
                write_shard(self.directory, stem, names,
                            np.stack([merged[n] for n in names]),
                            self._nlist_for(len(names)),
                            seed=self.seed + shard_id)
                shards[shard_id] = read_shard(self.directory, stem)
            with self._lock:
                self._counters["flushes"] += 1
            self._commit(shards, generation)
        return len(pending)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, queries: np.ndarray, k: int = 10,
              nprobe: int | None = None) -> list[list[tuple[str, float]]]:
        """Top-``k`` ``(name, cosine score)`` lists, one per query row.

        ``nprobe`` (default: the index's build-time setting) is the
        clusters probed per shard — exact within probed clusters, so
        raising it trades speed for recall.  Probing auto-extends while
        the candidate pool holds fewer than ``k`` rows.
        """
        if k < 1:
            raise ValueError("k must be positive")
        probe = self.nprobe if nprobe is None else int(nprobe)
        if probe < 1:
            raise ValueError("nprobe must be positive")
        queries = np.asarray(queries, dtype=np.float32)
        single = queries.ndim == 1
        if single:
            queries = queries[None, :]
        if self.dim is not None and queries.shape[1] != self.dim:
            raise ValueError(f"query dim {queries.shape[1]} does not match "
                             f"index dim {self.dim}")
        queries = _normalise_rows(queries)
        with self._lock:
            live = [s for s in self._shards
                    if s is not None and len(s) and s.centroids.size]
            plan = self._probe_plan
            if plan is None and live:
                plan = self._probe_plan = _ProbePlan(live)
            pending_names = list(self._pending)
            pending_matrix = (np.stack([self._pending[n]
                                        for n in pending_names])
                              if pending_names else None)
            pending_set = set(pending_names)
        # Stage 1 is batched across the whole query matrix: one matmul
        # against every coarse centroid and one axis-1 argpartition pick
        # each query's probe set.  ``nprobe`` is clusters *per shard*;
        # selection is global across the concatenated centroid pool,
        # which probes the same number of cells but always the closest.
        # Stage-1½, also batched: fancy-index every query's probed-cell
        # geometry (row starts/ends, owning shard, cumulative bounds) in
        # one numpy call per field and convert to Python lists once —
        # per-query fancy indexing and ``tolist`` would be pure call
        # overhead repeated ``Q`` times.
        geometry = None
        if plan is not None:
            sims_matrix = queries @ plan.centroids.T
            ncells = plan.ncells
            want_cells = min(probe * len(plan.shards), ncells)
            if want_cells < ncells:
                cells_matrix = np.argpartition(
                    -sims_matrix, want_cells - 1, axis=1)[:, :want_cells]
            else:
                cells_matrix = np.broadcast_to(
                    np.arange(ncells), (queries.shape[0], ncells))
            starts_all = plan.starts[cells_matrix]
            ends_all = plan.ends[cells_matrix]
            owner_all = plan.owner[cells_matrix]
            bounds_all = np.cumsum(ends_all - starts_all, axis=1)
            totals = bounds_all[:, -1].tolist()
            geometry = (starts_all.tolist(), ends_all.tolist(),
                        owner_all.tolist(), bounds_all, totals,
                        cells_matrix, sims_matrix)
        results = []
        scanned = 0
        for i, row in enumerate(queries):
            hits, rows = self._query_one(row, i, k, plan, geometry,
                                         pending_names, pending_matrix,
                                         pending_set)
            results.append(hits)
            scanned += rows
        with self._lock:
            self._counters["queries"] += queries.shape[0]
            self._counters["rows_scanned"] += scanned
        return results

    def _query_one(self, query: np.ndarray, i: int, k: int,
                   plan: _ProbePlan | None, geometry: tuple | None,
                   pending_names: list[str],
                   pending_matrix: np.ndarray | None, pending_set: set[str]
                   ) -> tuple[list[tuple[str, float]], int]:
        # Hot path: everything stays numpy until the final top-k rows are
        # mapped back to names, and the per-query numpy *call count* is
        # fixed (one concatenated candidate matvec plus the merge)
        # regardless of shard fan-out — per-shard or per-candidate call
        # overhead is what would make a probed scan slower than brute
        # force.  Probe selection and geometry lookup happened batched in
        # :meth:`query`.
        scores: list[np.ndarray] = []
        bounds = None
        total = 0
        if geometry is not None:
            (starts_a, ends_a, owner_a, bounds_all, totals,
             cells_matrix, sims_matrix) = geometry
            starts_l, ends_l, owner_l = starts_a[i], ends_a[i], owner_a[i]
            bounds = bounds_all[i]
            total = totals[i]
            if total < k and len(starts_l) < plan.ncells:
                # Probed cells too sparse for a full answer: extend down
                # the probe order until k candidates (or every cell).
                probed = set(cells_matrix[i].tolist())
                starts_l = list(starts_l)
                ends_l = list(ends_l)
                owner_l = list(owner_l)
                extended = total
                order = np.argsort(-sims_matrix[i], kind="stable")
                for cell in order.tolist():
                    if extended >= k:
                        break
                    if cell in probed:
                        continue
                    start = int(plan.starts[cell])
                    end = int(plan.ends[cell])
                    if end <= start:
                        continue
                    starts_l.append(start)
                    ends_l.append(end)
                    owner_l.append(int(plan.owner[cell]))
                    extended += end - start
                if extended != total:
                    sizes = [e - s for s, e in zip(starts_l, ends_l)]
                    bounds = np.cumsum(np.asarray(sizes, dtype=np.int64))
                    total = int(bounds[-1])
            if total:
                shards = plan.shards
                blocks = [shards[o].vectors[s:e]
                          for o, s, e in zip(owner_l, starts_l, ends_l)]
                stacked = (blocks[0] if len(blocks) == 1
                           else np.concatenate(blocks))
                scores.append(stacked @ query)
        if pending_matrix is not None:
            scores.append(pending_matrix @ query)
        if not scores:
            return [], 0
        merged = np.concatenate(scores) if len(scores) > 1 else scores[0]
        # Shard rows shadowed by a pending same-name add are dropped at
        # selection time, so over-select by the pending count.
        want = min(merged.shape[0], k + len(pending_set))
        if merged.shape[0] > want:
            part = np.argpartition(-merged, want - 1)[:want]
            chosen = merged[part]
            order = np.argsort(-chosen, kind="stable")
            top, top_scores = part[order], chosen[order]
        else:
            top = np.argsort(-merged, kind="stable")
            top_scores = merged[top]
        # Flat candidate layout: shard rows occupy [0, total), pending
        # rows [total, total + len(pending)); ``bounds`` (cumulative
        # block ends) maps a shard flat index back to its probed cell.
        # Everything the name-mapping loop touches is converted to plain
        # Python values up front — per-hit numpy scalar extraction would
        # cost more than the whole loop.
        if total:
            blocks_of = np.searchsorted(bounds, top, side="right").tolist()
            bounds_l = bounds.tolist()
            shards = plan.shards
        hits: list[tuple[str, float]] = []
        for pos, (flat, score) in enumerate(zip(top.tolist(),
                                                top_scores.tolist())):
            if flat >= total:
                name = pending_names[flat - total]
            else:
                block = blocks_of[pos]
                offset = flat - (bounds_l[block - 1] if block else 0)
                name = shards[owner_l[block]].names[starts_l[block] + offset]
                if name in pending_set:
                    continue  # shadowed by a newer buffered vector
            hits.append((name, float(score)))
            if len(hits) == k:
                break
        pending_rows = (pending_matrix.shape[0]
                        if pending_matrix is not None else 0)
        return hits, total + pending_rows

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            on_disk = {n for s in self._shards if s is not None
                       for n in s.names}
            return len(on_disk | set(self._pending))

    def __contains__(self, name: str) -> bool:
        with self._lock:
            if name in self._pending:
                return True
            shard = self._shards[shard_for_name(name, self.num_shards)]
            return shard is not None and name in shard.name_rows

    def get(self, name: str) -> np.ndarray | None:
        """The stored (normalised) vector for ``name``, or ``None``."""
        with self._lock:
            vector = self._pending.get(name)
            if vector is not None:
                return np.array(vector)
            shard = self._shards[shard_for_name(name, self.num_shards)]
            if shard is None:
                return None
            row = shard.name_rows.get(name)
            return None if row is None else np.array(shard.vectors[row])

    def stats(self) -> dict:
        """Counts, geometry, and counters (feeds ``index stats`` / knn)."""
        with self._lock:
            shard_counts = [len(s) if s is not None else 0
                            for s in self._shards]
            return {
                "directory": str(self.directory),
                "fingerprint": self.fingerprint,
                "dim": self.dim,
                "generation": self._generation,
                "num_shards": self.num_shards,
                "nprobe": self.nprobe,
                "count": sum(shard_counts),
                "pending": len(self._pending),
                "shard_counts": shard_counts,
                "clusters": [int(s.centroids.shape[0]) if s is not None
                             else 0 for s in self._shards],
                "counters": dict(self._counters),
            }


__all__ = [
    "DEFAULT_NUM_SHARDS",
    "FingerprintMismatch",
    "IndexCorrupt",
    "MANIFEST_NAME",
    "VectorIndex",
    "default_nlist",
]
