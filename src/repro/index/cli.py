"""``python -m repro index`` — build, query, and inspect the ANN tier.

Same sub-driver pattern as ``repro lint`` / ``repro bench``: the top
level CLI forwards everything after ``index`` verbatim, and this module
owns its own subcommands and ``--help``.

Subcommands
-----------
``build``   build (or rebuild) an index directory, either from a
            persistent :class:`~repro.serving.store.EmbeddingStore`
            namespace or from a seeded synthetic entity world.
``query``   top-k neighbours for stored entity names (their stored
            vectors become the queries), printed as JSON lines.
``stats``   manifest geometry + counters as JSON.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.index.index import DEFAULT_NUM_SHARDS, VectorIndex


def _cmd_build(args: argparse.Namespace) -> int:
    if bool(args.store) == bool(args.synthetic):
        print("index build: give exactly one of --store or --synthetic",
              file=sys.stderr)
        return 2
    index = VectorIndex(args.dir, fingerprint=args.fingerprint,
                        num_shards=args.num_shards, nlist=args.nlist,
                        nprobe=args.nprobe, seed=args.seed)
    if args.store:
        from repro.serving.store import EmbeddingStore

        store = EmbeddingStore(args.store, fingerprint=args.fingerprint,
                               label=args.label, mode=args.mode)
        names = store.names()
        if not names:
            print(f"index build: store at {args.store} holds no names in "
                  f"namespace ({args.fingerprint!r}, {args.label!r}, "
                  f"{args.mode!r})", file=sys.stderr)
            return 1
        vectors = store.get_many(names)
        count = index.build(vectors)
    else:
        from repro.index.synthetic import synthetic_world

        names, matrix = synthetic_world(args.synthetic, args.dim,
                                        seed=args.seed)
        count = index.build({name: matrix[i]
                             for i, name in enumerate(names)})
    stats = index.stats()
    print(json.dumps({"built": count, "dir": str(index.directory),
                      "generation": stats["generation"],
                      "shard_counts": stats["shard_counts"]}))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    index = VectorIndex(args.dir, fingerprint=args.fingerprint)
    if not args.name:
        print("index query: give at least one --name", file=sys.stderr)
        return 2
    exit_code = 0
    for name in args.name:
        vector = index.get(name)
        if vector is None:
            print(json.dumps({"query": name, "error": "unknown name"}))
            exit_code = 1
            continue
        [hits] = index.query(vector, k=args.k, nprobe=args.nprobe)
        print(json.dumps({"query": name,
                          "neighbours": [{"name": n, "score": round(s, 6)}
                                         for n, s in hits]}))
    return exit_code


def _cmd_stats(args: argparse.Namespace) -> int:
    index = VectorIndex(args.dir, fingerprint=args.fingerprint)
    print(json.dumps(index.stats(), indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``repro index`` subcommand family."""
    parser = argparse.ArgumentParser(
        prog="repro index",
        description="sharded mmap ANN retrieval tier (repro.index)")
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build or rebuild an index")
    build.add_argument("--dir", required=True,
                       help="index directory (manifest + shard files)")
    build.add_argument("--store", default=None,
                       help="EmbeddingStore directory to ingest")
    build.add_argument("--synthetic", type=int, default=None,
                       help="build from N synthetic clustered entities "
                            "instead of a store")
    build.add_argument("--dim", type=int, default=32,
                       help="synthetic vector dim")
    build.add_argument("--fingerprint", default="unversioned",
                       help="checkpoint fingerprint namespace")
    build.add_argument("--label", default="provider",
                       help="store namespace: provider label")
    build.add_argument("--mode", default="name",
                       help="store namespace: encode mode")
    build.add_argument("--num-shards", type=int,
                       default=DEFAULT_NUM_SHARDS)
    build.add_argument("--nlist", type=int, default=None,
                       help="coarse clusters per shard "
                            "(default: sqrt rule)")
    build.add_argument("--nprobe", type=int, default=4,
                       help="default clusters probed per shard at query "
                            "time")
    build.add_argument("--seed", type=int, default=0)
    build.set_defaults(func=_cmd_build)

    query = sub.add_parser("query",
                           help="top-k neighbours of stored names")
    query.add_argument("--dir", required=True)
    query.add_argument("--fingerprint", default="unversioned")
    query.add_argument("--name", action="append",
                       help="repeatable; stored entity name to query by")
    query.add_argument("--k", type=int, default=10)
    query.add_argument("--nprobe", type=int, default=None,
                       help="override the index's default probe width")
    query.set_defaults(func=_cmd_query)

    stats = sub.add_parser("stats", help="manifest geometry + counters")
    stats.add_argument("--dir", required=True)
    stats.add_argument("--fingerprint", default="unversioned")
    stats.set_defaults(func=_cmd_stats)
    return parser


def index_main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro index``."""
    args = build_parser().parse_args(argv)
    return args.func(args)


__all__ = ["build_parser", "index_main"]
