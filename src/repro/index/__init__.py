"""Sharded, memory-mapped ANN retrieval tier (ROADMAP item 2).

The paper's fault-analysis tasks (Sec. V) all reduce to "given an
embedded alarm/log/KPI, which known entities sit nearest?"  The
JSONL+LRU :class:`~repro.serving.store.EmbeddingStore` answers *point*
lookups by name; this package answers *neighbourhood* queries at KG
scale:

* :mod:`repro.index.ivf` — deterministic coarse k-means (the IVF
  cluster geometry);
* :mod:`repro.index.shards` — hash-sharded on-disk format: contiguous
  cluster-grouped float32 ``.npy`` (served via ``mmap``) + JSON name
  table sidecar, written through the repo's atomic temp+fsync+rename
  discipline;
* :mod:`repro.index.index` — :class:`VectorIndex`: generation-tagged
  crash-safe rebuilds, ``nprobe``-tunable top-k cosine queries, and an
  incremental ``add()`` buffer folded in on ``flush()``;
* :mod:`repro.index.provider` — :class:`IndexedEmbeddingProvider`
  bridging providers/stores into the index, keyed by checkpoint
  fingerprint;
* :mod:`repro.index.synthetic` — seeded clustered entity worlds for
  benchmarks and smoke tests;
* :mod:`repro.index.cli` — ``python -m repro index build|query|stats``.
"""

from repro.index.index import (
    DEFAULT_NUM_SHARDS,
    FingerprintMismatch,
    IndexCorrupt,
    VectorIndex,
    default_nlist,
)
from repro.index.ivf import coarse_cluster
from repro.index.provider import IndexedEmbeddingProvider
from repro.index.shards import shard_for_name
from repro.index.synthetic import (
    exact_topk,
    synthetic_queries,
    synthetic_world,
)
from repro.index.cli import index_main

__all__ = [
    "DEFAULT_NUM_SHARDS",
    "FingerprintMismatch",
    "IndexCorrupt",
    "IndexedEmbeddingProvider",
    "VectorIndex",
    "coarse_cluster",
    "default_nlist",
    "exact_topk",
    "index_main",
    "shard_for_name",
    "synthetic_queries",
    "synthetic_world",
]
