"""On-disk shard format for the mmap ANN index.

One shard is two files, both written through :mod:`repro.ioutil`'s
temp+fsync+rename discipline so readers only ever see complete artifacts:

``shard-<generation>-<shard>.npy``
    Contiguous ``(n, dim)`` float32 matrix of L2-normalised vectors, rows
    grouped by coarse cluster (cluster *c* occupies the half-open row
    range ``[offsets[c], offsets[c + 1])``).  Loaded with
    ``np.load(..., mmap_mode="r")`` — queries touch only the probed
    clusters' pages, so a shard far larger than RAM still serves.

``shard-<generation>-<shard>.meta.json``
    Sidecar name table and cluster geometry: row-ordered ``names``,
    ``centroids`` (``(k, dim)`` list), and ``offsets`` (``k + 1`` row
    boundaries).

Files are generation-tagged: a rebuild writes a *new* generation's files
and only then swaps the manifest, so a crash mid-rebuild leaves the old
generation fully intact and referenced (see :mod:`repro.index.index`).
"""

from __future__ import annotations

import hashlib
import io
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.ioutil import atomic_write_bytes, atomic_write_text

from repro.index.ivf import coarse_cluster


def shard_for_name(name: str, num_shards: int) -> int:
    """Deterministic, process-stable shard assignment for ``name``.

    ``hash()`` is salted per interpreter (PYTHONHASHSEED), so shard
    routing uses a keyed-off blake2b digest instead — the same name maps
    to the same shard in every process that ever touches the index.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_shards


def shard_stem(generation: int, shard: int) -> str:
    """File stem for one shard of one generation."""
    return f"shard-{generation:06d}-{shard:04d}"


@dataclass
class ShardData:
    """One loaded shard: mmap vectors + names + cluster geometry."""

    vectors: np.ndarray                 # (n, dim) float32, mmap-backed
    names: list[str]                    # row-ordered
    centroids: np.ndarray               # (k, dim) float32
    offsets: np.ndarray                 # (k + 1,) int64 row boundaries
    stem: str = ""
    name_rows: dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        self.name_rows = {name: row for row, name in enumerate(self.names)}
        # Re-view the memmap as a plain ndarray sharing the same pages:
        # ndarray.__getitem__ on the subclass pays ~µs of bookkeeping per
        # slice, which dominates probe-sized reads on the query hot path.
        self.vectors = np.asarray(self.vectors)

    def __len__(self) -> int:
        return len(self.names)

    def cluster_rows(self, cell: int) -> tuple[int, int]:
        """Half-open row range of cluster ``cell``."""
        return int(self.offsets[cell]), int(self.offsets[cell + 1])


def write_shard(directory: str | Path, stem: str, names: list[str],
                vectors: np.ndarray, nlist: int, seed: int = 0) -> dict:
    """Cluster, lay out, and durably write one shard; returns its manifest
    entry (``{"stem", "count", "clusters"}``).

    ``vectors`` must be L2-normalised float32 rows aligned with ``names``.
    Rows are regrouped cluster-contiguously before writing so a probed
    cluster is one contiguous (page-friendly) mmap slice.
    """
    directory = Path(directory)
    vectors = np.ascontiguousarray(vectors, dtype=np.float32)
    if vectors.ndim != 2 or vectors.shape[0] != len(names):
        raise ValueError(f"shard {stem}: vectors must be one row per name "
                         f"(got {vectors.shape} for {len(names)} names)")
    centroids, assignments = coarse_cluster(vectors, nlist, seed=seed)
    order = np.argsort(assignments, kind="stable")
    vectors = vectors[order]
    names = [names[i] for i in order]
    counts = np.bincount(assignments, minlength=centroids.shape[0])
    offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)

    buffer = io.BytesIO()
    np.save(buffer, vectors)
    atomic_write_bytes(directory / f"{stem}.npy", buffer.getvalue())
    meta = {
        "names": names,
        "centroids": [[float(x) for x in row] for row in centroids],
        "offsets": [int(x) for x in offsets],
    }
    atomic_write_text(directory / f"{stem}.meta.json",
                      json.dumps(meta, ensure_ascii=False))
    return {"stem": stem, "count": len(names),
            "clusters": int(centroids.shape[0])}


def read_shard(directory: str | Path, stem: str) -> ShardData:
    """Load one shard, vectors memory-mapped read-only."""
    directory = Path(directory)
    vectors = np.load(directory / f"{stem}.npy", mmap_mode="r")
    meta = json.loads(
        (directory / f"{stem}.meta.json").read_text(encoding="utf-8"))
    centroids = np.asarray(meta["centroids"], dtype=np.float32)
    offsets = np.asarray(meta["offsets"], dtype=np.int64)
    names = list(meta["names"])
    if vectors.shape[0] != len(names):
        raise ValueError(f"shard {stem}: {vectors.shape[0]} vectors but "
                         f"{len(names)} names — corrupt sidecar")
    if centroids.size and int(offsets[-1]) != vectors.shape[0]:
        raise ValueError(f"shard {stem}: cluster offsets do not cover the "
                         f"vector rows")
    return ShardData(vectors=vectors, names=names, centroids=centroids,
                     offsets=offsets, stem=stem)


__all__ = ["ShardData", "read_shard", "shard_for_name", "shard_stem",
           "write_shard"]
