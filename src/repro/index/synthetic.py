"""Deterministic synthetic entity worlds for index benchmarks and smoke.

Real KTeleBERT entity embeddings are *clustered* — alarms from one
network element family, log templates from one vendor, KPIs of one
domain all land near each other — and IVF probing exploits exactly that
structure.  Uniform random vectors would be an adversarial (and
unrepresentative) benchmark, so the synthetic world is a mixture of
Gaussians: ``clusters`` latent centres on the unit sphere, entities
sampled around them, queries sampled as small perturbations of stored
entities (a query embedding is close to, not identical to, its match).

Everything is seeded ``default_rng`` — the same (count, dim, seed)
always yields the same world, which keeps recall numbers reproducible
across benchmark runs and CI machines.
"""

from __future__ import annotations

import numpy as np

DEFAULT_CLUSTERS = 128
#: Expected *norm* of the within-cluster offset from a unit centre (the
#: per-dimension scale is this over ``sqrt(dim)`` — without that
#: normalisation a Gaussian offset's norm grows with ``sqrt(dim)`` and
#: drowns the cluster structure entirely).
CLUSTER_SPREAD = 0.25
#: Expected norm of the query's offset from its source entity vector.
QUERY_NOISE = 0.1


def synthetic_world(count: int, dim: int, seed: int = 0,
                    clusters: int = DEFAULT_CLUSTERS
                    ) -> tuple[list[str], np.ndarray]:
    """``count`` named entities as clustered unit vectors.

    Returns ``(names, vectors)`` with ``vectors`` an L2-normalised
    ``(count, dim)`` float32 matrix and names of the form
    ``entity-<i>``.
    """
    if count < 1 or dim < 1:
        raise ValueError("count and dim must be positive")
    rng = np.random.default_rng(seed)
    clusters = max(1, min(clusters, count))
    centres = rng.standard_normal((clusters, dim))
    centres /= np.maximum(np.linalg.norm(centres, axis=1, keepdims=True),
                          1e-12)
    assignment = rng.integers(clusters, size=count)
    scale = CLUSTER_SPREAD / float(dim) ** 0.5
    vectors = (centres[assignment]
               + scale * rng.standard_normal((count, dim)))
    vectors /= np.maximum(np.linalg.norm(vectors, axis=1, keepdims=True),
                          1e-12)
    names = [f"entity-{i}" for i in range(count)]
    return names, vectors.astype(np.float32)


def synthetic_queries(vectors: np.ndarray, num_queries: int,
                      seed: int = 1) -> np.ndarray:
    """Queries near stored entities (perturbed copies, unit-normalised)."""
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    rng = np.random.default_rng(seed)
    picks = rng.integers(vectors.shape[0], size=num_queries)
    scale = QUERY_NOISE / float(vectors.shape[1]) ** 0.5
    queries = (vectors[picks]
               + scale * rng.standard_normal((num_queries,
                                              vectors.shape[1])))
    queries /= np.maximum(np.linalg.norm(queries, axis=1, keepdims=True),
                          1e-12)
    return queries.astype(np.float32)


def exact_topk(vectors: np.ndarray, names: list[str], queries: np.ndarray,
               k: int) -> list[list[tuple[str, float]]]:
    """Brute-force cosine top-k over the full matrix (the recall oracle)."""
    results = []
    scores = queries.astype(np.float32) @ vectors.T
    for row in scores:
        k_eff = min(k, row.shape[0])
        top = np.argpartition(-row, k_eff - 1)[:k_eff]
        top = top[np.argsort(-row[top], kind="stable")]
        results.append([(names[i], float(row[i])) for i in top])
    return results


__all__ = ["DEFAULT_CLUSTERS", "exact_topk", "synthetic_queries",
           "synthetic_world"]
