"""IVF-style coarse clustering in pure numpy.

The retrieval tier (:mod:`repro.index`) partitions each shard's vectors
into ``nlist`` coarse clusters so a query only scans the ``nprobe``
clusters whose centroids lie nearest — the classic inverted-file (IVF)
trade of recall for speed.  Clustering is a small, deterministic k-means:
k-means++-style seeding from a seeded :func:`numpy.random.default_rng`
Generator, a bounded number of Lloyd iterations, and a fixed iteration
order, so rebuilding the same shard from the same rows always produces
the same layout (bit-exact manifests across processes).

Vectors are expected L2-normalised (the index stores cosine geometry);
centroids are re-normalised after every update so centroid similarity is
a faithful proxy for member similarity.
"""

from __future__ import annotations

import numpy as np

#: Lloyd iterations; coarse quantisation converges fast and exactness is
#: irrelevant (probing is what decides recall, not cluster optimality).
DEFAULT_ITERATIONS = 8

#: Rows above which k-means trains on a deterministic subsample; the
#: final assignment pass still covers every row.
TRAIN_SAMPLE_CAP = 16_384


def _normalise(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.maximum(norms, 1e-12)


def _seed_centroids(vectors: np.ndarray, nlist: int,
                    rng: np.random.Generator) -> np.ndarray:
    """k-means++-style seeding: spread the initial centroids out."""
    count = vectors.shape[0]
    first = int(rng.integers(count))
    chosen = [first]
    # Squared cosine distance to the nearest chosen centroid so far.
    distances = 1.0 - vectors @ vectors[first]
    for _ in range(1, nlist):
        distances = np.maximum(distances, 0.0)
        total = float(distances.sum())
        if total <= 0.0:
            # All remaining rows coincide with a centroid; fill uniformly.
            pick = int(rng.integers(count))
        else:
            pick = int(rng.choice(count, p=distances / total))
        chosen.append(pick)
        distances = np.minimum(distances, 1.0 - vectors @ vectors[pick])
    return vectors[chosen].copy()


def coarse_cluster(vectors: np.ndarray, nlist: int, seed: int = 0,
                   iterations: int = DEFAULT_ITERATIONS
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Cluster L2-normalised ``vectors`` into at most ``nlist`` cells.

    Returns ``(centroids, assignments)``: a ``(k, dim)`` float32 centroid
    matrix (``k <= nlist``, unit rows) and a length-``n`` int64 vector of
    cluster ids.  Deterministic for a fixed ``(vectors, nlist, seed)``.
    """
    vectors = np.ascontiguousarray(vectors, dtype=np.float32)
    count = vectors.shape[0]
    if count == 0:
        raise ValueError("cannot cluster an empty vector set")
    nlist = max(1, min(int(nlist), count))
    if nlist == 1:
        centroid = _normalise(vectors.mean(axis=0, keepdims=True))
        return centroid.astype(np.float32), np.zeros(count, dtype=np.int64)

    rng = np.random.default_rng(seed)
    if count > TRAIN_SAMPLE_CAP:
        sample = rng.choice(count, size=TRAIN_SAMPLE_CAP, replace=False)
        sample.sort()
        train = vectors[sample]
    else:
        train = vectors
    centroids = _seed_centroids(train, nlist, rng)
    for _ in range(max(1, iterations)):
        # Cosine assignment: nearest centroid = highest dot product.
        assignments = np.argmax(train @ centroids.T, axis=1)
        for cell in range(nlist):
            members = train[assignments == cell]
            if len(members):
                centroids[cell] = members.mean(axis=0)
            else:
                # Re-seed an empty cell on the row farthest from its
                # centroid, keeping all nlist cells populated.
                similarity = (train * centroids[assignments]).sum(axis=1)
                centroids[cell] = train[int(np.argmin(similarity))]
        centroids = _normalise(centroids).astype(np.float32)
    assignments = np.argmax(vectors @ centroids.T, axis=1).astype(np.int64)
    return centroids, assignments


__all__ = ["DEFAULT_ITERATIONS", "TRAIN_SAMPLE_CAP", "coarse_cluster"]
