"""Bridge between the embedding providers and the ANN retrieval tier.

:class:`IndexedEmbeddingProvider` decorates any
:class:`~repro.service.providers.EmbeddingProvider` (typically the
:class:`~repro.serving.store.PersistentProvider` already wired into the
serving stack) and keeps a :class:`~repro.index.index.VectorIndex` in
sync with everything it encodes: bulk ingestion from an
:class:`~repro.serving.store.EmbeddingStore` via the batched
``get_many`` path, plus online capture of fresh encodes through the
index's ``add`` buffer.  The index directory is keyed by the same
checkpoint fingerprint as the store, so a re-trained encoder can never
serve neighbours from a stale geometry — opening the mismatch raises
instead.
"""

from __future__ import annotations

import numpy as np

from repro.index.index import VectorIndex
from repro.serving.store import EmbeddingStore
from repro.service.providers import EmbeddingProvider

#: Pending ``add()`` rows that trigger an automatic fold into the shards.
DEFAULT_AUTO_FLUSH = 4096
#: Store names read per ``get_many`` batch during bulk ingestion.
INGEST_BATCH = 2048


class IndexedEmbeddingProvider(EmbeddingProvider):
    """Provider decorator that mirrors every encode into a vector index.

    Parameters
    ----------
    inner:
        The provider actually producing vectors.
    index:
        The retrieval tier to keep in sync.  Must carry the same
        fingerprint as ``store`` when one is given.
    store:
        Optional persistent store to bulk-ingest from
        (:meth:`populate_from_store`).
    auto_flush:
        Fold the index's pending buffer into shards once it holds this
        many rows (``0`` disables; call :meth:`flush` manually).
    """

    def __init__(self, inner: EmbeddingProvider, index: VectorIndex, *,
                 store: EmbeddingStore | None = None,
                 auto_flush: int = DEFAULT_AUTO_FLUSH):
        if store is not None and store.fingerprint != index.fingerprint:
            raise ValueError(
                f"store fingerprint {store.fingerprint!r} does not match "
                f"index fingerprint {index.fingerprint!r}")
        self.inner = inner
        self.index = index
        self.store = store
        self.auto_flush = auto_flush
        self.label = inner.label
        self.dim = inner.dim

    # -- EmbeddingProvider interface -----------------------------------
    def encode_names(self, names: list[str]) -> np.ndarray:
        """Encode via the inner provider and capture the rows in the index."""
        vectors = np.asarray(self.inner.encode_names(names))
        fresh: dict[str, np.ndarray] = {}
        for row, name in enumerate(names):
            if name not in self.index:
                fresh[name] = vectors[row]
        if fresh:
            self.index.add(fresh)
            if (self.auto_flush
                    and self.index.stats()["pending"] >= self.auto_flush):
                self.index.flush()
        return vectors

    # -- Retrieval -----------------------------------------------------
    def retrieve(self, queries: np.ndarray, k: int = 10,
                 nprobe: int | None = None) -> list[list[tuple[str, float]]]:
        """Top-``k`` ``(name, score)`` neighbours for raw query vectors."""
        return self.index.query(queries, k=k, nprobe=nprobe)

    def retrieve_names(self, names: list[str], k: int = 10,
                       nprobe: int | None = None
                       ) -> list[list[tuple[str, float]]]:
        """Encode ``names`` then retrieve their nearest stored entities."""
        return self.retrieve(self.encode_names(names), k=k, nprobe=nprobe)

    # -- Bulk ingestion ------------------------------------------------
    def populate_from_store(self, rebuild: bool = False) -> int:
        """Index every name the store holds; returns rows ingested.

        Uses the batched ``get_many`` read path (one open + one lock
        acquisition per :data:`INGEST_BATCH` names).  With ``rebuild``
        the index is rebuilt from scratch; otherwise only names the
        index does not already hold are added and folded in.
        """
        if self.store is None:
            raise ValueError("no store attached to populate from")
        names = self.store.names()
        if rebuild:
            gathered: dict[str, np.ndarray] = {}
            for start in range(0, len(names), INGEST_BATCH):
                gathered.update(
                    self.store.get_many(names[start:start + INGEST_BATCH]))
            self.index.build(gathered)
            return len(gathered)
        ingested = 0
        for start in range(0, len(names), INGEST_BATCH):
            batch = [n for n in names[start:start + INGEST_BATCH]
                     if n not in self.index]
            if not batch:
                continue
            found = self.store.get_many(batch)
            if found:
                self.index.add(found)
                ingested += len(found)
        if ingested:
            self.index.flush()
        return ingested

    def ensure_indexed(self) -> int:
        """Populate from the store only when the index is empty."""
        if self.store is not None and len(self.index) == 0:
            return self.populate_from_store(rebuild=True)
        return 0

    def flush(self) -> int:
        """Fold any pending buffered rows into the shards."""
        return self.index.flush()

    def stats(self) -> dict:
        """Index stats plus the inner provider's (when it has any)."""
        stats = {"index": self.index.stats()}
        inner_stats = getattr(self.inner, "stats", None)
        if callable(inner_stats):
            stats["inner"] = inner_stats()
        return stats


__all__ = ["DEFAULT_AUTO_FLUSH", "INGEST_BATCH", "IndexedEmbeddingProvider"]
