"""Evaluation utilities: ranking metrics, classification metrics, k-fold CV."""

from repro.evaluation.ranking import (
    RankingMetrics,
    hits_at_k,
    mean_rank,
    mean_reciprocal_rank,
    rank_of,
    ranking_metrics,
)
from repro.evaluation.classification import (
    ClassificationMetrics,
    classification_metrics,
)
from repro.evaluation.kfold import k_fold_splits
from repro.evaluation.bootstrap import (
    ConfidenceInterval,
    bootstrap_ci,
    rank_metric_cis,
)
from repro.evaluation.significance import (
    PairedComparison,
    compare_rank_lists,
    paired_permutation_test,
)

__all__ = [
    "ClassificationMetrics",
    "ConfidenceInterval",
    "PairedComparison",
    "bootstrap_ci",
    "compare_rank_lists",
    "paired_permutation_test",
    "rank_metric_cis",
    "RankingMetrics",
    "classification_metrics",
    "hits_at_k",
    "k_fold_splits",
    "mean_rank",
    "mean_reciprocal_rank",
    "rank_of",
    "ranking_metrics",
]
