"""Binary classification metrics: Accuracy / Precision / Recall / F1 (Table VI)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ClassificationMetrics:
    """The four metrics of the EAP evaluation."""

    accuracy: float
    precision: float
    recall: float
    f1: float

    def as_row(self) -> list[float]:
        return [self.accuracy, self.precision, self.recall, self.f1]


def classification_metrics(predictions: np.ndarray,
                           labels: np.ndarray) -> ClassificationMetrics:
    """Compute binary metrics; the positive class is 1.

    Degenerate denominators yield 0.0 for the affected metric rather than an
    exception (matches common evaluation toolkits).
    """
    predictions = np.asarray(predictions).astype(int)
    labels = np.asarray(labels).astype(int)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must align")
    if predictions.size == 0:
        raise ValueError("empty evaluation set")

    true_positive = int(((predictions == 1) & (labels == 1)).sum())
    false_positive = int(((predictions == 1) & (labels == 0)).sum())
    false_negative = int(((predictions == 0) & (labels == 1)).sum())

    accuracy = float((predictions == labels).mean())
    precision = (true_positive / (true_positive + false_positive)
                 if true_positive + false_positive else 0.0)
    recall = (true_positive / (true_positive + false_negative)
              if true_positive + false_negative else 0.0)
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    return ClassificationMetrics(accuracy=accuracy, precision=precision,
                                 recall=recall, f1=f1)
