"""K-fold cross-validation splitter (RCA/EAP protocol, Sec. V-B3).

The paper splits into 5 folds, takes 1 fold as test, the *next* fold as
validation, and the rest as training, then averages over all rotations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FoldSplit:
    """Index sets of one rotation."""

    train: np.ndarray
    valid: np.ndarray
    test: np.ndarray


def k_fold_splits(num_items: int, num_folds: int = 5,
                  rng: np.random.Generator | None = None) -> list[FoldSplit]:
    """All ``num_folds`` rotations of the paper's test/valid/train protocol."""
    if num_folds < 3:
        raise ValueError("need at least 3 folds for train/valid/test")
    if num_items < num_folds:
        raise ValueError("fewer items than folds")
    order = np.arange(num_items)
    if rng is not None:
        rng.shuffle(order)
    folds = np.array_split(order, num_folds)
    splits: list[FoldSplit] = []
    for i in range(num_folds):
        test = folds[i]
        valid = folds[(i + 1) % num_folds]
        train = np.concatenate([folds[j] for j in range(num_folds)
                                if j != i and j != (i + 1) % num_folds])
        splits.append(FoldSplit(train=train, valid=valid, test=test))
    return splits
