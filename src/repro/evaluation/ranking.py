"""Ranking metrics: MR, MRR, Hits@N — the protocol of Tables IV and VIII."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def rank_of(scores: np.ndarray, true_index: int,
            higher_is_better: bool = True) -> int:
    """1-based rank of ``true_index`` under ``scores``.

    Ties are resolved pessimistically-fairly: the rank counts strictly better
    scores plus half the ties (rounded up), the standard protocol that stops
    constant scores from getting rank 1.
    """
    scores = np.asarray(scores, dtype=float)
    if not 0 <= true_index < len(scores):
        raise IndexError("true_index outside scores")
    target = scores[true_index]
    if higher_is_better:
        better = int((scores > target).sum())
        ties = int((scores == target).sum()) - 1
    else:
        better = int((scores < target).sum())
        ties = int((scores == target).sum()) - 1
    return better + ties // 2 + 1


def mean_rank(ranks: Sequence[int]) -> float:
    """MR: average of 1-based ranks (lower is better)."""
    if len(ranks) == 0:
        raise ValueError("empty rank list")
    return float(np.mean(ranks))


def mean_reciprocal_rank(ranks: Sequence[int]) -> float:
    """MRR: average of 1/rank (higher is better)."""
    if len(ranks) == 0:
        raise ValueError("empty rank list")
    return float(np.mean([1.0 / r for r in ranks]))


def hits_at_k(ranks: Sequence[int], k: int) -> float:
    """Fraction of ranks ≤ k."""
    if len(ranks) == 0:
        raise ValueError("empty rank list")
    if k < 1:
        raise ValueError("k must be >= 1")
    return float(np.mean([1.0 if r <= k else 0.0 for r in ranks]))


@dataclass
class RankingMetrics:
    """Bundle of the ranking metrics the paper reports."""

    mean_rank: float
    mrr: float
    hits: dict[int, float]

    def as_row(self, hit_levels: Sequence[int]) -> list[float]:
        return [self.mean_rank, self.mrr] + [self.hits[k] for k in hit_levels]


def ranking_metrics(ranks: Sequence[int],
                    hit_levels: Sequence[int] = (1, 3, 10)) -> RankingMetrics:
    """Compute MR, MRR and Hits@{levels} in one call."""
    return RankingMetrics(
        mean_rank=mean_rank(ranks),
        mrr=mean_reciprocal_rank(ranks),
        hits={k: hits_at_k(ranks, k) for k in hit_levels})
