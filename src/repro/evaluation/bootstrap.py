"""Bootstrap confidence intervals for evaluation metrics.

The paper reports point estimates; at our much smaller scale the sampling
error is material, so the harnesses can attach percentile-bootstrap CIs to
any per-sample metric (ranks, correct/incorrect indicators).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a percentile-bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (f"{self.estimate:.3f} "
                f"[{self.low:.3f}, {self.high:.3f}] "
                f"@{self.confidence:.0%}")


def bootstrap_ci(samples: Sequence[float],
                 statistic: Callable[[np.ndarray], float] = np.mean,
                 confidence: float = 0.95, num_resamples: int = 2000,
                 rng: np.random.Generator | None = None) -> ConfidenceInterval:
    """Percentile bootstrap CI of ``statistic`` over ``samples``."""
    samples = np.asarray(list(samples), dtype=float)
    if samples.size == 0:
        raise ValueError("no samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = rng or np.random.default_rng(0)
    estimates = np.empty(num_resamples)
    n = len(samples)
    for i in range(num_resamples):
        resample = samples[rng.integers(0, n, size=n)]
        estimates[i] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        estimate=float(statistic(samples)),
        low=float(np.quantile(estimates, alpha)),
        high=float(np.quantile(estimates, 1.0 - alpha)),
        confidence=confidence)


def rank_metric_cis(ranks: Sequence[int], hit_levels: Sequence[int] = (1, 3),
                    confidence: float = 0.95,
                    rng: np.random.Generator | None = None
                    ) -> dict[str, ConfidenceInterval]:
    """CIs for MR, MRR and Hits@{levels} from a rank sample."""
    ranks = np.asarray(list(ranks), dtype=float)
    out = {
        "MR": bootstrap_ci(ranks, np.mean, confidence, rng=rng),
        "MRR": bootstrap_ci(1.0 / ranks, np.mean, confidence, rng=rng),
    }
    for level in hit_levels:
        hits = (ranks <= level).astype(float)
        out[f"Hits@{level}"] = bootstrap_ci(hits, np.mean, confidence,
                                            rng=rng)
    return out
