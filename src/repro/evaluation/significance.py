"""Paired permutation significance test for method comparisons.

When two methods are evaluated on the same items (the same test states,
pairs, or masked hops), their per-item scores are paired; the sign-flip
permutation test asks how often a difference at least as large would arise
if the pairing carried no information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired permutation test."""

    mean_difference: float   # mean(a) - mean(b)
    p_value: float
    num_items: int

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def paired_permutation_test(scores_a: Sequence[float],
                            scores_b: Sequence[float],
                            num_permutations: int = 5000,
                            rng: np.random.Generator | None = None
                            ) -> PairedComparison:
    """Two-sided sign-flip permutation test on paired per-item scores."""
    a = np.asarray(list(scores_a), dtype=float)
    b = np.asarray(list(scores_b), dtype=float)
    if a.shape != b.shape or a.ndim != 1 or a.size == 0:
        raise ValueError("scores must be equal-length nonempty 1-D sequences")
    rng = rng or np.random.default_rng(0)
    differences = a - b
    observed = abs(differences.mean())
    if np.allclose(differences, 0.0):
        return PairedComparison(mean_difference=0.0, p_value=1.0,
                                num_items=len(a))
    hits = 0
    for _ in range(num_permutations):
        signs = rng.choice([-1.0, 1.0], size=len(differences))
        if abs((differences * signs).mean()) >= observed - 1e-15:
            hits += 1
    return PairedComparison(mean_difference=float(differences.mean()),
                            p_value=(hits + 1) / (num_permutations + 1),
                            num_items=len(a))


def compare_rank_lists(ranks_a: Sequence[int], ranks_b: Sequence[int],
                       num_permutations: int = 5000,
                       rng: np.random.Generator | None = None
                       ) -> PairedComparison:
    """Paired test on reciprocal ranks (higher is better for method A when
    ``mean_difference`` is positive)."""
    rr_a = [1.0 / r for r in ranks_a]
    rr_b = [1.0 / r for r in ranks_b]
    return paired_permutation_test(rr_a, rr_b,
                                   num_permutations=num_permutations, rng=rng)
