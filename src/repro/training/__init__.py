"""Training infrastructure: dynamic masking, batching, MTL strategies.

* :mod:`repro.training.masking` — RoBERTa-style dynamic masking with the
  40% rate and whole-word masking of Sec. IV-C.
* :mod:`repro.training.batching` — deterministic shuffled mini-batching.
* :mod:`repro.training.mtl` — the STL / PMTL / IMTL schedules of Table II.
* :mod:`repro.training.runtime` — fault-tolerant, data-parallel stage-2
  runtime: atomic checkpoint/resume, gradient worker pool, run journal.
"""

from repro.training.masking import DynamicMasker, MaskedBatch
from repro.training.batching import BatchIterator
from repro.training.mtl import (
    MtlStrategy,
    TrainingPhase,
    build_strategy,
    IMTL_SCHEDULE,
)
# stage2 / retrainer depend on repro.models (which itself imports the leaf
# modules of this package), so they are loaded lazily to avoid a cycle.
_LAZY = {
    "Stage2Data": ("repro.training.stage2", "Stage2Data"),
    "build_stage2_data": ("repro.training.stage2", "build_stage2_data"),
    "KTeleBertRetrainer": ("repro.training.retrainer", "KTeleBertRetrainer"),
    "RetrainingLog": ("repro.training.retrainer", "RetrainingLog"),
    "StepLosses": ("repro.training.retrainer", "StepLosses"),
    "GradientWorkerPool": ("repro.training.runtime", "GradientWorkerPool"),
    "PoolSharedState": ("repro.training.shm", "PoolSharedState"),
    "SharedArray": ("repro.training.shm", "SharedArray"),
    "RunJournal": ("repro.training.runtime", "RunJournal"),
    "RuntimeConfig": ("repro.training.runtime", "RuntimeConfig"),
    "SnapshotStore": ("repro.training.runtime", "SnapshotStore"),
    "TrainingRuntime": ("repro.training.runtime", "TrainingRuntime"),
    "WorkerPoolError": ("repro.training.runtime", "WorkerPoolError"),
}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro.training' has no attribute {name!r}")

__all__ = [
    "BatchIterator",
    "DynamicMasker",
    "GradientWorkerPool",
    "IMTL_SCHEDULE",
    "KTeleBertRetrainer",
    "MaskedBatch",
    "MtlStrategy",
    "PoolSharedState",
    "RetrainingLog",
    "RunJournal",
    "SharedArray",
    "RuntimeConfig",
    "SnapshotStore",
    "Stage2Data",
    "StepLosses",
    "TrainingPhase",
    "TrainingRuntime",
    "WorkerPoolError",
    "build_stage2_data",
    "build_strategy",
]
