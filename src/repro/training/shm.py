"""Shared-memory transport for the persistent gradient worker pool.

The data-parallel runtime moves two large arrays per step — the flattened
parameter vector (parent → workers) and one flattened gradient vector per
worker (workers → parent).  Serialising those over pipes is what made the
original pool *slower* than serial training; this module gives both sides
zero-copy access instead:

* :class:`SharedArray` — a numpy array backed by a named POSIX
  ``multiprocessing.shared_memory`` segment.  The parent creates it before
  forking; children inherit the mapping, so reads and writes on either side
  are immediately visible to the other without any pickling.

* :class:`PoolSharedState` — the pool's fixed layout: one parameter block,
  one gradient block per worker, and a small ``int64`` index block holding
  the step's batch indices (workers materialise rows from their
  fork-inherited dataset, so pipes only ever carry shard *bounds*).

Lifecycle: the creating process owns the segments and must call
:meth:`PoolSharedState.close` (idempotent), which drops the numpy views,
closes the mappings, and **unlinks** the segments so nothing is left behind
in ``/dev/shm`` — even when a worker crashed mid-step.  Forked children
call :meth:`PoolSharedState.release` on exit, which closes their inherited
mappings without unlinking.
"""

from __future__ import annotations

import os
import secrets
from multiprocessing import shared_memory

import numpy as np

#: Prefix of every segment this module creates; recognisable in /dev/shm.
SHM_PREFIX = "repro-grad"


class SharedArray:
    """A numpy array stored in a named shared-memory segment.

    Created (never attached) by the parent process; forked workers inherit
    the open mapping and see ``array`` at the same address semantics.  The
    creator calls :meth:`close` with ``unlink=True``; inheritors call it
    with ``unlink=False``.
    """

    def __init__(self, shape: tuple[int, ...], dtype=np.float64):
        dtype = np.dtype(dtype)
        nbytes = max(int(np.prod(shape)) * dtype.itemsize, 1)
        name = f"{SHM_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"
        self._shm = shared_memory.SharedMemory(name=name, create=True,
                                               size=nbytes)
        self.array: np.ndarray | None = np.ndarray(shape, dtype=dtype,
                                                   buffer=self._shm.buf)
        self.array[...] = 0
        self._closed = False

    @property
    def name(self) -> str:
        """The segment name (usable with ``SharedMemory(name=...)``)."""
        return self._shm.name

    def close(self, unlink: bool = True) -> None:
        """Drop the view and mapping; ``unlink`` also removes the segment.

        Idempotent.  The numpy view must be dropped first or the mmap
        refuses to close while buffers are exported.
        """
        if self._closed:
            return
        self._closed = True
        self.array = None
        try:
            self._shm.close()
        except BufferError:  # a caller still holds a view; segment leaks
            pass             # its mapping but unlink below still removes it
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PoolSharedState:
    """Fixed shared-memory layout for one :class:`GradientWorkerPool`.

    ``params`` — the flattened parameter vector, written in-place by the
    parent once per step.  ``grads[i]`` — worker *i*'s flattened gradient,
    written by that worker, read (and reduced) by the parent.  ``indices``
    — the step's drawn batch indices: row indices first, triple indices
    after them; control messages carry half-open bounds into this block.
    """

    def __init__(self, param_size: int, num_workers: int,
                 index_capacity: int):
        if param_size < 1:
            raise ValueError("param_size must be >= 1")
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.param_size = param_size
        self.index_capacity = max(int(index_capacity), 1)
        created: list[SharedArray] = []
        try:
            self.params = SharedArray((param_size,))
            created.append(self.params)
            self.grads: list[SharedArray] = []
            for _ in range(num_workers):
                block = SharedArray((param_size,))
                created.append(block)
                self.grads.append(block)
            self.indices = SharedArray((self.index_capacity,),
                                       dtype=np.int64)
            created.append(self.indices)
        except Exception:
            for block in created:
                block.close(unlink=True)
            raise

    @property
    def segment_names(self) -> list[str]:
        """Names of every live segment (for leak checks in tests)."""
        return [block.name for block in self._blocks()]

    def _blocks(self) -> list[SharedArray]:
        return [self.params, *self.grads, self.indices]

    def close(self) -> None:
        """Creator-side teardown: close and unlink every segment."""
        for block in self._blocks():
            block.close(unlink=True)

    def release(self) -> None:
        """Inheritor-side teardown: close mappings, keep the segments."""
        for block in self._blocks():
            block.close(unlink=False)
