"""Multi-task training strategies for stage-2 re-training (Sec. IV-E, Table II).

Three strategies are compared in the paper, with a unified total step budget:

* **STL** — single-task: masking reconstruction only
  (objective ``L_num + L_mask``).
* **PMTL** — cooperative parallel: every step sums the losses of all tasks
  (``L_num + L_mask + L_ke``).
* **IMTL** — iterative (ERNIE2-style continual multi-task): staged schedule
  that first learns masking, then focuses on knowledge embedding, then
  rehearses both to avoid forgetting — Table II's three-stage split.

A strategy answers one question per step: *which task losses are active now*.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Task identifiers.
TASK_MASK = "mask"    # masking reconstruction (implies L_num on numeric rows)
TASK_KE = "ke"        # knowledge embedding

#: IMTL stage fractions (mirrors Table II's 40k/10k/10k MR + 40k/20k KE split
#: of a 60k-step budget: stage 1 MR only, stage 2 KE-heavy, stage 3 both).
IMTL_SCHEDULE: tuple[tuple[frozenset, float], ...] = (
    (frozenset({TASK_MASK}), 0.4),
    (frozenset({TASK_KE}), 0.35),
    (frozenset({TASK_MASK, TASK_KE}), 0.25),
)


@dataclass(frozen=True)
class TrainingPhase:
    """A contiguous block of steps with a fixed active-task set."""

    tasks: frozenset
    start: int
    end: int  # exclusive

    def __contains__(self, step: int) -> bool:
        return self.start <= step < self.end


class MtlStrategy:
    """Resolved step→tasks schedule."""

    def __init__(self, name: str, phases: list[TrainingPhase], total_steps: int):
        if not phases:
            raise ValueError("strategy needs at least one phase")
        if phases[0].start != 0 or phases[-1].end != total_steps:
            raise ValueError("phases must cover [0, total_steps)")
        for previous, current in zip(phases, phases[1:]):
            if previous.end != current.start:
                raise ValueError("phases must be contiguous")
        self.name = name
        self.phases = phases
        self.total_steps = total_steps

    def tasks_at(self, step: int) -> frozenset:
        """The active task set for a step index."""
        if not 0 <= step < self.total_steps:
            raise IndexError(f"step {step} outside [0, {self.total_steps})")
        for phase in self.phases:
            if step in phase:
                return phase.tasks
        raise AssertionError("unreachable: phases cover the whole range")

    def uses_ke(self) -> bool:
        return any(TASK_KE in p.tasks for p in self.phases)


def build_strategy(name: str, total_steps: int) -> MtlStrategy:
    """Construct one of the paper's strategies: ``stl``, ``pmtl``, ``imtl``."""
    if total_steps < 1:
        raise ValueError("total_steps must be >= 1")
    key = name.lower()
    if key == "stl":
        phases = [TrainingPhase(frozenset({TASK_MASK}), 0, total_steps)]
    elif key == "pmtl":
        phases = [TrainingPhase(frozenset({TASK_MASK, TASK_KE}),
                                0, total_steps)]
    elif key == "imtl":
        phases = []
        cursor = 0
        for i, (tasks, fraction) in enumerate(IMTL_SCHEDULE):
            if i == len(IMTL_SCHEDULE) - 1:
                end = total_steps
            else:
                end = min(cursor + max(1, int(round(total_steps * fraction))),
                          total_steps)
            if end > cursor:
                phases.append(TrainingPhase(tasks, cursor, end))
                cursor = end
        if cursor < total_steps:
            phases.append(TrainingPhase(IMTL_SCHEDULE[-1][0], cursor,
                                        total_steps))
        # Merge trailing degenerate coverage if rounding left a gap.
        phases[-1] = TrainingPhase(phases[-1].tasks, phases[-1].start,
                                   total_steps)
    else:
        raise ValueError(f"unknown strategy: {name!r} "
                         "(expected stl / pmtl / imtl)")
    return MtlStrategy(key, phases, total_steps)
